//! The broker wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or reply — is one JSON object preceded by a
//! 4-byte big-endian length. Requests carry a `"cmd"` field naming the
//! operation; replies always carry `"ok"` (`true`/`false`) and, on
//! failure, a machine-readable `"kind"` plus a human-readable
//! `"error"`. See `docs/BROKER.md` for the full message reference.
//!
//! The length prefix caps frames at [`MAX_FRAME`] bytes: a peer that
//! announces more is a protocol error, not an allocation request.

use std::fmt;
use std::io::{self, Read, Write};

use crate::json::{self, Json};

/// The largest acceptable frame payload (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// A structured framing failure, carried as the inner error of the
/// `io::Error`s [`read_frame`] returns so callers can react to the
/// *shape* of the failure, not just its text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer announced a frame larger than [`MAX_FRAME`].
    TooLarge {
        /// The announced payload length.
        announced: usize,
    },
    /// The stream ended mid-frame: `received` of the `expected`
    /// payload bytes arrived before EOF. Distinct from a clean
    /// between-frames close (which is `Ok(None)`).
    TruncatedFrame {
        /// Payload bytes the length prefix promised.
        expected: usize,
        /// Payload bytes that actually arrived.
        received: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { announced } => write!(
                f,
                "frame of {announced} bytes exceeds the {MAX_FRAME} byte cap"
            ),
            FrameError::TruncatedFrame { expected, received } => write!(
                f,
                "connection closed mid-frame: got {received} of {expected} payload bytes"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Extracts the structured framing failure from an `io::Error`, if
    /// that is what it wraps.
    pub fn from_io(e: &io::Error) -> Option<&FrameError> {
        e.get_ref().and_then(|inner| inner.downcast_ref())
    }
}

/// Encodes one message as a complete length-prefixed frame, ready for a
/// single `write_all`. The replication path pre-encodes each journal
/// record once and fans the same bytes out to every follower queue.
///
/// # Errors
///
/// `InvalidInput` when the payload exceeds `u32` (far beyond
/// [`MAX_FRAME`], which the *reader* enforces).
pub fn encode_frame(message: &Json) -> io::Result<Vec<u8>> {
    let payload = message.to_string();
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload.as_bytes());
    Ok(frame)
}

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame(w: &mut impl Write, message: &Json) -> io::Result<()> {
    // Prefix and payload go out as ONE write: splitting them across two
    // writes on an unbuffered socket lets Nagle hold the payload until
    // the peer's delayed ACK, turning every request into a ~40ms stall.
    let frame = encode_frame(message)?;
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one length-prefixed JSON frame. Returns `Ok(None)` on a clean
/// end-of-stream (the peer closed between frames).
///
/// # Errors
///
/// I/O errors, oversized frames, invalid UTF-8, and malformed JSON all
/// surface as `io::Error` (`InvalidData`).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge { announced: len },
        ));
    }
    let mut payload = vec![0u8; len];
    // Count the bytes by hand: a mid-frame EOF must report how much of
    // the promised payload arrived, which `read_exact` cannot.
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    FrameError::TruncatedFrame {
                        expected: len,
                        received: filled,
                    },
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let text =
        String::from_utf8(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let value = json::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(value))
}

/// A successful reply skeleton: `{"ok": true}`.
pub fn ok() -> Json {
    Json::obj().with("ok", true)
}

/// An error reply: `{"ok": false, "kind": kind, "error": message}`.
///
/// Established kinds: `bad_request` (malformed frame or missing field),
/// `frame_too_large` (the length prefix exceeds [`MAX_FRAME`]; the
/// server replies, then closes), `parse` (a history/scenario/plan text
/// failed to parse), `ill_formed` (well-formedness rejection on
/// publish), `not_found` (unknown location/policy/client),
/// `no_valid_plan` (a run was requested but no statically valid plan
/// exists), `verify` (synthesis failed outright), `busy` (admission
/// control rejected the connection), `shutting_down` (the daemon is
/// draining), `not_primary` (a mutation or `replicate` request reached
/// a follower; the reply carries the upstream address as a redirect
/// hint), `not_durable` (a `replicate` request reached a primary
/// without a state directory — the journal is the replication
/// substrate), `lint_rejected` (a mutation was reverted by the
/// `--deny-lint` gate; the reply carries the introduced `diagnostics`),
/// `internal` (a durability failure or other server-side fault).
pub fn error(kind: &str, message: impl Into<String>) -> Json {
    Json::obj()
        .with("ok", false)
        .with("kind", kind)
        .with("error", message.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let msg = Json::obj()
            .with("cmd", "plan")
            .with("client", "int[req -> eps]");
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &ok()).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some(msg));
        assert_eq!(read_frame(&mut r).unwrap(), Some(ok()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_payload_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ok()).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn oversized_frame_surfaces_too_large() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(
            FrameError::from_io(&err),
            Some(&FrameError::TooLarge {
                announced: MAX_FRAME + 1
            })
        );
    }

    #[test]
    fn truncated_frame_names_expected_vs_received() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ok()).unwrap();
        let expected = buf.len() - 4;
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        match FrameError::from_io(&err) {
            Some(&FrameError::TruncatedFrame {
                expected: e,
                received,
            }) => {
                assert_eq!(e, expected);
                assert_eq!(received, expected - 2);
            }
            other => panic!("want TruncatedFrame, got {other:?}"),
        }
        let text = err.to_string();
        assert!(
            text.contains(&format!("{expected}")),
            "message names sizes: {text}"
        );
    }

    #[test]
    fn error_reply_shape() {
        let e = error("busy", "too many clients");
        assert_eq!(e.bool_field("ok"), Some(false));
        assert_eq!(e.str_field("kind"), Some("busy"));
        assert!(e.str_field("error").unwrap().contains("clients"));
    }
}
