//! The broker wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or reply — is one JSON object preceded by a
//! 4-byte big-endian length. Requests carry a `"cmd"` field naming the
//! operation; replies always carry `"ok"` (`true`/`false`) and, on
//! failure, a machine-readable `"kind"` plus a human-readable
//! `"error"`. See `docs/BROKER.md` for the full message reference.
//!
//! The length prefix caps frames at [`MAX_FRAME`] bytes: a peer that
//! announces more is a protocol error, not an allocation request.

use std::io::{self, Read, Write};

use crate::json::{self, Json};

/// The largest acceptable frame payload (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame(w: &mut impl Write, message: &Json) -> io::Result<()> {
    let payload = message.to_string();
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    // Prefix and payload go out as ONE write: splitting them across two
    // writes on an unbuffered socket lets Nagle hold the payload until
    // the peer's delayed ACK, turning every request into a ~40ms stall.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one length-prefixed JSON frame. Returns `Ok(None)` on a clean
/// end-of-stream (the peer closed between frames).
///
/// # Errors
///
/// I/O errors, oversized frames, invalid UTF-8, and malformed JSON all
/// surface as `io::Error` (`InvalidData`).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text =
        String::from_utf8(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let value = json::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(value))
}

/// A successful reply skeleton: `{"ok": true}`.
pub fn ok() -> Json {
    Json::obj().with("ok", true)
}

/// An error reply: `{"ok": false, "kind": kind, "error": message}`.
///
/// Established kinds: `bad_request` (malformed frame or missing field),
/// `parse` (a history/scenario/plan text failed to parse), `ill_formed`
/// (well-formedness rejection on publish), `not_found` (unknown
/// location/policy/client), `no_valid_plan` (a run was requested but no
/// statically valid plan exists), `verify` (synthesis failed outright),
/// `busy` (admission control rejected the connection), `shutting_down`
/// (the daemon is draining), `internal`.
pub fn error(kind: &str, message: impl Into<String>) -> Json {
    Json::obj()
        .with("ok", false)
        .with("kind", kind)
        .with("error", message.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let msg = Json::obj()
            .with("cmd", "plan")
            .with("client", "int[req -> eps]");
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &ok()).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some(msg));
        assert_eq!(read_frame(&mut r).unwrap(), Some(ok()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_payload_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ok()).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn error_reply_shape() {
        let e = error("busy", "too many clients");
        assert_eq!(e.bool_field("ok"), Some(false));
        assert_eq!(e.str_field("kind"), Some("busy"));
        assert!(e.str_field("error").unwrap().contains("clients"));
    }
}
