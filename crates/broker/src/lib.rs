//! The orchestration broker daemon: the paper's `Br` as a long-running
//! service.
//!
//! In *Secure and Unfailing Services* the broker mediates between
//! clients and a trusted repository of published services, synthesizing
//! **valid plans** — orchestrations that are secure and never get
//! stuck. This crate makes that broker operational over time: a TCP
//! daemon hosting a *dynamic* repository (services and policies are
//! published, updated and retracted at runtime) that answers plan
//! queries through one long-lived verification cache with incremental
//! invalidation, executes runs with the fault-injection and plan
//! failover machinery, and reports itself through a `stats` command.
//!
//! The wire protocol is length-prefixed JSON ([`proto`], [`json`]) —
//! hand-rolled, because the workspace builds offline with no external
//! crates. See `docs/BROKER.md` for the message reference and
//! `sufs serve` / `sufs publish` / `sufs plan` / `sufs run-remote` /
//! `sufs stats` for the command-line front end.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod json;
pub mod lint;
pub mod metrics;
pub mod proto;
pub mod replication;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use client::{BrokerClient, ReconnectPolicy};
pub use json::{Json, JsonError};
pub use metrics::Metrics;
pub use proto::FrameError;
pub use replication::{AckMode, ElectionMode, Role};
pub use server::{synth_stats_json, verdict_json, Broker, BrokerConfig, BrokerHandle};
