//! Broker-side counters and the synthesis wall-time histogram.
//!
//! All counters are lock-free atomics so request handlers on different
//! connection threads never contend; `snapshot` assembles a consistent-
//! enough view for the `stats` reply (individual counters are exact,
//! cross-counter skew of a few in-flight requests is acceptable).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Upper bucket bounds, in milliseconds, for the synthesis wall-time
/// histogram. A final implicit bucket catches everything above the
/// last bound.
pub const HISTOGRAM_BOUNDS_MS: [u64; 7] = [1, 5, 10, 50, 100, 500, 1000];

const BUCKETS: usize = HISTOGRAM_BOUNDS_MS.len() + 1;

/// Atomic counters shared by every connection thread of a broker.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Connections accepted and admitted.
    pub connections: AtomicU64,
    /// Connections turned away by admission control (`busy` reply).
    pub rejected_busy: AtomicU64,
    /// Total requests answered (any command, any outcome).
    pub requests: AtomicU64,
    /// Requests answered with `ok: false`.
    pub errors: AtomicU64,
    /// `publish`/`publish_policy`/`retract`/`retract_policy` mutations applied.
    pub mutations: AtomicU64,
    /// Cache entries evicted by incremental invalidation.
    pub evictions: AtomicU64,
    /// `plan` queries served.
    pub plans: AtomicU64,
    /// `run` requests served.
    pub runs: AtomicU64,
    /// Sessions that completed only after plan failover (PR-1 recovery).
    pub failed_over: AtomicU64,
    /// Mutation records appended to the write-ahead journal.
    pub journal_records: AtomicU64,
    /// Journal→snapshot compactions performed.
    pub snapshots: AtomicU64,
    /// Retried mutations answered from the idempotency window instead
    /// of being applied again.
    pub dedup_hits: AtomicU64,
    /// Journal records re-applied during the last recovery.
    pub replayed_records: AtomicU64,
    /// Wall time of the last startup recovery, in milliseconds.
    pub last_recovery_ms: AtomicU64,
    /// Journal records shipped to at least one follower (primary side).
    pub records_shipped: AtomicU64,
    /// Replicated records applied through the replay path (follower side).
    pub replicated_records: AtomicU64,
    /// Follower connections accepted (each implies a snapshot bootstrap
    /// served).
    pub follower_connects: AtomicU64,
    /// Snapshot bootstraps this node received as a follower.
    pub bootstraps_received: AtomicU64,
    /// Follower→primary promotions performed on this node.
    pub promotions: AtomicU64,
    /// Quorum-mode mutations whose acknowledgement wait timed out
    /// (applied locally, `"quorum": false` in the reply).
    pub quorum_timeouts: AtomicU64,
    /// `lint` requests served.
    pub lint_requests: AtomicU64,
    /// Mutations rejected by the `--deny-lint` gate.
    pub lint_rejections: AtomicU64,
    /// Lint passes actually (re)run by the incremental engine.
    pub lint_passes_run: AtomicU64,
    /// Lint passes spliced from the engine's dependency cache instead
    /// of being re-run.
    pub lint_passes_reused: AtomicU64,
    /// Client products rebuilt by the last recovery warm start.
    pub warmed_products: AtomicU64,
    /// Candidacies this node started (upstream silent, random delay
    /// elapsed, ballots sent).
    pub elections_started: AtomicU64,
    /// Candidacies this node won (promoted itself).
    pub elections_won: AtomicU64,
    /// Ballots this node granted to other candidates.
    pub votes_granted: AtomicU64,
    /// Primary↔follower role flips in either direction (promotions and
    /// demotions both count; re-points between upstreams do not).
    pub role_transitions: AtomicU64,
    /// Replication streams re-pointed at a different upstream without a
    /// restart (redirect chase, announce, or election loss).
    pub repoints: AtomicU64,
    /// Primary→follower demotions (stale primary fenced by a higher
    /// epoch).
    pub demotions: AtomicU64,
    /// Wall time of the last election this node won, in milliseconds,
    /// measured from detecting primary loss to promotion.
    pub last_election_ms: AtomicU64,
    histogram: [AtomicU64; BUCKETS],
    recovery_histogram: [AtomicU64; BUCKETS],
    replication_histogram: [AtomicU64; BUCKETS],
    election_histogram: [AtomicU64; BUCKETS],
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh, all-zero metrics block stamped with the current instant.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            plans: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            failed_over: AtomicU64::new(0),
            journal_records: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            replayed_records: AtomicU64::new(0),
            last_recovery_ms: AtomicU64::new(0),
            records_shipped: AtomicU64::new(0),
            replicated_records: AtomicU64::new(0),
            follower_connects: AtomicU64::new(0),
            bootstraps_received: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            quorum_timeouts: AtomicU64::new(0),
            lint_requests: AtomicU64::new(0),
            lint_rejections: AtomicU64::new(0),
            lint_passes_run: AtomicU64::new(0),
            lint_passes_reused: AtomicU64::new(0),
            warmed_products: AtomicU64::new(0),
            elections_started: AtomicU64::new(0),
            elections_won: AtomicU64::new(0),
            votes_granted: AtomicU64::new(0),
            role_transitions: AtomicU64::new(0),
            repoints: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            last_election_ms: AtomicU64::new(0),
            histogram: Default::default(),
            recovery_histogram: Default::default(),
            replication_histogram: Default::default(),
            election_histogram: Default::default(),
        }
    }

    /// Records one synthesis call's wall time in the histogram.
    pub fn observe_synthesis(&self, elapsed: Duration) {
        let ms = elapsed.as_millis() as u64;
        let idx = HISTOGRAM_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(BUCKETS - 1);
        self.histogram[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a startup recovery's wall time: the recovery-time
    /// histogram plus the `last_recovery_ms` gauge.
    pub fn observe_recovery(&self, elapsed: Duration) {
        let ms = elapsed.as_millis() as u64;
        let idx = HISTOGRAM_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(BUCKETS - 1);
        self.recovery_histogram[idx].fetch_add(1, Ordering::Relaxed);
        self.last_recovery_ms.store(ms, Ordering::Relaxed);
    }

    /// Records one replicated record's ship→ack round trip as seen by
    /// the primary.
    pub fn observe_replication(&self, elapsed: Duration) {
        let ms = elapsed.as_millis() as u64;
        let idx = HISTOGRAM_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(BUCKETS - 1);
        self.replication_histogram[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one won election's detect→promoted wall time: the
    /// election histogram plus the `last_election_ms` gauge.
    pub fn observe_election(&self, elapsed: Duration) {
        let ms = elapsed.as_millis() as u64;
        let idx = HISTOGRAM_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(BUCKETS - 1);
        self.election_histogram[idx].fetch_add(1, Ordering::Relaxed);
        self.last_election_ms.store(ms, Ordering::Relaxed);
    }

    /// Renders every counter, the histogram, and the uptime as a JSON
    /// object for the `stats` reply.
    pub fn snapshot(&self, cache_hits: u64, cache_misses: u64) -> Json {
        let load = Ordering::Relaxed;
        let total = cache_hits + cache_misses;
        let hit_rate = if total == 0 {
            0.0
        } else {
            cache_hits as f64 / total as f64
        };
        let render_hist = |buckets: &[AtomicU64; BUCKETS]| {
            let mut hist = Json::obj();
            for (i, bound) in HISTOGRAM_BOUNDS_MS.iter().enumerate() {
                hist.set(&format!("le_{bound}ms"), buckets[i].load(load));
            }
            hist.set("inf", buckets[BUCKETS - 1].load(load));
            hist
        };
        let hist = render_hist(&self.histogram);
        let durability = Json::obj()
            .with("journal_records", self.journal_records.load(load))
            .with("snapshots", self.snapshots.load(load))
            .with("dedup_hits", self.dedup_hits.load(load))
            .with("replayed_records", self.replayed_records.load(load))
            .with("last_recovery_ms", self.last_recovery_ms.load(load))
            .with("warmed_products", self.warmed_products.load(load))
            .with(
                "recovery_ms_histogram",
                render_hist(&self.recovery_histogram),
            );
        let replication = Json::obj()
            .with("records_shipped", self.records_shipped.load(load))
            .with("replicated_records", self.replicated_records.load(load))
            .with("follower_connects", self.follower_connects.load(load))
            .with("bootstraps_received", self.bootstraps_received.load(load))
            .with("promotions", self.promotions.load(load))
            .with("quorum_timeouts", self.quorum_timeouts.load(load))
            .with("elections_started", self.elections_started.load(load))
            .with("elections_won", self.elections_won.load(load))
            .with("votes_granted", self.votes_granted.load(load))
            .with("role_transitions", self.role_transitions.load(load))
            .with("repoints", self.repoints.load(load))
            .with("demotions", self.demotions.load(load))
            .with("last_election_ms", self.last_election_ms.load(load))
            .with(
                "replication_ms_histogram",
                render_hist(&self.replication_histogram),
            )
            .with(
                "election_ms_histogram",
                render_hist(&self.election_histogram),
            );
        let passes_run = self.lint_passes_run.load(load);
        let passes_reused = self.lint_passes_reused.load(load);
        let reuse_total = passes_run + passes_reused;
        let reuse_rate = if reuse_total == 0 {
            0.0
        } else {
            passes_reused as f64 / reuse_total as f64
        };
        let lint = Json::obj()
            .with("requests", self.lint_requests.load(load))
            .with("rejections", self.lint_rejections.load(load))
            .with("passes_run", passes_run)
            .with("passes_reused", passes_reused)
            .with("reuse_rate", reuse_rate);
        Json::obj()
            .with("uptime_ms", self.started.elapsed().as_millis() as u64)
            .with("connections", self.connections.load(load))
            .with("rejected_busy", self.rejected_busy.load(load))
            .with("requests", self.requests.load(load))
            .with("errors", self.errors.load(load))
            .with("mutations", self.mutations.load(load))
            .with("evictions", self.evictions.load(load))
            .with("plans", self.plans.load(load))
            .with("runs", self.runs.load(load))
            .with("failed_over", self.failed_over.load(load))
            .with("cache_hits", cache_hits)
            .with("cache_misses", cache_misses)
            .with("cache_hit_rate", hit_rate)
            .with("synthesis_ms_histogram", hist)
            .with("durability", durability)
            .with("replication", replication)
            .with("lint", lint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let m = Metrics::new();
        m.observe_synthesis(Duration::from_millis(0));
        m.observe_synthesis(Duration::from_millis(1));
        m.observe_synthesis(Duration::from_millis(7));
        m.observe_synthesis(Duration::from_millis(2000));
        let snap = m.snapshot(0, 0);
        let hist = snap.get("synthesis_ms_histogram").unwrap();
        assert_eq!(hist.u64_field("le_1ms"), Some(2));
        assert_eq!(hist.u64_field("le_10ms"), Some(1));
        assert_eq!(hist.u64_field("inf"), Some(1));
    }

    #[test]
    fn snapshot_reports_hit_rate() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        let snap = m.snapshot(3, 1);
        assert_eq!(snap.u64_field("requests"), Some(3));
        assert!((snap.get("cache_hit_rate").unwrap().as_f64().unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_hit_rate_is_zero() {
        let snap = Metrics::new().snapshot(0, 0);
        assert_eq!(snap.get("cache_hit_rate").unwrap().as_f64(), Some(0.0));
        let lint = snap.get("lint").unwrap();
        assert_eq!(lint.get("reuse_rate").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn replication_section_pins_election_schema() {
        let m = Metrics::new();
        m.elections_started.fetch_add(3, Ordering::Relaxed);
        m.elections_won.fetch_add(1, Ordering::Relaxed);
        m.votes_granted.fetch_add(2, Ordering::Relaxed);
        m.role_transitions.fetch_add(2, Ordering::Relaxed);
        m.repoints.fetch_add(4, Ordering::Relaxed);
        m.demotions.fetch_add(1, Ordering::Relaxed);
        m.observe_election(Duration::from_millis(42));
        let snap = m.snapshot(0, 0);
        let repl = snap.get("replication").unwrap();
        assert_eq!(repl.u64_field("elections_started"), Some(3));
        assert_eq!(repl.u64_field("elections_won"), Some(1));
        assert_eq!(repl.u64_field("votes_granted"), Some(2));
        assert_eq!(repl.u64_field("role_transitions"), Some(2));
        assert_eq!(repl.u64_field("repoints"), Some(4));
        assert_eq!(repl.u64_field("demotions"), Some(1));
        assert_eq!(repl.u64_field("last_election_ms"), Some(42));
        let hist = repl.get("election_ms_histogram").unwrap();
        assert_eq!(hist.u64_field("le_50ms"), Some(1));
        assert_eq!(hist.u64_field("inf"), Some(0));
    }

    #[test]
    fn election_histogram_buckets_by_upper_bound() {
        let m = Metrics::new();
        m.observe_election(Duration::from_millis(0));
        m.observe_election(Duration::from_millis(2000));
        let snap = m.snapshot(0, 0);
        let hist = snap
            .get("replication")
            .unwrap()
            .get("election_ms_histogram")
            .unwrap();
        assert_eq!(hist.u64_field("le_1ms"), Some(1));
        assert_eq!(hist.u64_field("inf"), Some(1));
        assert_eq!(
            snap.get("replication")
                .unwrap()
                .u64_field("last_election_ms"),
            Some(2000)
        );
    }

    #[test]
    fn lint_reuse_rate_is_reused_over_total() {
        let m = Metrics::new();
        m.lint_passes_run.fetch_add(1, Ordering::Relaxed);
        m.lint_passes_reused.fetch_add(3, Ordering::Relaxed);
        let snap = m.snapshot(0, 0);
        let lint = snap.get("lint").unwrap();
        assert_eq!(lint.u64_field("passes_run"), Some(1));
        assert_eq!(lint.u64_field("passes_reused"), Some(3));
        assert!((lint.get("reuse_rate").unwrap().as_f64().unwrap() - 0.75).abs() < 1e-9);
    }
}
