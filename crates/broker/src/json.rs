//! A minimal JSON value type, encoder and parser.
//!
//! The workspace builds offline with no external crates, so the broker
//! protocol carries a hand-rolled JSON dialect: the full RFC 8259 value
//! grammar, parsed by recursive descent, emitted compactly and
//! deterministically (objects keep insertion order — no hash-map
//! reshuffling between runs). The escaping rules match the `lint
//! --json` / `BENCH_plans.json` emitters, so every machine-readable
//! artefact of the workspace speaks the same dialect.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builder-style field insertion; replaces an existing key.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Inserts or replaces a field (no-op on non-objects).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        if let Json::Obj(fields) = self {
            let value = value.into();
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key.to_owned(), value)),
            }
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Json::as_str`].
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: `get(key)` then [`Json::as_u64`].
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Convenience: `get(key)` then [`Json::as_bool`].
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl<V: Into<Json>> From<BTreeMap<String, V>> for Json {
    fn from(map: BTreeMap<String, V>) -> Json {
        Json::Obj(map.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

/// Escapes a string for embedding in a JSON literal (the same rules as
/// the lint emitter: quotes, backslashes, and control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A JSON parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; trailing non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing input after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.expect(b',')?;
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.peek() == Some(b'e') || self.peek() == Some(b'E') {
            self.pos += 1;
            if self.peek() == Some(b'+') || self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates would need pairing; the protocol
                            // never emits them, so reject instead.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or
                    // escape in one step. `"` and `\` are ASCII, so they
                    // never occur inside a multi-byte UTF-8 sequence and
                    // the run boundary is always a character boundary.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run =
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was a str");
                    out.push_str(run);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-3",
            "2.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ];
        for case in cases {
            let v = parse(case).unwrap();
            assert_eq!(v.to_string(), case, "roundtrip of {case}");
            assert_eq!(parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::str("a\"b\\c\nd\te\u{1}f — π₁↦ℓ");
        let text = v.to_string();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn object_accessors() {
        let v = parse("{\"cmd\":\"plan\",\"n\":7,\"deep\":{\"ok\":true}}").unwrap();
        assert_eq!(v.str_field("cmd"), Some("plan"));
        assert_eq!(v.u64_field("n"), Some(7));
        assert_eq!(v.get("deep").unwrap().bool_field("ok"), Some(true));
        assert_eq!(v.str_field("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn with_replaces_existing_keys() {
        let v = Json::obj().with("a", 1u64).with("a", 2u64).with("b", "x");
        assert_eq!(v.to_string(), "{\"a\":2,\"b\":\"x\"}");
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } ").unwrap().to_string(),
            "{\"a\":[1,2]}"
        );
        for bad in ["", "{", "[1,", "\"abc", "01x", "{\"a\"}", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
        let err = parse("[1,]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u00e9\\n\"").unwrap(), Json::str("é\n"));
        assert!(parse("\"\\ud800\"").is_err(), "lone surrogate rejected");
    }
}
