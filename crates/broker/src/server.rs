//! The broker daemon: a long-running TCP server hosting a dynamic
//! repository.
//!
//! The broker is the paper's `Br` made operational over time: clients
//! publish, update and retract services and policies while other
//! clients keep asking for valid plans and executions. Synthesis runs
//! through one long-lived [`VerifyCache`]; every mutation triggers the
//! *incremental* invalidation that keeps the cache sound
//! ([`VerifyCache::invalidate_location`] /
//! [`VerifyCache::invalidate_registry`]), so a publish at `ℓ` only
//! re-verifies plans that bind `ℓ` — everything else is answered from
//! memo.
//!
//! # Concurrency model
//!
//! One thread per admitted connection. `plan`/`run` requests hold the
//! repository read lock for the duration of the query, so many queries
//! proceed in parallel; mutations take the write lock and invalidate
//! the cache *before* releasing it, so no query can observe a mutated
//! repository paired with stale verdicts. Admission control is
//! explicit: past `max_clients` concurrent connections the broker
//! *replies* `busy` and closes — it never silently stalls the accept
//! queue.
//!
//! # Durability (opt-in)
//!
//! With [`BrokerConfig::state_dir`] set, every state-mutating request
//! is appended to a checksummed write-ahead journal and **fsynced
//! before its reply goes out** ([`crate::wal`]); the journal is
//! periodically compacted into an atomic snapshot
//! ([`crate::snapshot`]), and startup replays snapshot + journal
//! suffix through the same request handlers the wire uses. A bounded
//! idempotency window keyed by client `req_id`s answers retried
//! mutations with their recorded replies, making retries exactly-once.
//! Without a state directory nothing here runs — the broker behaves
//! exactly as before.
//!
//! # Replication (opt-in)
//!
//! With [`BrokerConfig::follow`] set the broker starts as a *follower*:
//! it bootstraps from the upstream's snapshot, applies its journal
//! record stream through the same replay path recovery uses, rejects
//! client mutations with `not_primary`, and serves reads (`plan`,
//! `run`, `repo`, `stats`) from the replicated state. A primary serves
//! any number of `replicate` streams; with [`BrokerConfig::ack`] set to
//! quorum its mutation replies additionally report whether a majority
//! of the configured cluster acknowledged the record. See
//! [`crate::replication`].
//!
//! # Shutdown
//!
//! [`BrokerHandle::shutdown`] (or a `shutdown` request) flips the drain
//! flag, wakes the acceptor, and shuts the read side of every open
//! connection: in-flight requests complete and their replies are
//! delivered — a reply is written only after its WAL fsync, so an `ok`
//! seen by a client during the drain is always durable — new opens are
//! rejected, follower queues are flushed, the replication pull loop is
//! joined, and [`BrokerHandle::join`] returns once every handler
//! thread has drained.

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sufs_core::scenario::parse_scenario;
use sufs_core::{
    recovery_table, synthesize_with, Engine, ProductStore, SynthesisOptions, VerifyCache,
};
use sufs_hexpr::{parse_hist, Hist, Location};
use sufs_lint::{LintEngine, Severity};
use sufs_net::{ChoiceMode, FaultPlan, MonitorMode, Network, Outcome, Plan, Repository, Scheduler};
use sufs_policy::PolicyRegistry;
use sufs_rng::{SeedableRng, StdRng};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::proto::{self, read_frame, write_frame, FrameError};
use crate::replication::{self, AckMode, ElectionMode, Replication};
use crate::snapshot;
use crate::wal::{ReplaySummary, Wal, WalRecord};

/// Retried-mutation ids remembered per broker (the idempotency window).
const DEDUP_WINDOW: usize = 512;

/// Journal payload bytes that force a snapshot even before the
/// record-count threshold is reached.
const SNAPSHOT_MAX_BYTES: u64 = 8 << 20;

/// Configuration for [`Broker::spawn`].
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Bind address; use port 0 to let the OS pick (the bound address
    /// is reported by [`BrokerHandle::addr`]).
    pub addr: String,
    /// Admission cap: connections past this many concurrent clients
    /// get an explicit `busy` reply instead of queueing.
    pub max_clients: usize,
    /// Synthesis options for `plan` queries (callers may override
    /// `jobs`/`prune`/`plan_cap`/`seed` per request).
    pub opts: SynthesisOptions,
    /// Step budget for `run` requests.
    pub fuel: usize,
    /// Durable state directory. `None` (the default) keeps the PR-4
    /// in-memory behaviour; `Some(dir)` journals every mutation to
    /// `dir/journal.wal` (fsync before reply), compacts into
    /// `dir/snapshot.json`, and recovers both on startup.
    pub state_dir: Option<PathBuf>,
    /// Journal records that trigger a snapshot compaction.
    pub snapshot_every: u64,
    /// Start as a follower of this primary: bootstrap from its
    /// snapshot, apply its record stream, reject client mutations with
    /// `not_primary` until promoted. `None` (the default) starts a
    /// primary.
    pub follow: Option<String>,
    /// Mutation acknowledgement mode; quorum waits for a majority of
    /// `cluster_size` before reporting `"quorum": true`.
    pub ack: AckMode,
    /// Total voting nodes (primary included) a quorum is measured
    /// against. Fixed by configuration, *not* by live connections:
    /// counting only connected followers would let a partitioned
    /// minority believe it has a majority.
    pub cluster_size: usize,
    /// How long a quorum-mode mutation waits for follower acks before
    /// degrading to `"quorum": false`.
    pub ack_timeout: Duration,
    /// Follower redial backoff after the upstream connection fails.
    pub follow_retry: Duration,
    /// Replication heartbeat interval; followers treat `4 ×` this of
    /// silence as a dead upstream and redial.
    pub replication_tick: Duration,
    /// Opt-in lint gate: reject client mutations that introduce a new
    /// diagnostic at or above this severity (`Severity::Error` for
    /// `--deny-lint error`, `Severity::Warning` for `--deny-lint
    /// warnings`). `None` (the default) disables gating.
    pub deny_lint: Option<Severity>,
    /// Failover mode: `Manual` (the default) keeps promotion an
    /// operator action; `Auto` lets followers elect a new primary when
    /// the upstream heartbeat goes silent.
    pub election: ElectionMode,
    /// Upper bound of the seeded randomized candidacy delay — the
    /// window simultaneous detectors spread their candidacies over.
    pub election_timeout: Duration,
    /// Seed for the per-node election RNG (perturbed by the advertise
    /// address, so identically seeded nodes still draw distinct
    /// delays).
    pub election_seed: u64,
    /// The address this node is reachable at by its *peers* — carried
    /// in vote/announce traffic and heartbeat peer views. Defaults to
    /// the bound listener address, which is only wrong when clients
    /// reach the node through a proxy (the chaos harness does).
    pub advertise: Option<String>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_clients: 64,
            opts: SynthesisOptions::default(),
            fuel: 100_000,
            state_dir: None,
            snapshot_every: 1024,
            follow: None,
            ack: AckMode::Local,
            cluster_size: 1,
            ack_timeout: Duration::from_secs(5),
            follow_retry: Duration::from_millis(250),
            replication_tick: Duration::from_millis(500),
            deny_lint: None,
            election: ElectionMode::Manual,
            election_timeout: Duration::from_secs(1),
            election_seed: 0,
            advertise: None,
        }
    }
}

/// A bounded FIFO of recently applied mutation ids and the exact
/// replies they produced — the server half of exactly-once retries.
pub(crate) struct DedupWindow {
    entries: VecDeque<(String, Json)>,
    cap: usize,
}

impl DedupWindow {
    fn new(cap: usize) -> Self {
        DedupWindow {
            entries: VecDeque::new(),
            cap,
        }
    }

    fn get(&self, id: &str) -> Option<&Json> {
        self.entries
            .iter()
            .find(|(k, _)| k == id)
            .map(|(_, reply)| reply)
    }

    pub(crate) fn insert(&mut self, id: String, reply: Json) {
        self.entries.retain(|(k, _)| *k != id);
        self.entries.push_back((id, reply));
        while self.entries.len() > self.cap {
            self.entries.pop_front();
        }
    }

    /// Replaces the whole window — a follower adopting its bootstrap
    /// snapshot's idempotency state.
    pub(crate) fn replace(&mut self, entries: Vec<(String, Json)>) {
        self.entries.clear();
        for (id, reply) in entries {
            self.insert(id, reply);
        }
    }

    pub(crate) fn export(&self) -> Vec<(String, Json)> {
        self.entries.iter().cloned().collect()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The durable half of a broker running with a state directory.
///
/// Lock order, everywhere: resource lock (`repo`/`registry`) →
/// `dedup` → `wal` → `repl.followers`. Mutation handlers append to the
/// journal while still holding the resource write lock, so journal
/// order is exactly apply order; the snapshotter takes both resource
/// *read* locks first, which blocks every mutation and freezes the
/// journal tip while the state is captured. Record broadcast and
/// follower registration both happen under the `wal` lock, which is
/// what makes the replication stream exactly journal order with no
/// gaps at join time.
pub(crate) struct Durability {
    pub(crate) dir: PathBuf,
    pub(crate) wal: Mutex<Wal>,
    pub(crate) dedup: Mutex<DedupWindow>,
    snapshot_every: u64,
    /// At most one connection thread compacts at a time.
    snapshotting: AtomicBool,
}

/// Where a request entered the broker; decides journaling, quorum
/// waits, and the follower role check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Source {
    /// Over the wire: journal + broadcast + (maybe) quorum wait, and
    /// reject mutations on a follower.
    Client,
    /// Startup journal replay: re-apply without re-journaling.
    Replay,
    /// The upstream's record stream: apply; the caller journals under
    /// the primary's sequence number.
    Replication,
}

/// What `Broker::spawn` found on disk, applied once `Shared` exists.
struct RecoveryPlan {
    started: Instant,
    covered_seq: u64,
    from_snapshot: bool,
    pending: Vec<WalRecord>,
    summary: ReplaySummary,
    dir: PathBuf,
}

/// Everything the connection threads share.
///
/// Lock order among the resource locks: `repo` → `registry` →
/// `clients` → `lint` (then the durability chain, see [`Durability`]).
/// `cmd_retract_policy` takes a `repo` *read* lock before its
/// `registry` write lock for exactly this reason.
pub(crate) struct Shared {
    pub(crate) repo: RwLock<Repository>,
    pub(crate) registry: RwLock<PolicyRegistry>,
    /// Registered client behaviours (from `publish_scenario`), sorted
    /// by name — the client set repository-wide lint passes analyze.
    pub(crate) clients: RwLock<Vec<(String, Hist)>>,
    pub(crate) cache: VerifyCache,
    /// Composed products for the compositional engine, one per
    /// distinct client behaviour; fingerprint-validated against the
    /// live repository/registry on every query, so mutations need no
    /// explicit product invalidation.
    pub(crate) products: ProductStore,
    /// The incremental lint engine behind the `lint` command and the
    /// `--deny-lint` gate.
    pub(crate) lint: Mutex<LintEngine>,
    /// The configured gate severity; `None` disables gating.
    pub(crate) deny_lint: Option<Severity>,
    pub(crate) metrics: Metrics,
    opts: SynthesisOptions,
    fuel: usize,
    pub(crate) shutting_down: AtomicBool,
    /// Read halves of admitted connections, shut down on drain so idle
    /// handlers wake up and exit.
    conns: Mutex<Vec<TcpStream>>,
    /// Journal + snapshot + idempotency window; `None` without
    /// `--state-dir` (the in-memory PR-4 behaviour, unchanged).
    pub(crate) durability: Option<Durability>,
    /// Role, follower registry, sequence marks; always present (a
    /// plain single node is a primary with no followers).
    pub(crate) repl: Replication,
    /// Weak back-reference to this very `Arc<Shared>`, set right after
    /// construction — lets handler threads (which only see `&Shared`)
    /// spawn pull/announcer threads that need an owned clone.
    pub(crate) self_ref: Mutex<Weak<Shared>>,
}

impl Shared {
    /// Upgrades the self-reference; `None` only during the short
    /// construction window before `Broker::spawn` stores it.
    pub(crate) fn strong(&self) -> Option<Arc<Shared>> {
        self.self_ref.lock().expect("self_ref lock").upgrade()
    }
}

/// The broker daemon; see the module docs for the protocol and the
/// concurrency model.
pub struct Broker;

impl Broker {
    /// Binds `config.addr`, starts the acceptor thread, and returns a
    /// handle to the running daemon.
    ///
    /// With `config.state_dir` set, startup first recovers the durable
    /// state: the snapshot is loaded (if any), the journal is opened
    /// (truncating a torn tail), and every journal record past the
    /// snapshot's coverage is re-applied through the regular request
    /// handlers before the listener starts accepting. Recovery then
    /// warm-starts synthesis: the composed product of every registered
    /// client is rebuilt (priming the verification cache along the
    /// way) before the first connection is admitted, so the post-crash
    /// `plan` burst pays read-off price, not full re-verification.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, and — with a state directory — any
    /// snapshot/journal corruption that torn-tail tolerance cannot
    /// excuse (a snapshot that fails to parse, a journal with a foreign
    /// magic header).
    pub fn spawn(config: BrokerConfig) -> io::Result<BrokerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let mut repo = Repository::new();
        let mut registry = PolicyRegistry::new();
        let mut clients: Vec<(String, Hist)> = Vec::new();
        let mut recovery: Option<RecoveryPlan> = None;
        let durability = match &config.state_dir {
            None => None,
            Some(dir) => {
                let started = Instant::now();
                std::fs::create_dir_all(dir)?;
                let mut dedup = DedupWindow::new(DEDUP_WINDOW);
                let mut covered_seq = 0u64;
                let mut from_snapshot = false;
                if let Some(snap) = snapshot::load(dir)? {
                    covered_seq = snap.covered_seq;
                    repo = snap.repository;
                    registry = snap.registry;
                    clients = snap.clients;
                    for (id, reply) in snap.dedup {
                        dedup.insert(id, reply);
                    }
                    from_snapshot = true;
                }
                let (mut wal, records, summary) = Wal::open(&dir.join(snapshot::JOURNAL_FILE))?;
                // An empty (post-compaction) journal restarts at seq 1;
                // the snapshot's coverage mark keeps new records sorted
                // after everything it already holds.
                wal.ensure_seq_at_least(covered_seq + 1);
                let pending: Vec<WalRecord> = records
                    .into_iter()
                    .filter(|r| r.seq > covered_seq)
                    .collect();
                recovery = Some(RecoveryPlan {
                    started,
                    covered_seq,
                    from_snapshot,
                    pending,
                    summary,
                    dir: dir.clone(),
                });
                Some(Durability {
                    dir: dir.clone(),
                    wal: Mutex::new(wal),
                    dedup: Mutex::new(dedup),
                    snapshot_every: config.snapshot_every.max(1),
                    snapshotting: AtomicBool::new(false),
                })
            }
        };

        let repl = Replication::new(&config);
        let shared = Arc::new(Shared {
            repo: RwLock::new(repo),
            registry: RwLock::new(registry),
            clients: RwLock::new(clients),
            cache: VerifyCache::new(),
            products: ProductStore::new(),
            lint: Mutex::new(LintEngine::new()),
            deny_lint: config.deny_lint,
            metrics: Metrics::new(),
            opts: config.opts,
            fuel: config.fuel,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            durability,
            repl,
            self_ref: Mutex::new(Weak::new()),
        });
        *shared.self_ref.lock().expect("self_ref lock") = Arc::downgrade(&shared);
        shared.repl.set_advertise(
            config
                .advertise
                .clone()
                .filter(|a| !a.is_empty())
                .unwrap_or_else(|| addr.to_string()),
        );
        if let Some(plan) = recovery {
            replay_journal(&shared, plan);
            warm_start(&shared);
        }
        // The recovered journal tip seeds the replication sequence mark
        // (a promoted follower keeps counting from here).
        if let Some(d) = shared.durability.as_ref() {
            let applied = d.wal.lock().expect("wal lock").next_seq().saturating_sub(1);
            shared.repl.applied_seq.store(applied, Ordering::SeqCst);
        }
        // Persisted epoch/term/vote survive restarts — a rebooted voter
        // must not double-vote in a term it already voted in.
        replication::load_meta(&shared);
        if let Some(upstream) = config.follow.clone() {
            replication::spawn_puller(&shared, upstream);
        } else if config.election == ElectionMode::Auto {
            // A primary under automatic failover announces its epoch so
            // healed stale nodes and re-started followers find it.
            replication::spawn_announcer(&shared);
        }
        let accept_shared = Arc::clone(&shared);
        let max_clients = config.max_clients;
        let acceptor = thread::spawn(move || {
            accept_loop(&listener, &accept_shared, max_clients);
        });
        Ok(BrokerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

/// A handle to a running broker.
pub struct BrokerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl BrokerHandle {
    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful shutdown: new connections are rejected,
    /// idle connections are closed, in-flight requests complete.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared, self.addr);
    }

    /// Waits for the daemon to drain; implies [`BrokerHandle::shutdown`]
    /// if it was not already requested.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Blocks until the daemon drains on its own — i.e. until a
    /// `shutdown` request arrives over the wire. Unlike
    /// [`BrokerHandle::join`], this does *not* initiate the shutdown;
    /// it is the foreground mode of `sufs serve`.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Stops the daemon abruptly, **without** draining — the
    /// in-process equivalent of `kill -9` for crash-recovery tests.
    /// Both sides of every connection are severed, so in-flight
    /// replies are cut off mid-socket; the only state that survives is
    /// what the write-ahead journal has already fsynced, which is
    /// precisely the crash contract the recovery path promises.
    pub fn kill(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        {
            let conns = self.shared.conns.lock().expect("conns lock");
            for conn in conns.iter() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // A killed follower must stop applying records *now*: an
        // in-process "dead machine" with a live pull thread would keep
        // mutating the state dir behind the crash test's back.
        replication::stop_puller(&self.shared);
        // Wake the acceptor so it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        begin_shutdown(&self.shared, self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Re-applies the journal suffix through the regular request handlers
/// and logs a one-line recovery summary. Runs before the acceptor
/// starts, so no client can observe a half-recovered repository.
fn replay_journal(shared: &Shared, plan: RecoveryPlan) {
    let d = shared
        .durability
        .as_ref()
        .expect("replay requires durability");
    for record in &plan.pending {
        // The handler re-applies the mutation; all four mutation
        // commands are upserts/deletes, so re-application is exact.
        let _ = handle_request_from(&record.request, shared, Source::Replay);
        if let Some(id) = record.request.str_field("req_id") {
            // The *recorded* reply wins over the recomputed one: its
            // cache-eviction counts reflect what the client was
            // actually told, and a retry must see exactly that.
            d.dedup
                .lock()
                .expect("dedup lock")
                .insert(id.to_owned(), record.reply.clone());
        }
    }
    // Counters accumulated during replay would misreport the daemon's
    // live traffic; recovery has its own metrics.
    shared.metrics.mutations.store(0, Ordering::Relaxed);
    shared.metrics.evictions.store(0, Ordering::Relaxed);
    shared
        .metrics
        .replayed_records
        .store(plan.pending.len() as u64, Ordering::Relaxed);
    shared.metrics.observe_recovery(plan.started.elapsed());
    eprintln!(
        "sufs-broker: recovered from {}: {}, {} journal record(s) replayed, {} torn byte(s) discarded, {:.1}ms",
        plan.dir.display(),
        if plan.from_snapshot {
            format!("snapshot through seq {}", plan.covered_seq)
        } else {
            "no snapshot".to_owned()
        },
        plan.pending.len(),
        plan.summary.truncated_bytes,
        plan.started.elapsed().as_secs_f64() * 1e3,
    );
}

/// Warm-starts synthesis from recovered state, before the listener
/// admits its first connection: every registered client's composed
/// product is (re)built through the shared cache, so the first
/// post-recovery `plan` burst reads plans off instead of paying a full
/// cold re-verification. A client whose product cannot be built (e.g.
/// its plan space exceeds the configured cap) is skipped — the query
/// path reports the same error on demand.
fn warm_start(shared: &Shared) {
    let started = Instant::now();
    let repo = shared.repo.read().expect("repo lock");
    let registry = shared.registry.read().expect("registry lock");
    let clients = shared.clients.read().expect("clients lock");
    let mut warmed = 0usize;
    for (_, client) in clients.iter() {
        if shared
            .products
            .warm(client, &repo, &registry, &shared.opts, Some(&shared.cache))
            .is_ok()
        {
            warmed += 1;
        }
    }
    shared
        .metrics
        .warmed_products
        .store(warmed as u64, Ordering::Relaxed);
    if !clients.is_empty() {
        eprintln!(
            "sufs-broker: warm start: {warmed}/{} client product(s) rebuilt, {:.1}ms",
            clients.len(),
            started.elapsed().as_secs_f64() * 1e3,
        );
    }
}

/// Answers a retried mutation from the idempotency window. Callers
/// hold the mutated resource's write lock, so a hit here can never
/// interleave with the original application. Replayed and replicated
/// records never dedup — their sources already deduplicated them.
///
/// On a quorum-mode broker the recorded reply's `"quorum"` field is
/// re-evaluated against the *current* committed mark: a mutation that
/// timed out on its first attempt reports `"quorum": true` on a retry
/// once the record has reached a majority, which is what lets clients
/// "retry the same req_id until quorum" without re-applying anything.
fn dedup_check(shared: &Shared, request: &Json, source: Source) -> Option<Json> {
    if source != Source::Client {
        return None;
    }
    let d = shared.durability.as_ref()?;
    let id = request.str_field("req_id")?;
    let mut hit = d.dedup.lock().expect("dedup lock").get(id).cloned()?;
    shared.metrics.dedup_hits.fetch_add(1, Ordering::Relaxed);
    if shared.repl.ack_mode == AckMode::Quorum {
        if let Some(seq) = hit.u64_field("seq") {
            let committed = if shared.repl.needed_acks() == 0 {
                true
            } else {
                shared.repl.committed_seq.load(Ordering::SeqCst) >= seq
            };
            hit.set("quorum", committed);
        }
    }
    Some(hit)
}

/// Seals a successful client mutation: journals it (fsync **before**
/// the reply leaves the handler) when it changed state, broadcasts the
/// record to every follower, waits for quorum when configured, and
/// records its `req_id` in the idempotency window. Callers still hold
/// the resource write lock, so journal order is exactly apply order.
fn finish_mutation(
    shared: &Shared,
    request: &Json,
    mut reply: Json,
    changed: bool,
    source: Source,
) -> Json {
    let Some(d) = shared.durability.as_ref() else {
        return reply;
    };
    if changed && source == Source::Client {
        let seq = {
            let mut wal = d.wal.lock().expect("wal lock");
            match wal.append(request, &reply) {
                Err(e) => {
                    // The mutation is applied in memory but not durable;
                    // the client must not mistake it for acknowledged.
                    return proto::error("internal", format!("journal append failed: {e}"));
                }
                Ok(seq) => {
                    reply.set("seq", seq);
                    // Broadcast under the WAL lock: appends are the only
                    // writers of follower queues, so stream order is
                    // exactly journal order.
                    if let Ok(frame) = proto::encode_frame(
                        &Json::obj().with(
                            "rec",
                            Json::obj()
                                .with("seq", seq)
                                .with("req", request.clone())
                                .with("reply", reply.clone()),
                        ),
                    ) {
                        shared.repl.broadcast(seq, &frame, &shared.metrics);
                    }
                    seq
                }
            }
        };
        shared.repl.applied_seq.fetch_max(seq, Ordering::SeqCst);
        shared
            .metrics
            .journal_records
            .fetch_add(1, Ordering::Relaxed);
        if shared.repl.ack_mode == AckMode::Quorum {
            let acked = shared.repl.wait_quorum(seq, &shared.shutting_down);
            if !acked {
                shared
                    .metrics
                    .quorum_timeouts
                    .fetch_add(1, Ordering::Relaxed);
            }
            reply.set("quorum", acked);
        }
    }
    if let Some(id) = request.str_field("req_id") {
        d.dedup
            .lock()
            .expect("dedup lock")
            .insert(id.to_owned(), reply.clone());
    }
    reply
}

/// Compacts the journal into a snapshot once it crosses the configured
/// thresholds. Runs on the connection thread *after* its handler
/// returned (no handler locks held); takes `repo.read` →
/// `registry.read` → `dedup` → `wal` — with both resource read locks
/// held no mutation is in flight, so the journal tip is frozen and
/// matches the captured state exactly.
fn maybe_snapshot(shared: &Shared) {
    let Some(d) = shared.durability.as_ref() else {
        return;
    };
    {
        let wal = d.wal.lock().expect("wal lock");
        if !snapshot::due(
            wal.records_since_truncate(),
            wal.bytes_since_truncate(),
            d.snapshot_every,
            SNAPSHOT_MAX_BYTES,
        ) {
            return;
        }
    }
    if d.snapshotting.swap(true, Ordering::SeqCst) {
        return; // another connection thread is already compacting
    }
    let repo = shared.repo.read().expect("repo lock");
    let registry = shared.registry.read().expect("registry lock");
    let clients = shared.clients.read().expect("clients lock");
    let dedup = d.dedup.lock().expect("dedup lock");
    let mut wal = d.wal.lock().expect("wal lock");
    let covered = wal.next_seq().saturating_sub(1);
    let entries = dedup.export();
    let result = snapshot::write(&d.dir, covered, &repo, &registry, &clients, &entries)
        .and_then(|()| wal.truncate());
    match result {
        Ok(()) => {
            shared.metrics.snapshots.fetch_add(1, Ordering::Relaxed);
        }
        // The journal is kept intact on failure: durability degrades to
        // "journal keeps growing", never to losing state.
        Err(e) => eprintln!("sufs-broker: snapshot failed (journal kept): {e}"),
    }
    d.snapshotting.store(false, Ordering::SeqCst);
}

/// Flips the drain flag, wakes the acceptor with a throwaway connect,
/// and shuts the read side of every admitted connection.
///
/// The flag flips **before** any connection is touched, and every
/// handler re-checks it between reading a request and applying it, so
/// a mutation racing the drain resolves deterministically: either it
/// was applied and fsynced before its `ok` reply went out (the write
/// side stays intact), or the client sees `shutting_down`/EOF and the
/// mutation was never applied. There is no in-between where an
/// acknowledged fsync is lost or an unapplied mutation is acked.
fn begin_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    // Stop pulling from the upstream before the listener closes, so a
    // follower's state stops moving the moment its drain is observable.
    replication::stop_puller(shared);
    // Flush follower queues (ship everything already journaled, then
    // stop) and wake any mutation blocked in a quorum wait.
    shared.repl.drain_followers();
    // Wake the acceptor so it observes the flag.
    let _ = TcpStream::connect(addr);
    // Wake every handler blocked on an idle read: a read-side shutdown
    // surfaces as a clean EOF, while in-flight replies still go out on
    // the intact write side.
    let conns = shared.conns.lock().expect("conns lock");
    for conn in conns.iter() {
        let _ = conn.shutdown(Shutdown::Read);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, max_clients: usize) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            if let Ok(mut s) = stream {
                let _ = write_frame(&mut s, &proto::error("shutting_down", "broker is draining"));
            }
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        handlers.retain(|h| !h.is_finished());
        // Admission control: the count of *live* handler threads is the
        // number of admitted clients still being served.
        if handlers.len() >= max_clients {
            let mut stream = stream;
            shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
            // The `unsolicited` tag marks this as an admission
            // rejection written before any request was read: a client
            // that finds it where a reply should be knows its request
            // was never processed and can safely redial, instead of
            // conflating the frame with (say) a pong.
            let _ = write_frame(
                &mut stream,
                &proto::error(
                    "busy",
                    format!("broker at capacity ({max_clients} clients); retry later"),
                )
                .with("unsolicited", true),
            );
            continue; // dropping the stream closes it
        }
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        if let Ok(read_half) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push(read_half);
        }
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().ok();
        handlers.push(thread::spawn(move || {
            serve_connection(stream, &shared, addr);
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serves one admitted connection until it closes, errors, or the
/// broker drains.
fn serve_connection(mut stream: TcpStream, shared: &Shared, addr: Option<SocketAddr>) {
    loop {
        let request = match read_frame(&mut stream) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            Err(e) => {
                // An oversized announcement gets a *structured* reply
                // before the close, so well-behaved clients can tell
                // "my frame was too big" from line noise.
                let kind = match FrameError::from_io(&e) {
                    Some(FrameError::TooLarge { .. }) => "frame_too_large",
                    _ => "bad_request",
                };
                let _ = write_frame(&mut stream, &proto::error(kind, e.to_string()));
                break;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = write_frame(
                &mut stream,
                &proto::error("shutting_down", "broker is draining"),
            );
            break;
        }
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // `replicate` turns this connection into a record stream: the
        // handler owns the socket until the follower drops or the
        // broker drains.
        if request.str_field("cmd") == Some("replicate") {
            replication::serve_replica(&mut stream, &request, shared);
            break;
        }
        let is_shutdown = request.str_field("cmd") == Some("shutdown");
        let reply = handle_request_from(&request, shared, Source::Client);
        if reply.bool_field("ok") == Some(false) {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        let reply_sent = write_frame(&mut stream, &reply).is_ok();
        // Compaction runs after the handler released its locks (and
        // after the reply went out, so it never adds request latency).
        maybe_snapshot(shared);
        if !reply_sent {
            break;
        }
        if is_shutdown && reply.bool_field("ok") == Some(true) {
            if let Some(addr) = addr {
                begin_shutdown(shared, addr);
            }
            break;
        }
    }
    // Drop this connection's registered read half so the drain list
    // does not grow without bound over the daemon's lifetime.
    if let Ok(peer) = stream.peer_addr() {
        let mut conns = shared.conns.lock().expect("conns lock");
        conns.retain(|c| c.peer_addr().ok() != Some(peer));
    }
}

/// Dispatches one request to its command handler.
pub(crate) fn handle_request_from(request: &Json, shared: &Shared, source: Source) -> Json {
    let Some(cmd) = request.str_field("cmd") else {
        return proto::error("bad_request", "request object lacks a `cmd` field");
    };
    match cmd {
        "ping" => proto::ok().with("pong", true),
        "publish" => cmd_publish(request, shared, source),
        "publish_scenario" => cmd_publish_scenario(request, shared, source),
        "retract" => cmd_retract(request, shared, source),
        "retract_policy" => cmd_retract_policy(request, shared, source),
        "repo" => cmd_repo(shared),
        "plan" => cmd_plan(request, shared),
        "run" => cmd_run(request, shared),
        "lint" => crate::lint::cmd_lint(shared),
        "stats" => cmd_stats(shared),
        "promote" => replication::cmd_promote(shared),
        "vote" => replication::cmd_vote(request, shared),
        "announce" => replication::cmd_announce(request, shared),
        // `replicate` hijacks the whole connection and is intercepted
        // in `serve_connection`; reaching the dispatcher means it came
        // from a journal or replication stream, where it is nonsense.
        "replicate" => proto::error("bad_request", "`replicate` is a connection-level command"),
        "shutdown" => proto::ok().with("draining", true),
        other => proto::error("bad_request", format!("unknown command `{other}`")),
    }
}

/// Rejects client mutations on a follower; replayed and replicated
/// records always apply (that is what a follower is *for*).
fn reject_on_follower(shared: &Shared, source: Source) -> Option<Json> {
    if source == Source::Client && !shared.repl.is_primary() {
        return Some(replication::not_primary(shared));
    }
    None
}

fn require_str<'a>(request: &'a Json, field: &str) -> Result<&'a str, Json> {
    request
        .str_field(field)
        .ok_or_else(|| proto::error("bad_request", format!("missing string field `{field}`")))
}

/// `publish`: parse, well-formedness-check and insert a service; evict
/// exactly the cached verdicts that mention the touched location.
fn cmd_publish(request: &Json, shared: &Shared, source: Source) -> Json {
    if let Some(reject) = reject_on_follower(shared, source) {
        return reject;
    }
    let location = match require_str(request, "location") {
        Ok(l) => l,
        Err(e) => return e,
    };
    let text = match require_str(request, "service") {
        Ok(t) => t,
        Err(e) => return e,
    };
    let service = match parse_hist(text) {
        Ok(h) => h,
        Err(e) => return proto::error("parse", e.to_string()),
    };
    let capacity = request.u64_field("capacity").map(|c| c as usize);
    let mut repo = shared.repo.write().expect("repo lock");
    if let Some(hit) = dedup_check(shared, request, source) {
        return hit;
    }
    // The lint gate needs the registry and client set alongside the
    // repository; both read locks follow `repo` in the lock order.
    let gate_locks = crate::lint::gate_active(shared, source).then(|| {
        (
            shared.registry.read().expect("registry lock"),
            shared.clients.read().expect("clients lock"),
        )
    });
    let gate = match &gate_locks {
        None => None,
        Some((registry, clients)) => match crate::lint::prepare(shared, &repo, registry, clients) {
            Ok(g) => Some(g),
            Err(reply) => return reply,
        },
    };
    let saved = gate.as_ref().map(|_| repo.clone());
    let result = match capacity {
        Some(cap) => repo.try_publish_bounded(location, service, cap),
        None => repo.try_publish(location, service),
    };
    match result {
        Ok(event) => {
            let touched = event.location().clone();
            let evicted = shared.cache.invalidate_location(&touched);
            if let (Some(gate), Some((registry, clients))) = (&gate, &gate_locks) {
                if let Err(reply) = crate::lint::check(shared, gate, &repo, registry, clients) {
                    *repo = saved.expect("saved state when gating");
                    shared.cache.invalidate_location(&touched);
                    return reply;
                }
            }
            shared.metrics.mutations.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
            let reply = proto::ok()
                .with("event", event.to_string())
                .with("evicted", evicted);
            finish_mutation(shared, request, reply, true, source)
        }
        Err(e) => proto::error("ill_formed", e.to_string()),
    }
}

/// `publish_scenario`: merge every `service` and `policy` declaration of
/// a scenario text into the live repository/registry in one request.
fn cmd_publish_scenario(request: &Json, shared: &Shared, source: Source) -> Json {
    if let Some(reject) = reject_on_follower(shared, source) {
        return reject;
    }
    let text = match require_str(request, "text") {
        Ok(t) => t,
        Err(e) => return e,
    };
    let scenario = match parse_scenario(text) {
        Ok(sc) => sc,
        Err(e) => return proto::error("parse", e.to_string()),
    };
    // Take every lock before mutating anything, so no query
    // interleaves between the repository, registry and client updates.
    let mut repo = shared.repo.write().expect("repo lock");
    let mut registry = shared.registry.write().expect("registry lock");
    let mut clients = shared.clients.write().expect("clients lock");
    if let Some(hit) = dedup_check(shared, request, source) {
        return hit;
    }
    let gate = if crate::lint::gate_active(shared, source) {
        match crate::lint::prepare(shared, &repo, &registry, &clients) {
            Ok(g) => Some(g),
            Err(reply) => return reply,
        }
    } else {
        None
    };
    let saved = gate
        .as_ref()
        .map(|_| (repo.clone(), registry.clone(), clients.clone()));
    let mut evicted = 0;
    let mut services = 0u64;
    for (loc, service) in scenario.repository.iter() {
        // The scenario parser already ran the well-formedness check.
        let event = match scenario.repository.capacity(loc).flatten() {
            Some(cap) => repo.try_publish_bounded(loc.clone(), service.clone(), cap),
            None => repo.try_publish(loc.clone(), service.clone()),
        }
        .expect("scenario services are well-formed");
        evicted += shared.cache.invalidate_location(event.location());
        services += 1;
    }
    let mut policies = 0u64;
    for automaton in scenario.registry.iter() {
        registry.register(automaton.clone());
        policies += 1;
    }
    if policies > 0 {
        evicted += shared.cache.invalidate_registry();
    }
    // Scenario clients join the broker's registered client set (upsert
    // by name, kept sorted) — the population the repository-wide lint
    // passes analyze.
    let mut client_count = 0u64;
    for (name, hist) in &scenario.clients {
        match clients.binary_search_by(|(n, _)| n.as_str().cmp(name.as_str())) {
            Ok(i) => clients[i].1 = hist.clone(),
            Err(i) => clients.insert(i, (name.clone(), hist.clone())),
        }
        client_count += 1;
    }
    let changed = services + policies + client_count > 0;
    if changed {
        if let Some(gate) = &gate {
            if let Err(reply) = crate::lint::check(shared, gate, &repo, &registry, &clients) {
                let (r, g, c) = saved.expect("saved state when gating");
                *repo = r;
                *registry = g;
                *clients = c;
                for loc in scenario.repository.locations() {
                    shared.cache.invalidate_location(loc);
                }
                if policies > 0 {
                    shared.cache.invalidate_registry();
                }
                return reply;
            }
        }
        shared.metrics.mutations.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }
    let reply = proto::ok()
        .with("services", services)
        .with("policies", policies)
        .with("clients", client_count)
        .with("evicted", evicted);
    finish_mutation(shared, request, reply, changed, source)
}

/// `retract`: withdraw a service; new plans stop seeing it immediately.
fn cmd_retract(request: &Json, shared: &Shared, source: Source) -> Json {
    if let Some(reject) = reject_on_follower(shared, source) {
        return reject;
    }
    let location = match require_str(request, "location") {
        Ok(l) => Location::new(l),
        Err(e) => return e,
    };
    let mut repo = shared.repo.write().expect("repo lock");
    if let Some(hit) = dedup_check(shared, request, source) {
        return hit;
    }
    let gate_locks = crate::lint::gate_active(shared, source).then(|| {
        (
            shared.registry.read().expect("registry lock"),
            shared.clients.read().expect("clients lock"),
        )
    });
    let gate = match &gate_locks {
        None => None,
        Some((registry, clients)) => match crate::lint::prepare(shared, &repo, registry, clients) {
            Ok(g) => Some(g),
            Err(reply) => return reply,
        },
    };
    let saved = gate.as_ref().map(|_| repo.clone());
    let event = repo.retract(&location);
    let evicted = if event.changed() {
        let n = shared.cache.invalidate_location(&location);
        if let (Some(gate), Some((registry, clients))) = (&gate, &gate_locks) {
            if let Err(reply) = crate::lint::check(shared, gate, &repo, registry, clients) {
                *repo = saved.expect("saved state when gating");
                shared.cache.invalidate_location(&location);
                return reply;
            }
        }
        shared.metrics.mutations.fetch_add(1, Ordering::Relaxed);
        shared.metrics.evictions.fetch_add(n, Ordering::Relaxed);
        n
    } else {
        0
    };
    let reply = proto::ok()
        .with("event", event.to_string())
        .with("changed", event.changed())
        .with("evicted", evicted);
    finish_mutation(shared, request, reply, event.changed(), source)
}

/// `retract_policy`: unregister a policy automaton; histories that
/// reference it fail to resolve from then on.
fn cmd_retract_policy(request: &Json, shared: &Shared, source: Source) -> Json {
    if let Some(reject) = reject_on_follower(shared, source) {
        return reject;
    }
    let name = match require_str(request, "name") {
        Ok(n) => n,
        Err(e) => return e,
    };
    // Lock order is `repo` → `registry`, so the gate's repository view
    // must be taken *before* the registry write lock.
    let gate_repo =
        crate::lint::gate_active(shared, source).then(|| shared.repo.read().expect("repo lock"));
    let mut registry = shared.registry.write().expect("registry lock");
    if let Some(hit) = dedup_check(shared, request, source) {
        return hit;
    }
    let gate_clients = gate_repo
        .as_ref()
        .map(|_| shared.clients.read().expect("clients lock"));
    let gate = match (&gate_repo, &gate_clients) {
        (Some(repo), Some(clients)) => {
            match crate::lint::prepare(shared, repo, &registry, clients) {
                Ok(g) => Some(g),
                Err(reply) => return reply,
            }
        }
        _ => None,
    };
    let saved = gate.as_ref().and_then(|_| registry.get(name).cloned());
    let removed = registry.remove(name).is_some();
    let evicted = if removed {
        let n = shared.cache.invalidate_registry();
        if let (Some(gate), Some(repo), Some(clients)) = (&gate, &gate_repo, &gate_clients) {
            if let Err(reply) = crate::lint::check(shared, gate, repo, &registry, clients) {
                registry.register(saved.expect("removed policy was fetched before removal"));
                shared.cache.invalidate_registry();
                return reply;
            }
        }
        shared.metrics.mutations.fetch_add(1, Ordering::Relaxed);
        shared.metrics.evictions.fetch_add(n, Ordering::Relaxed);
        n
    } else {
        0
    };
    let reply = proto::ok()
        .with("changed", removed)
        .with("evicted", evicted);
    finish_mutation(shared, request, reply, removed, source)
}

/// `repo`: the current contents, for clients and smoke tests.
fn cmd_repo(shared: &Shared) -> Json {
    let repo = shared.repo.read().expect("repo lock");
    let registry = shared.registry.read().expect("registry lock");
    let client_names: Vec<Json> = shared
        .clients
        .read()
        .expect("clients lock")
        .iter()
        .map(|(name, _)| Json::str(name.clone()))
        .collect();
    let services: Vec<Json> = repo
        .iter()
        .map(|(loc, service)| {
            let entry = Json::obj()
                .with("location", loc.to_string())
                .with("service", service.to_string());
            match repo.capacity(loc).flatten() {
                Some(cap) => entry.with("capacity", cap),
                None => entry,
            }
        })
        .collect();
    let policies: Vec<Json> = registry
        .iter()
        .map(|a| Json::str(a.name().to_owned()))
        .collect();
    proto::ok()
        .with("services", services)
        .with("policies", policies)
        .with("clients", client_names)
}

/// Per-request synthesis options: the daemon's defaults, with the
/// request's overrides applied.
fn request_opts(request: &Json, base: &SynthesisOptions) -> SynthesisOptions {
    let mut opts = base.clone();
    if let Some(jobs) = request.u64_field("jobs") {
        opts.jobs = jobs as usize;
    }
    if let Some(cap) = request.u64_field("plan_cap") {
        opts.plan_cap = cap as usize;
    }
    if let Some(seed) = request.u64_field("seed") {
        opts.seed = seed;
    }
    if let Some(prune) = request.bool_field("prune") {
        opts.prune = prune;
    }
    if let Some(engine) = request.str_field("engine").and_then(Engine::parse) {
        opts.engine = engine;
    }
    opts
}

/// One verdict as a wire object: the plan (display form and a
/// `bindings` map), validity, and the violation messages. Shared by the
/// broker's `plan` reply and `sufs verify --json`.
pub fn verdict_json(verdict: &sufs_core::PlanVerdict) -> Json {
    let violations: Vec<Json> = verdict
        .violations
        .iter()
        .map(|v| Json::str(v.to_string()))
        .collect();
    let mut bindings = Json::obj();
    for (r, loc) in verdict.plan.iter() {
        bindings.set(&r.to_string(), loc.to_string());
    }
    Json::obj()
        .with("plan", verdict.plan.to_string())
        .with("bindings", bindings)
        .with("valid", verdict.is_valid())
        .with("violations", violations)
}

/// `plan`: synthesize against the live repository through the shared
/// cache; the broker's core query.
fn cmd_plan(request: &Json, shared: &Shared) -> Json {
    let text = match require_str(request, "client") {
        Ok(t) => t,
        Err(e) => return e,
    };
    let client = match parse_hist(text) {
        Ok(h) => h,
        Err(e) => return proto::error("parse", e.to_string()),
    };
    let opts = request_opts(request, &shared.opts);
    let repo = shared.repo.read().expect("repo lock");
    let registry = shared.registry.read().expect("registry lock");
    let start = Instant::now();
    let max_valid = request.u64_field("max_valid");
    if opts.engine == Engine::Compositional {
        if let Some(k) = max_valid {
            // The production fast path: first k valid plans plus the
            // total count read straight off the resident product,
            // without materialising the full verdict map — per-query
            // cost independent of the plan-space width.
            let read = shared.products.read_valid(
                &client,
                &repo,
                &registry,
                &opts,
                Some(&shared.cache),
                k as usize,
            );
            let (valid, total, stats) = match read {
                Ok(r) => r,
                Err(e) => return proto::error("verify", e.to_string()),
            };
            shared.metrics.observe_synthesis(start.elapsed());
            shared.metrics.plans.fetch_add(1, Ordering::Relaxed);
            let valid: Vec<Json> = valid.iter().map(|p| Json::str(p.to_string())).collect();
            return proto::ok()
                .with("valid", valid)
                .with("valid_total", total)
                .with("stats", synth_stats_json(&stats));
        }
    }
    let result = if opts.engine == Engine::Compositional {
        // The long-lived store reads off (or incrementally patches)
        // the resident product instead of re-walking the plan space.
        shared
            .products
            .synthesize(&client, &repo, &registry, &opts, Some(&shared.cache))
    } else {
        synthesize_with(&client, &repo, &registry, &opts, Some(&shared.cache))
    };
    let synthesis = match result {
        Ok(s) => s,
        Err(e) => return proto::error("verify", e.to_string()),
    };
    shared.metrics.observe_synthesis(start.elapsed());
    shared.metrics.plans.fetch_add(1, Ordering::Relaxed);
    // `max_valid` is the production query shape — "give me a valid
    // orchestration" — where the reply must stay constant-size however
    // wide the plan space is: the first k valid plans plus the total
    // count, with the per-candidate verdict audit omitted.
    if let Some(k) = max_valid {
        let total = synthesis.report.valid_plans().count();
        let valid: Vec<Json> = synthesis
            .report
            .valid_plans()
            .take(k as usize)
            .map(|p| Json::str(p.to_string()))
            .collect();
        return proto::ok()
            .with("valid", valid)
            .with("valid_total", total)
            .with("stats", synth_stats_json(&synthesis.stats));
    }
    let verdicts: Vec<Json> = synthesis
        .report
        .verdicts()
        .iter()
        .map(verdict_json)
        .collect();
    let valid: Vec<Json> = synthesis
        .report
        .valid_plans()
        .map(|p| Json::str(p.to_string()))
        .collect();
    proto::ok()
        .with("valid", valid)
        .with("verdicts", verdicts)
        .with("stats", synth_stats_json(&synthesis.stats))
}

/// [`sufs_core::SynthStats`] as a wire object. Shared by the broker's
/// `plan` reply and `sufs verify --json`.
pub fn synth_stats_json(stats: &sufs_core::SynthStats) -> Json {
    let mut stats_json = Json::obj()
        .with("candidates", stats.candidates)
        .with("pruned_subtrees", stats.pruned_subtrees)
        .with("jobs", stats.jobs)
        .with("prune_active", stats.prune_active)
        .with("engine", stats.engine.as_str())
        .with("elapsed_us", stats.elapsed.as_micros() as u64);
    if let Some(product) = &stats.product {
        stats_json.set(
            "product",
            Json::obj()
                .with("reused", product.reused)
                .with("patched", product.patched)
                .with("admissible_edges", product.admissible_edges)
                .with("total_edges", product.total_edges),
        );
    }
    if let Some(cache) = &stats.cache {
        stats_json.set(
            "cache",
            Json::obj()
                .with("hits", cache.hits())
                .with("misses", cache.misses())
                .with("evictions", cache.evictions),
        );
    }
    stats_json
}

/// Parses a `r=loc,...` plan spec (the `sufs run --plan` syntax).
fn parse_plan_spec(spec: &str) -> Result<Plan, String> {
    let mut plan = Plan::new();
    for binding in spec.split(',').filter(|s| !s.is_empty()) {
        let (r, loc) = binding
            .split_once('=')
            .ok_or_else(|| format!("bad plan binding `{binding}` (want r=loc)"))?;
        let r: u32 = r
            .trim_start_matches('r')
            .parse()
            .map_err(|_| format!("bad request id `{r}`"))?;
        plan.bind(r, loc);
    }
    Ok(plan)
}

/// `run`: execute a client against the live repository, with the PR-1
/// fault/recovery machinery available over the wire.
fn cmd_run(request: &Json, shared: &Shared) -> Json {
    let text = match require_str(request, "client") {
        Ok(t) => t,
        Err(e) => return e,
    };
    let client = match parse_hist(text) {
        Ok(h) => h,
        Err(e) => return proto::error("parse", e.to_string()),
    };
    let faults = match request.str_field("faults") {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(f) => Some(f),
            Err(e) => return proto::error("bad_request", e),
        },
        None => None,
    };
    let recover = request.bool_field("recover").unwrap_or(false);
    let committed = request.bool_field("committed").unwrap_or(false);
    let seed = request.u64_field("seed").unwrap_or(0);
    let fuel = request
        .u64_field("fuel")
        .map(|f| f as usize)
        .unwrap_or(shared.fuel);

    let repo = shared.repo.read().expect("repo lock");
    let registry = shared.registry.read().expect("registry lock");

    let plan = match request.str_field("plan") {
        Some(spec) => match parse_plan_spec(spec) {
            Ok(p) => p,
            Err(e) => return proto::error("bad_request", e),
        },
        None => {
            // No forced plan: synthesize one through the shared cache
            // and refuse the run if no valid plan exists — a structured
            // error, never a hang or a stale answer.
            let start = Instant::now();
            let synthesis =
                match synthesize_with(&client, &repo, &registry, &shared.opts, Some(&shared.cache))
                {
                    Ok(s) => s,
                    Err(e) => return proto::error("verify", e.to_string()),
                };
            shared.metrics.observe_synthesis(start.elapsed());
            let first = synthesis.report.valid_plans().next().cloned();
            match first {
                Some(p) => p,
                None => {
                    return proto::error(
                        "no_valid_plan",
                        format!(
                            "no valid plan among {} candidate(s) for this client",
                            synthesis.report.len()
                        ),
                    )
                }
            }
        }
    };

    let monitor = if request.bool_field("monitor").unwrap_or(false) {
        MonitorMode::Enforcing
    } else {
        MonitorMode::Audit
    };
    let choice = if committed {
        ChoiceMode::Committed
    } else {
        ChoiceMode::Angelic
    };
    let mut scheduler = Scheduler::new(&repo, &registry, monitor, choice);
    if let Some(f) = faults {
        scheduler = scheduler.with_faults(f);
    }
    if recover {
        let table = match recovery_table(std::slice::from_ref(&client), &repo, &registry) {
            Ok(t) => t,
            Err(e) => return proto::error("verify", e.to_string()),
        };
        scheduler = scheduler.with_recovery(table);
    }
    let mut network = Network::new();
    network.add_client(Location::new("client"), client, plan.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let result = match scheduler.run(network, &mut rng, fuel) {
        Ok(r) => r,
        Err(e) => return proto::error("verify", e.to_string()),
    };
    shared.metrics.runs.fetch_add(1, Ordering::Relaxed);
    let recovered = matches!(result.outcome, Outcome::RecoveredVia { .. });
    if recovered {
        shared.metrics.failed_over.fetch_add(1, Ordering::Relaxed);
    }
    let outcome = match &result.outcome {
        Outcome::Completed => "completed".to_owned(),
        Outcome::RecoveredVia { plan, .. } => format!("recovered via {plan}"),
        Outcome::SecurityAbort { policy, .. } => format!("security abort ({policy})"),
        Outcome::Deadlock { component, .. } => format!("deadlock (component {component})"),
        Outcome::OutOfFuel => "out of fuel".to_owned(),
        Outcome::FaultAbort { component } => format!("fault abort (component {component})"),
        Outcome::TimedOut { component } => format!("timed out (component {component})"),
    };
    proto::ok()
        .with("plan", plan.to_string())
        .with("outcome", outcome)
        .with("success", result.outcome.is_success())
        .with("recovered", recovered)
        .with("steps", result.trace.len())
        .with("faults", result.faults.len())
        .with("violations", result.violations.len())
}

/// `stats`: every counter plus the live cache hit-rate, the
/// replication role/lag view, and — on a durable broker — the
/// journal's live state.
fn cmd_stats(shared: &Shared) -> Json {
    let cache = shared.cache.stats();
    let products = shared.products.stats();
    let repo_len = shared.repo.read().expect("repo lock").len();
    let clients_len = shared.clients.read().expect("clients lock").len();
    let mut reply = proto::ok()
        .with("services", repo_len)
        .with("clients", clients_len)
        .with(
            "stats",
            shared.metrics.snapshot(cache.hits(), cache.misses()),
        )
        .with(
            "products",
            Json::obj()
                .with("entries", products.entries)
                .with("builds", products.builds)
                .with("patches", products.patches)
                .with("reads", products.reads)
                .with("evictions", products.evictions)
                .with(
                    "warmed",
                    shared.metrics.warmed_products.load(Ordering::Relaxed),
                ),
        )
        .with("replication", replication::stats_section(shared));
    if let Some(d) = shared.durability.as_ref() {
        let dedup_len = d.dedup.lock().expect("dedup lock").len();
        let wal = d.wal.lock().expect("wal lock");
        reply.set(
            "journal",
            Json::obj()
                .with("state_dir", d.dir.display().to_string())
                .with("records_since_snapshot", wal.records_since_truncate())
                .with("bytes_since_snapshot", wal.bytes_since_truncate())
                .with("next_seq", wal.next_seq())
                .with("snapshot_every", d.snapshot_every)
                .with("dedup_window", dedup_len),
        );
    }
    reply
}
