//! The client side of the broker protocol.
//!
//! [`BrokerClient`] wraps one TCP connection and offers a typed helper
//! per command; every helper returns the raw reply object so callers
//! can inspect `ok`, `kind`, and the command-specific payload fields.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::Json;
use crate::proto::{read_frame, write_frame};

/// One connection to a broker daemon.
pub struct BrokerClient {
    stream: TcpStream,
}

impl BrokerClient {
    /// Connects to a broker at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Frames are single writes, but small request/reply round trips
        // must not wait out Nagle against the peer's delayed ACKs.
        stream.set_nodelay(true)?;
        Ok(BrokerClient { stream })
    }

    /// Sends one request and waits for its reply. A rejected connection
    /// (admission control, drain) surfaces as the server's error reply;
    /// a connection closed with no reply at all is `ConnectionAborted`.
    ///
    /// # Errors
    ///
    /// I/O and framing errors from either direction.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        // A rejected connection may already hold the server's `busy` /
        // `shutting_down` frame: sending is best-effort so the queued
        // rejection is still read back as the reply.
        let _ = write_frame(&mut self.stream, request);
        match read_frame(&mut self.stream)? {
            Some(reply) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "broker closed the connection without replying",
            )),
        }
    }

    /// `ping`.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn ping(&mut self) -> io::Result<Json> {
        self.request(&Json::obj().with("cmd", "ping"))
    }

    /// `publish` a service (optionally with a replication bound).
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn publish(
        &mut self,
        location: &str,
        service: &str,
        capacity: Option<u64>,
    ) -> io::Result<Json> {
        let mut req = Json::obj()
            .with("cmd", "publish")
            .with("location", location)
            .with("service", service);
        if let Some(cap) = capacity {
            req.set("capacity", cap);
        }
        self.request(&req)
    }

    /// `publish_scenario`: merge a whole scenario text.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn publish_scenario(&mut self, text: &str) -> io::Result<Json> {
        self.request(
            &Json::obj()
                .with("cmd", "publish_scenario")
                .with("text", text),
        )
    }

    /// `retract` a service.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn retract(&mut self, location: &str) -> io::Result<Json> {
        self.request(
            &Json::obj()
                .with("cmd", "retract")
                .with("location", location),
        )
    }

    /// `retract_policy` by name.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn retract_policy(&mut self, name: &str) -> io::Result<Json> {
        self.request(&Json::obj().with("cmd", "retract_policy").with("name", name))
    }

    /// `repo`: the current repository contents.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn repo(&mut self) -> io::Result<Json> {
        self.request(&Json::obj().with("cmd", "repo"))
    }

    /// `plan`: synthesize for a client history text.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn plan(&mut self, client: &str) -> io::Result<Json> {
        self.request(&Json::obj().with("cmd", "plan").with("client", client))
    }

    /// `run`: execute a client history text; `extra` fields (plan,
    /// faults, recover, seed, fuel, committed, monitor) are merged into
    /// the request.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn run(&mut self, client: &str, extra: Json) -> io::Result<Json> {
        let mut req = Json::obj().with("cmd", "run").with("client", client);
        if let Json::Obj(fields) = extra {
            for (k, v) in fields {
                req.set(&k, v);
            }
        }
        self.request(&req)
    }

    /// `stats`.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request(&Json::obj().with("cmd", "stats"))
    }

    /// `shutdown`: ask the daemon to drain.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Json::obj().with("cmd", "shutdown"))
    }
}
