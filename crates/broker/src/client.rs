//! The client side of the broker protocol.
//!
//! [`BrokerClient`] wraps one TCP connection and offers a typed helper
//! per command; every helper returns the raw reply object so callers
//! can inspect `ok`, `kind`, and the command-specific payload fields.
//!
//! # Idempotent retries
//!
//! Every mutation helper stamps its request with a fresh `req_id`
//! (UUID-shaped, drawn from the in-tree seeded RNG). Against a broker
//! running with `--state-dir`, the server remembers recently applied
//! mutation ids, so a retry of the *same* request — after a dropped
//! reply, a torn frame, a broker restart — is answered from the
//! recorded reply instead of being applied twice. Enable retries with
//! [`BrokerClient::with_reconnect`]: a bounded loop with exponential
//! backoff and jitter that redials the broker and resends the request
//! verbatim (same `req_id`) on any transport failure.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sufs_rng::{Rng, SeedableRng, StdRng};

use crate::json::Json;
use crate::proto::{read_frame, write_frame};

/// Distinguishes request-id streams of clients created in the same
/// process with the default seed.
static CLIENT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// How a [`BrokerClient`] retries after a transport failure.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Retries after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_delay · 2ⁿ` (plus jitter) …
    pub base_delay: Duration,
    /// … capped at this much.
    pub max_delay: Duration,
    /// Ordered failover list, rotated through on redial: the first
    /// redial dials `addrs[0]`, the next `addrs[1]`, wrapping. Empty
    /// (the default) redials the address the client first connected
    /// to — the pre-replication behaviour.
    pub addrs: Vec<String>,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_retries: 6,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(500),
            addrs: Vec::new(),
        }
    }
}

impl ReconnectPolicy {
    /// Sets the ordered failover address list.
    #[must_use]
    pub fn with_addrs(mut self, addrs: Vec<String>) -> Self {
        self.addrs = addrs;
        self
    }

    /// The address the `redial`-th redial (0-based, counted over the
    /// client's lifetime) should dial, or `None` when the list is empty
    /// and the original peer should be re-dialled.
    pub fn addr_at(&self, redial: usize) -> Option<&str> {
        if self.addrs.is_empty() {
            None
        } else {
            Some(self.addrs[redial % self.addrs.len()].as_str())
        }
    }

    /// The delay before retry `attempt` (0-based): exponential backoff
    /// capped at `max_delay`, with the upper half jittered so a herd of
    /// clients retrying after one broker crash does not stampede in
    /// lockstep.
    fn delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let base = self.base_delay.as_millis() as u64;
        let max = self.max_delay.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(max).max(1);
        let jittered = exp / 2 + rng.gen_range(0..exp / 2 + 1);
        Duration::from_millis(jittered)
    }
}

/// One connection to a broker daemon.
pub struct BrokerClient {
    stream: TcpStream,
    peer: SocketAddr,
    rng: StdRng,
    reconnect: Option<ReconnectPolicy>,
    /// Lifetime redial count; indexes the policy's failover rotation.
    redials: usize,
}

impl BrokerClient {
    /// Connects to a broker at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Frames are single writes, but small request/reply round trips
        // must not wait out Nagle against the peer's delayed ACKs.
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        // Request ids must differ across clients even when several are
        // created back to back, so the default seed mixes wall-clock
        // entropy with a process-wide counter. Tests that need
        // reproducible ids override it with `with_request_seed`.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        let seed = nanos
            ^ CLIENT_COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .rotate_left(32);
        Ok(BrokerClient {
            stream,
            peer,
            rng: StdRng::seed_from_u64(seed),
            reconnect: None,
            redials: 0,
        })
    }

    /// Connects to the first reachable address of an ordered list — the
    /// multi-node entry point. Pair with
    /// [`ReconnectPolicy::with_addrs`] so later redials rotate through
    /// the same list.
    ///
    /// # Errors
    ///
    /// The *last* connect failure when every address is unreachable;
    /// `InvalidInput` on an empty list.
    pub fn connect_any(addrs: &[String]) -> io::Result<Self> {
        let mut last = io::Error::new(io::ErrorKind::InvalidInput, "no addresses to dial");
        for addr in addrs {
            match Self::connect(addr.as_str()) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Enables bounded reconnect-and-retry for this client.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = Some(policy);
        self
    }

    /// Replaces the request-id RNG seed, making the id stream (and the
    /// retry jitter) fully deterministic — for tests and experiments.
    pub fn with_request_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// A fresh UUID-shaped request id (32 hex digits, 8-4-4-4-12).
    fn fresh_req_id(&mut self) -> String {
        let (a, b) = (self.rng.next_u64(), self.rng.next_u64());
        format!(
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            a >> 32,
            (a >> 16) & 0xffff,
            a & 0xffff,
            b >> 48,
            b & 0xffff_ffff_ffff
        )
    }

    /// Sends one request and waits for its reply. A drained connection
    /// surfaces the server's `shutting_down` reply; a connection closed
    /// with no reply at all is `ConnectionAborted`.
    ///
    /// An **unsolicited** rejection — the `busy` frame admission
    /// control writes before reading anything, tagged
    /// `"unsolicited": true` — is never returned as the reply: the
    /// request was not processed, so it surfaces as a
    /// `ConnectionRefused` transport error instead, which
    /// [`BrokerClient::request_retrying`] answers by backing off and
    /// redialling. Without the tag a saturated server's rejection could
    /// masquerade as the reply to whatever was just sent (a pong, say).
    ///
    /// # Errors
    ///
    /// I/O and framing errors from either direction. A mid-frame close
    /// carries a [`crate::proto::FrameError::TruncatedFrame`] naming
    /// expected vs received bytes.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        // A rejected connection may already hold the server's queued
        // rejection frame: sending is best-effort so the rejection is
        // still read back.
        let _ = write_frame(&mut self.stream, request);
        match read_frame(&mut self.stream)? {
            Some(reply) if reply.bool_field("unsolicited") == Some(true) => {
                let detail = reply.str_field("error").unwrap_or("rejected").to_owned();
                Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("connection rejected before the request was read: {detail}"),
                ))
            }
            Some(reply) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "broker closed the connection without replying",
            )),
        }
    }

    /// [`BrokerClient::request`], retried under the reconnect policy
    /// (when one is set): on any transport failure the client backs
    /// off, redials — rotating through the policy's failover address
    /// list when one is configured — and resends the request
    /// **verbatim**: same `req_id`, so a durable broker applies a
    /// retried mutation exactly once even when the retry lands on a
    /// different node.
    ///
    /// A structured `not_primary` rejection is chased rather than
    /// rotated: when the follower's reply names its upstream, the
    /// retry dials *that* address directly — across an election this
    /// converges on the new primary in one hop per redirect instead of
    /// blindly cycling the address list.
    ///
    /// # Errors
    ///
    /// The final attempt's error once the retry budget is exhausted.
    pub fn request_retrying(&mut self, request: &Json) -> io::Result<Json> {
        let Some(policy) = self.reconnect.clone() else {
            return self.request(request);
        };
        let mut attempt = 0u32;
        loop {
            let hint = match self.request(request) {
                Ok(reply) => {
                    let redirect = reply.bool_field("ok") == Some(false)
                        && reply.str_field("kind") == Some("not_primary")
                        && attempt < policy.max_retries;
                    match reply.str_field("primary").filter(|p| !p.is_empty()) {
                        Some(primary) if redirect => Some(primary.to_owned()),
                        _ => return Ok(reply),
                    }
                }
                Err(e) if attempt < policy.max_retries => {
                    let _ = e; // every transport failure is retriable
                    None
                }
                Err(e) => return Err(e),
            };
            std::thread::sleep(policy.delay(attempt, &mut self.rng));
            attempt += 1;
            let target = match hint {
                Some(primary) => Some(primary),
                None => {
                    let rotated = policy.addr_at(self.redials).map(str::to_owned);
                    self.redials += 1;
                    rotated
                }
            };
            let dialled = match &target {
                Some(addr) => TcpStream::connect(addr.as_str()),
                None => TcpStream::connect(self.peer),
            };
            if let Ok(stream) = dialled {
                let _ = stream.set_nodelay(true);
                if let Ok(peer) = stream.peer_addr() {
                    self.peer = peer;
                }
                self.stream = stream;
            }
        }
    }

    /// Stamps `req` with a fresh `req_id` and sends it with retries.
    fn mutate(&mut self, mut req: Json) -> io::Result<Json> {
        req.set("req_id", self.fresh_req_id());
        self.request_retrying(&req)
    }

    /// `ping`.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn ping(&mut self) -> io::Result<Json> {
        self.request(&Json::obj().with("cmd", "ping"))
    }

    /// `publish` a service (optionally with a replication bound).
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn publish(
        &mut self,
        location: &str,
        service: &str,
        capacity: Option<u64>,
    ) -> io::Result<Json> {
        let mut req = Json::obj()
            .with("cmd", "publish")
            .with("location", location)
            .with("service", service);
        if let Some(cap) = capacity {
            req.set("capacity", cap);
        }
        self.mutate(req)
    }

    /// `publish_scenario`: merge a whole scenario text.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn publish_scenario(&mut self, text: &str) -> io::Result<Json> {
        self.mutate(
            Json::obj()
                .with("cmd", "publish_scenario")
                .with("text", text),
        )
    }

    /// `retract` a service.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn retract(&mut self, location: &str) -> io::Result<Json> {
        self.mutate(
            Json::obj()
                .with("cmd", "retract")
                .with("location", location),
        )
    }

    /// `retract_policy` by name.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn retract_policy(&mut self, name: &str) -> io::Result<Json> {
        self.mutate(Json::obj().with("cmd", "retract_policy").with("name", name))
    }

    /// `repo`: the current repository contents.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn repo(&mut self) -> io::Result<Json> {
        self.request_retrying(&Json::obj().with("cmd", "repo"))
    }

    /// `plan`: synthesize for a client history text.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn plan(&mut self, client: &str) -> io::Result<Json> {
        self.plan_with(client, Json::obj())
    }

    /// `plan` with `extra` fields (e.g. `engine`) merged into the
    /// request.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn plan_with(&mut self, client: &str, extra: Json) -> io::Result<Json> {
        let mut req = Json::obj().with("cmd", "plan").with("client", client);
        if let Json::Obj(fields) = extra {
            for (k, v) in fields {
                req.set(&k, v);
            }
        }
        self.request_retrying(&req)
    }

    /// `run`: execute a client history text; `extra` fields (plan,
    /// faults, recover, seed, fuel, committed, monitor) are merged into
    /// the request.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn run(&mut self, client: &str, extra: Json) -> io::Result<Json> {
        let mut req = Json::obj().with("cmd", "run").with("client", client);
        if let Json::Obj(fields) = extra {
            for (k, v) in fields {
                req.set(&k, v);
            }
        }
        self.request_retrying(&req)
    }

    /// `stats`.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request_retrying(&Json::obj().with("cmd", "stats"))
    }

    /// `lint`: run the broker's incremental lint engine over the live
    /// repository and fetch the full report.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn lint(&mut self) -> io::Result<Json> {
        self.request_retrying(&Json::obj().with("cmd", "lint"))
    }

    /// `promote`: ask a follower to become the primary.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn promote(&mut self) -> io::Result<Json> {
        self.request_retrying(&Json::obj().with("cmd", "promote"))
    }

    /// `shutdown`: ask the daemon to drain.
    ///
    /// # Errors
    ///
    /// As [`BrokerClient::request`].
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Json::obj().with("cmd", "shutdown"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_ids_are_uuid_shaped_and_deterministic_under_a_seed() {
        // A client without a live socket: build the pieces directly.
        let mut rng = StdRng::seed_from_u64(7);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let expect = format!(
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            a >> 32,
            (a >> 16) & 0xffff,
            a & 0xffff,
            b >> 48,
            b & 0xffff_ffff_ffff
        );
        assert_eq!(expect.len(), 36);
        assert_eq!(expect.matches('-').count(), 4);
        // Same seed, same stream.
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn redial_rotation_walks_the_address_list_in_order() {
        let policy = ReconnectPolicy::default().with_addrs(vec![
            "10.0.0.1:7001".to_owned(),
            "10.0.0.2:7001".to_owned(),
            "10.0.0.3:7001".to_owned(),
        ]);
        let walked: Vec<&str> = (0..7).filter_map(|n| policy.addr_at(n)).collect();
        assert_eq!(
            walked,
            [
                "10.0.0.1:7001",
                "10.0.0.2:7001",
                "10.0.0.3:7001",
                "10.0.0.1:7001",
                "10.0.0.2:7001",
                "10.0.0.3:7001",
                "10.0.0.1:7001",
            ]
        );
    }

    #[test]
    fn empty_address_list_redials_the_original_peer() {
        let policy = ReconnectPolicy::default();
        for n in 0..4 {
            assert_eq!(policy.addr_at(n), None);
        }
    }

    #[test]
    fn backoff_is_bounded_and_grows() {
        let policy = ReconnectPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            ..ReconnectPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut last_cap = 0;
        for attempt in 0..8 {
            let d = policy.delay(attempt, &mut rng).as_millis() as u64;
            // Jitter keeps the delay within [exp/2, exp] for the capped
            // exponential `exp`.
            let exp = (10u64 << attempt).min(100);
            assert!(d >= exp / 2 && d <= exp, "attempt {attempt}: {d}ms");
            last_cap = last_cap.max(d);
        }
        assert!(last_cap <= 100);
    }
}
