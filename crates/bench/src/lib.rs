//! Workload generators shared by the `sufs` benchmark suite.
//!
//! Each generator is deterministic in its parameters (no wall-clock
//! randomness), so benchmark series are reproducible. The `benches/`
//! directory regenerates every experiment of `EXPERIMENTS.md`:
//!
//! | bench target          | experiment |
//! |-----------------------|------------|
//! | `compliance`          | E2, B1     |
//! | `validity`            | E1, B2     |
//! | `plans`               | E4, B3     |
//! | `monitor_overhead`    | E8, B4     |
//! | `automata_ops`        | B5         |
//! | `effects`             | B6         |

use sufs_rng::{Rng, SeedableRng, StdRng};

use sufs_contract::{dual, Contract};
use sufs_hexpr::builder::*;
use sufs_hexpr::{Channel, Hist};
use sufs_lang::Expr;
use sufs_net::{Plan, Repository};

pub mod harness;

/// A deterministic RNG for workload generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random communication-only behaviour of the given `depth`, with
/// choices of width up to `width`. Deterministic in `(depth, width,
/// seed)`.
pub fn random_contract(depth: usize, width: usize, seed: u64) -> Contract {
    let mut r = rng(seed);
    let h = gen_hist(depth, width, &mut r);
    Contract::new(h).expect("generated contracts are well-formed")
}

fn gen_hist(depth: usize, width: usize, r: &mut StdRng) -> Hist {
    if depth == 0 {
        return Hist::Eps;
    }
    let w = r.gen_range(1..=width.max(1));
    let chans: Vec<Channel> = (0..w).map(|i| Channel::new(format!("c{i}"))).collect();
    let branches: Vec<(Channel, Hist)> = chans
        .into_iter()
        .map(|c| (c, gen_hist(depth - 1, width, r)))
        .collect();
    if r.gen_bool(0.5) {
        Hist::Int(branches)
    } else {
        Hist::Ext(branches)
    }
}

/// A compliant pair: a random contract and its dual.
pub fn compliant_pair(depth: usize, width: usize, seed: u64) -> (Contract, Contract) {
    let c = random_contract(depth, width, seed);
    let d = dual(&c);
    (c, d)
}

/// A (usually) non-compliant pair: the dual with one extra internal
/// branch grafted on a fresh channel, which the client cannot receive.
pub fn broken_pair(depth: usize, width: usize, seed: u64) -> (Contract, Contract) {
    let c = random_contract(depth, width, seed);
    let d = dual(&c);
    let poisoned = poison(d.hist());
    (
        c,
        Contract::new(poisoned).expect("poisoned contract is well-formed"),
    )
}

fn poison(h: &Hist) -> Hist {
    match h {
        Hist::Int(bs) => {
            let mut bs = bs.clone();
            bs.push((Channel::new("zz_unexpected"), Hist::Eps));
            Hist::Int(bs)
        }
        Hist::Ext(bs) if !bs.is_empty() => {
            let mut bs = bs.clone();
            let (c, cont) = bs.remove(0);
            bs.insert(0, (c, poison(&cont)));
            Hist::Ext(bs)
        }
        Hist::Seq(a, b) => Hist::seq(poison(a), (**b).clone()),
        other => {
            // Terminal position: append an unexpected send.
            Hist::seq(
                other.clone(),
                Hist::int_([(Channel::new("zz_unexpected"), Hist::Eps)]),
            )
        }
    }
}

/// A client firing a chain of `n` events inside a framing — the
/// validity-scaling workload (B2).
pub fn framed_event_chain(n: usize, policy: sufs_hexpr::PolicyRef) -> Hist {
    framed(policy, Hist::seq_all((0..n).map(|i| ev("op", [i as i64]))))
}

/// The hotel repository of the paper scaled to `h` hotels (`s1`…`sh`,
/// prices and ratings cycling through the paper's values) plus the
/// broker at `br`.
pub fn scaled_hotel_repo(h: usize) -> Repository {
    let mut repo = Repository::new();
    repo.publish("br", sufs::paper::broker());
    let prices = [45i64, 70, 90, 50, 30, 120];
    let ratings = [80i64, 100, 100, 90, 60, 95];
    for i in 1..=h {
        repo.publish(
            format!("s{i}"),
            sufs::paper::hotel(
                i as i64,
                prices[i % prices.len()],
                ratings[i % ratings.len()],
            ),
        );
    }
    repo
}

/// A client issuing `r` independent requests, each a one-round
/// request/response — the plan-enumeration workload (B3): the plan
/// space over a repository of `s` services has `sʳ` candidates.
pub fn multi_request_client(r: usize) -> Hist {
    Hist::seq_all((0..r).map(|i| {
        request(
            i as u32 + 1,
            None,
            seq([send("q", eps()), offer([("a", eps())])]),
        )
    }))
}

/// A repository of `s` interchangeable responder services for
/// [`multi_request_client`].
pub fn responder_repo(s: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..s {
        repo.publish(format!("srv{i}"), recv("q", choose([("a", eps())])));
    }
    repo
}

/// A repository of `good` compliant responders plus `bad` services whose
/// reply (`b`) the [`multi_request_client`] cannot accept — the pruned
/// plan-synthesis workload: of the `(good+bad)ʳ` candidates only
/// `goodʳ` survive the pairwise compliance check, so a pruning verifier
/// can cut every subtree below a bad binding.
pub fn mixed_responder_repo(good: usize, bad: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..good {
        repo.publish(format!("good{i}"), recv("q", choose([("a", eps())])));
    }
    for i in 0..bad {
        repo.publish(format!("bad{i}"), recv("q", choose([("b", eps())])));
    }
    repo
}

/// A plan binding every request of [`multi_request_client`] to the
/// first responder.
pub fn first_responder_plan(r: usize) -> Plan {
    let mut plan = Plan::new();
    for i in 0..r {
        plan.bind(i as u32 + 1, "srv0");
    }
    plan
}

/// A ping-pong client of `k` rounds, each logging an event — the
/// monitor-overhead workload (B4).
pub fn ping_pong_client(k: usize) -> Hist {
    let mut body = eps();
    for i in (0..k).rev() {
        body = seq([ev("round", [i as i64]), send("ping", recv("pong", body))]);
    }
    request(1, None, body)
}

/// The ping-pong server: answers any number of rounds.
pub fn ping_pong_server() -> Hist {
    sufs_hexpr::parse_hist("mu h. ext[ping -> int[pong -> h]]").expect("static source parses")
}

/// A synthesis workload sourced from the scenario generator instead of
/// the inline builders: the generated scenario's repository and policy
/// registry, plus the client with the widest plan space.
pub struct GenWorkload {
    /// The `SUFS_BENCH_GEN` spec this workload was built from.
    pub spec: String,
    /// Name of the scenario client the benches plan for.
    pub client_name: String,
    /// That client's history expression.
    pub client: Hist,
    /// The generated repository.
    pub repo: Repository,
    /// The scenario's policy registry (frames reference it).
    pub registry: sufs_policy::PolicyRegistry,
    /// Requests the chosen client opens: the candidate plan space is
    /// `repo.len()^requests`.
    pub requests: usize,
    /// The full scenario text, for benches that publish over the wire.
    pub scenario: String,
}

/// Reads `SUFS_BENCH_GEN` and, when set, builds the described workload.
/// The spec is comma-separated `key=value` pairs plus the bare `faults`
/// switch — e.g. `profile=mesh,services=6,seed=3,policies=deny+frame` —
/// mirroring the `sufs gen` flags (with `+` joining policy layers,
/// since `,` separates pairs). Panics on a malformed spec: a bench
/// silently falling back to the inline topology would mislabel its
/// numbers.
pub fn gen_workload_from_env() -> Option<GenWorkload> {
    let spec = std::env::var("SUFS_BENCH_GEN")
        .ok()
        .filter(|v| !v.is_empty())?;
    match gen_workload(&spec) {
        Ok(w) => Some(w),
        Err(e) => panic!("SUFS_BENCH_GEN `{spec}`: {e}"),
    }
}

/// Builds a [`GenWorkload`] from a spec string (see
/// [`gen_workload_from_env`]).
pub fn gen_workload(spec: &str) -> Result<GenWorkload, String> {
    use sufs_corpus::{generate, GenConfig, PolicyMix, Profile};

    let mut cfg = GenConfig {
        seed: 0,
        services: 4,
        profile: Profile::Mesh,
        faults: false,
        policies: PolicyMix::default(),
    };
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = part.split_once('=').unwrap_or((part, ""));
        match key {
            "profile" => {
                cfg.profile =
                    Profile::parse(value).ok_or_else(|| format!("bad profile `{value}`"))?;
            }
            "services" => {
                cfg.services = value
                    .parse()
                    .map_err(|_| format!("bad services `{value}`"))?;
            }
            "seed" => {
                cfg.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "policies" => {
                cfg.policies = PolicyMix::parse(&value.replace('+', ","))?;
            }
            "faults" => cfg.faults = true,
            other => return Err(format!("unknown spec key `{other}`")),
        }
    }
    let generated = generate(&cfg);
    let sc = sufs_core::scenario::parse_scenario(&generated.scenario)
        .map_err(|e| format!("generated scenario does not parse: {e}"))?;
    let (client_name, client) = sc
        .clients
        .iter()
        .max_by_key(|(_, h)| sufs_hexpr::requests::requests(h).len())
        .cloned()
        .ok_or_else(|| "generated scenario has no clients".to_owned())?;
    let requests = sufs_hexpr::requests::requests(&client).len();
    Ok(GenWorkload {
        spec: spec.to_owned(),
        client_name,
        client,
        repo: sc.repository,
        registry: sc.registry,
        requests,
        scenario: generated.scenario,
    })
}

/// A λ-term of `n` chained event-emitting lets — the effect-inference
/// workload (B6).
pub fn lambda_chain(n: usize) -> Expr {
    let mut body = Expr::Unit;
    for i in (0..n).rev() {
        body = Expr::let_(format!("x{i}"), Expr::event("step", [i as i64]), body);
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_contract::compliant;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_contract(3, 2, 7), random_contract(3, 2, 7));
        assert_ne!(random_contract(3, 2, 7), random_contract(3, 2, 8));
    }

    #[test]
    fn compliant_pairs_comply_and_broken_pairs_do_not() {
        for seed in 0..20 {
            let (c, d) = compliant_pair(4, 3, seed);
            assert!(compliant(&c, &d).holds(), "seed {seed}");
        }
        let mut broken_count = 0;
        for seed in 0..20 {
            let (c, d) = broken_pair(4, 3, seed);
            if !compliant(&c, &d).holds() {
                broken_count += 1;
            }
        }
        assert!(broken_count >= 15, "poisoning rarely broke compliance");
    }

    #[test]
    fn scaled_repo_has_expected_size() {
        let repo = scaled_hotel_repo(10);
        assert_eq!(repo.len(), 11); // broker + 10 hotels
    }

    #[test]
    fn multi_request_fixture_is_coherent() {
        let client = multi_request_client(3);
        assert!(sufs_hexpr::wf::check(&client).is_ok());
        let repo = responder_repo(2);
        let plans = sufs_core::enumerate_plans(&client, &repo, 1000).unwrap();
        assert_eq!(plans.len(), 8); // 2³
        let plan = first_responder_plan(3);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn mixed_repo_splits_valid_and_invalid() {
        let client = multi_request_client(2);
        let repo = mixed_responder_repo(2, 2);
        assert_eq!(repo.len(), 4);
        let report =
            sufs_core::verify(&client, &repo, &sufs_policy::PolicyRegistry::new()).unwrap();
        assert_eq!(report.len(), 16); // 4²
        assert_eq!(report.valid_plans().count(), 4); // 2²
    }

    #[test]
    fn ping_pong_fixture_runs() {
        use sufs_rng::SeedableRng;
        let mut repo = Repository::new();
        repo.publish("srv", ping_pong_server());
        let reg = sufs_policy::PolicyRegistry::new();
        let mut net = sufs_net::Network::new();
        net.add_client("c", ping_pong_client(5), Plan::new().with(1u32, "srv"));
        let r = sufs_net::Scheduler::new(
            &repo,
            &reg,
            sufs_net::MonitorMode::Off,
            sufs_net::ChoiceMode::Angelic,
        )
        .run(net, &mut sufs_rng::StdRng::seed_from_u64(1), 10_000)
        .unwrap();
        assert!(r.outcome.is_success());
    }

    #[test]
    fn gen_workload_specs_parse_and_synthesize() {
        let w = gen_workload("profile=star,services=5,seed=2,policies=deny+cap").unwrap();
        assert!(w.requests >= 1);
        assert!(!w.repo.is_empty());
        let synthesis = sufs_core::synthesize(
            &w.client,
            &w.repo,
            &w.registry,
            &sufs_core::SynthesisOptions::default(),
        )
        .expect("generated workload synthesizes");
        assert!(
            synthesis.report.valid_plans().next().is_some(),
            "generated workloads always admit the all-honest plan"
        );
        assert!(gen_workload("profile=ring").is_err());
        assert!(gen_workload("seeds=1").is_err());
        assert!(gen_workload("policies=frmae").is_err());
    }

    #[test]
    fn lambda_chain_infers() {
        let e = lambda_chain(10);
        let te = sufs_lang::infer(&e).unwrap();
        assert_eq!(te.effect.size(), 19); // 10 events + 9 seqs
    }
}
