//! A minimal, dependency-free benchmark harness.
//!
//! The workspace must build and run offline, so instead of an external
//! benchmarking crate this module provides the small slice of the
//! familiar API the `benches/` targets use — [`Criterion`],
//! [`BenchmarkId`], `bench_function`, `benchmark_group`,
//! `bench_with_input`, [`criterion_group!`](crate::criterion_group) and
//! [`criterion_main!`](crate::criterion_main) — backed by
//! `std::time::Instant`.
//!
//! Methodology: each benchmark is warmed up, then the iteration count
//! is calibrated so one sample takes a few tens of milliseconds, and
//! the best of several samples is reported (ns/iter). Set
//! `SUFS_BENCH_SAMPLE_MS` to trade accuracy for wall-clock time.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Target duration of a single measured sample.
fn sample_budget() -> Duration {
    let ms = std::env::var("SUFS_BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(30);
    Duration::from_millis(ms)
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Measures `f` under `name` and prints the result.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named family of measurements (`group/benchmark/param` labels).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness auto-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures `f` on `input` under the group-qualified label of `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Measures `f` under the group-qualified `name`.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{name}", self.name);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (printing happens eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark label, optionally `function/parameter`-shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A bare parameter label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The per-benchmark timing loop: call [`Bencher::iter`] with the
/// routine to measure.
#[derive(Debug, Default)]
pub struct Bencher {
    best_ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Calibrates, samples and records the best observed cost of `f`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up and calibration: grow the batch until it costs a
        // measurable slice of the budget.
        let budget = sample_budget();
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget / 10 || batch >= 1 << 24 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch *= 4;
        };
        // Choose a batch size close to the sample budget, then take the
        // best of a handful of samples (minimum = least interference).
        let iters = ((budget.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns);
        }
        self.best_ns_per_iter = Some(best);
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    match b.best_ns_per_iter {
        Some(ns) if ns >= 1_000_000.0 => println!("{label:<50} {:>12.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1_000.0 => println!("{label:<50} {:>12.3} µs/iter", ns / 1e3),
        Some(ns) => println!("{label:<50} {ns:>12.1} ns/iter"),
        None => println!("{label:<50} (no measurement)"),
    }
}

/// Collects benchmark functions into a runnable group, mirroring the
/// macro of the same name from the external crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.best_ns_per_iter.is_some());
    }

    #[test]
    fn ids_compose_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
