//! E2 / B1 — compliance checking: the paper's broker-vs-hotel pairs and
//! scaling over contract depth and width, for both decision procedures
//! (Theorem 1's product automaton and the coinductive Definition 4).

use sufs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sufs::paper;
use sufs_bench::{broken_pair, compliant_pair};
use sufs_contract::{compliant, compliant_coinductive, Contract};
use sufs_hexpr::Location;

fn paper_pairs(c: &mut Criterion) {
    let repo = paper::repository();
    let broker_body = sufs_hexpr::requests::requests(&paper::broker())[0]
        .body
        .clone();
    let broker_side = Contract::from_service(&broker_body).unwrap();
    let mut group = c.benchmark_group("compliance_paper");
    for loc in ["s1", "s2", "s3", "s4"] {
        let hotel = Contract::from_service(repo.get(&Location::new(loc)).unwrap()).unwrap();
        group.bench_with_input(BenchmarkId::new("product", loc), &hotel, |b, hotel| {
            b.iter(|| compliant(&broker_side, hotel).holds())
        });
        group.bench_with_input(BenchmarkId::new("coinductive", loc), &hotel, |b, hotel| {
            b.iter(|| compliant_coinductive(&broker_side, hotel))
        });
    }
    group.finish();
}

fn scaling_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("compliance_scaling_depth");
    for depth in [2usize, 4, 6, 8] {
        let (client, server) = compliant_pair(depth, 3, 42);
        group.bench_with_input(
            BenchmarkId::new("compliant/product", depth),
            &depth,
            |b, _| b.iter(|| compliant(&client, &server).holds()),
        );
        group.bench_with_input(
            BenchmarkId::new("compliant/coinductive", depth),
            &depth,
            |b, _| b.iter(|| compliant_coinductive(&client, &server)),
        );
        let (bclient, bserver) = broken_pair(depth, 3, 42);
        group.bench_with_input(BenchmarkId::new("broken/product", depth), &depth, |b, _| {
            b.iter(|| compliant(&bclient, &bserver).holds())
        });
    }
    group.finish();
}

fn scaling_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("compliance_scaling_width");
    for width in [2usize, 4, 6, 8] {
        let (client, server) = compliant_pair(4, width, 7);
        group.bench_with_input(BenchmarkId::new("product", width), &width, |b, _| {
            b.iter(|| compliant(&client, &server).holds())
        });
    }
    group.finish();
}

criterion_group!(benches, paper_pairs, scaling_depth, scaling_width);
criterion_main!(benches);
