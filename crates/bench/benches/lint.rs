//! Lint wall-time: the full multi-pass static diagnostics engine over
//! the paper's §2 hotel scenario (clean) and the deliberately flawed
//! lint demo (every pass fires). Parsing is benchmarked separately so
//! the lint numbers isolate the analyses.

use sufs_bench::harness::{criterion_group, criterion_main, Criterion};

use sufs_core::scenario::parse_scenario;
use sufs_lint::lint_scenario;

const HOTEL: &str = include_str!("../../../scenarios/hotel.sufs");
const DEMO: &str = include_str!("../../../scenarios/lint_demo.sufs");

fn lint_hotel(c: &mut Criterion) {
    let sc = parse_scenario(HOTEL).unwrap();
    c.bench_function("lint/hotel", |b| b.iter(|| lint_scenario(&sc).unwrap()));
}

fn lint_demo(c: &mut Criterion) {
    let sc = parse_scenario(DEMO).unwrap();
    c.bench_function("lint/lint_demo", |b| b.iter(|| lint_scenario(&sc).unwrap()));
}

fn parse_hotel(c: &mut Criterion) {
    c.bench_function("lint/parse_hotel", |b| {
        b.iter(|| parse_scenario(HOTEL).unwrap())
    });
}

criterion_group!(benches, lint_hotel, lint_demo, parse_hotel);
criterion_main!(benches);
