//! E8 / B4 — the cost of the run-time monitor that §5 makes
//! unnecessary: the same ping-pong workload executed with the validity
//! monitor enforcing vs switched off, as sessions grow longer and as
//! more policies are active.

use sufs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs_bench::{ping_pong_client, ping_pong_server};
use sufs_hexpr::{Hist, PolicyRef};
use sufs_net::{ChoiceMode, MonitorMode, Network, Plan, Repository, Scheduler};
use sufs_policy::{catalog, PolicyRegistry};

fn repo() -> Repository {
    let mut repo = Repository::new();
    repo.publish("srv", ping_pong_server());
    repo
}

fn run_once(
    client: &Hist,
    repo: &Repository,
    reg: &PolicyRegistry,
    mode: MonitorMode,
    seed: u64,
) -> bool {
    let scheduler = Scheduler::new(repo, reg, mode, ChoiceMode::Angelic);
    let mut network = Network::new();
    network.add_client("c", client.clone(), Plan::new().with(1u32, "srv"));
    let mut rng = StdRng::seed_from_u64(seed);
    scheduler
        .run(network, &mut rng, 1 << 20)
        .expect("run succeeds")
        .outcome
        .is_success()
}

fn monitor_on_vs_off(c: &mut Criterion) {
    let repo = repo();
    let mut reg = PolicyRegistry::new();
    reg.register(catalog::at_most("round", 500));
    let phi = PolicyRef::nullary("at_most_500_round");

    let mut group = c.benchmark_group("monitor_overhead_rounds");
    group.sample_size(10);
    for rounds in [8usize, 32, 128] {
        let client = Hist::framed(phi.clone(), ping_pong_client(rounds));
        group.bench_with_input(
            BenchmarkId::new("enforcing", rounds),
            &client,
            |b, client| {
                b.iter(|| assert!(run_once(client, &repo, &reg, MonitorMode::Enforcing, 1)))
            },
        );
        group.bench_with_input(BenchmarkId::new("audit", rounds), &client, |b, client| {
            b.iter(|| assert!(run_once(client, &repo, &reg, MonitorMode::Audit, 1)))
        });
        group.bench_with_input(BenchmarkId::new("off", rounds), &client, |b, client| {
            b.iter(|| assert!(run_once(client, &repo, &reg, MonitorMode::Off, 1)))
        });
    }
    group.finish();
}

fn monitor_vs_policy_count(c: &mut Criterion) {
    let repo = repo();
    let mut group = c.benchmark_group("monitor_overhead_policies");
    group.sample_size(10);
    for npol in [1usize, 4, 16] {
        let mut reg = PolicyRegistry::new();
        let mut client = ping_pong_client(32);
        for i in 0..npol {
            reg.register(catalog::at_most(&format!("evt{i}"), 1));
            client = Hist::framed(PolicyRef::nullary(format!("at_most_1_evt{i}")), client);
        }
        group.bench_with_input(
            BenchmarkId::new("enforcing", npol),
            &(client.clone(), reg.clone()),
            |b, (client, reg)| {
                b.iter(|| assert!(run_once(client, &repo, reg, MonitorMode::Enforcing, 2)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("off", npol),
            &(client, reg),
            |b, (client, reg)| {
                b.iter(|| assert!(run_once(client, &repo, reg, MonitorMode::Off, 2)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, monitor_on_vs_off, monitor_vs_policy_count);
criterion_main!(benches);
