//! Durability benchmark (B7): what crash-safety costs and how fast
//! recovery is, emitted as machine-readable `BENCH_broker_recovery.json`.
//!
//! Three measurements:
//!
//! 1. **Recovery time vs journal length** — publish `n` mutations into
//!    a journal-only state directory (compaction disabled), kill the
//!    broker without draining, and time the restart. Replay cost must
//!    grow linearly in the journal suffix.
//! 2. **Fsync cost on the mutation path** — the per-publish latency
//!    distribution with and without a state directory; the gap is the
//!    price of `fsync`-before-reply.
//! 3. **Mutation throughput with durability on/off** — the same
//!    workload end to end, reported as requests per second.
//!
//! Environment:
//! * `SUFS_BENCH_SMOKE=1` — tiny workloads, for CI;
//! * `SUFS_BENCH_BROKER_RECOVERY_OUT=path` — where to write the JSON
//!   (default `BENCH_broker_recovery.json` in the working directory).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use sufs_broker::{Broker, BrokerClient, BrokerConfig, Json};
use sufs_hexpr::builder::*;
use sufs_hexpr::Hist;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn state_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sufs-bench-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn responder() -> Hist {
    recv("req", choose([("ok", eps()), ("no", eps())]))
}

/// Publishes `n` mutations (cycling over 32 locations) and returns the
/// per-request latencies in microseconds plus the wall time in seconds.
fn publish_workload(addr: std::net::SocketAddr, n: usize) -> (Vec<u128>, f64) {
    let service = responder().to_string();
    let mut conn = BrokerClient::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(n);
    let wall = Instant::now();
    for i in 0..n {
        let t = Instant::now();
        let reply = conn
            .publish(&format!("loc{}", i % 32), &service, None)
            .expect("publish");
        latencies.push(t.elapsed().as_micros());
        assert_eq!(reply.bool_field("ok"), Some(true), "publish rejected");
    }
    (latencies, wall.elapsed().as_secs_f64())
}

/// Measurement 1: journal of `records` mutations, then a timed restart.
fn run_recovery(records: usize) -> Json {
    let dir = state_dir(&format!("replay-{records}"));
    let config = BrokerConfig {
        state_dir: Some(dir.clone()),
        snapshot_every: u64::MAX, // journal-only: every record replays
        ..BrokerConfig::default()
    };
    let handle = Broker::spawn(config.clone()).expect("spawn");
    publish_workload(handle.addr(), records);
    handle.kill();

    let t = Instant::now();
    let handle = Broker::spawn(config).expect("recovering spawn");
    let spawn_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut conn = BrokerClient::connect(handle.addr()).expect("connect");
    let stats = conn.stats().expect("stats");
    let durability = stats
        .get("stats")
        .and_then(|s| s.get("durability"))
        .expect("durability counters");
    let replayed = durability.u64_field("replayed_records").unwrap_or(0);
    let recovery_ms = durability.u64_field("last_recovery_ms").unwrap_or(0);
    assert_eq!(replayed as usize, records, "every journal record replays");
    let services = conn
        .repo()
        .expect("repo")
        .get("services")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    drop(conn);
    drop(handle);

    eprintln!("  replay {records} records: spawn {spawn_ms:.1}ms (replay {recovery_ms}ms)");
    let _ = std::fs::remove_dir_all(&dir);
    Json::obj()
        .with("journal_records", records)
        .with("spawn_ms", spawn_ms)
        .with("recovery_ms", recovery_ms)
        .with("services_after", services)
}

/// Measurements 2+3: the same publish workload with durability on/off.
fn run_throughput(durable: bool, mutations: usize) -> Json {
    let dir = state_dir("throughput");
    let config = BrokerConfig {
        state_dir: durable.then(|| dir.clone()),
        ..BrokerConfig::default()
    };
    let handle = Broker::spawn(config).expect("spawn");
    let (mut latencies, wall) = publish_workload(handle.addr(), mutations);
    drop(handle);
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let rps = mutations as f64 / wall;
    eprintln!(
        "  durability={durable}: {mutations} publishes in {:.1}ms, {rps:.0} rps, \
         p50 {p50}µs p95 {p95}µs p99 {p99}µs",
        wall * 1e3
    );
    let _ = std::fs::remove_dir_all(&dir);
    Json::obj()
        .with("durability", durable)
        .with("mutations", mutations)
        .with("wall_ms", wall * 1e3)
        .with("throughput_rps", rps)
        .with("p50_us", p50 as u64)
        .with("p95_us", p95 as u64)
        .with("p99_us", p99 as u64)
}

fn main() {
    let smoke = std::env::var("SUFS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let journal_lengths: &[usize] = if smoke { &[8, 32] } else { &[0, 64, 256, 1024] };
    let mutations = if smoke { 50 } else { 500 };

    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"broker_recovery\",\n  \"schema_version\": 1,\n  \"smoke\": {smoke},\n"
    )
    .unwrap();

    eprintln!("recovery time vs journal length");
    out.push_str("  \"recovery\": [\n");
    for (i, &n) in journal_lengths.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write!(out, "    {}", run_recovery(n)).unwrap();
    }
    out.push_str("\n  ],\n");

    eprintln!("mutation throughput, durability off vs on");
    let plain = run_throughput(false, mutations);
    let durable = run_throughput(true, mutations);
    let ratio = durable
        .get("p50_us")
        .and_then(Json::as_f64)
        .zip(plain.get("p50_us").and_then(Json::as_f64))
        .map_or(0.0, |(d, p)| if p == 0.0 { 0.0 } else { d / p });
    out.push_str("  \"throughput\": [\n");
    write!(out, "    {plain},\n    {durable}\n  ],\n").unwrap();
    write!(out, "  \"fsync_p50_cost_ratio\": {ratio:.2}\n}}\n").unwrap();

    let path = std::env::var("SUFS_BENCH_BROKER_RECOVERY_OUT")
        .unwrap_or_else(|_| "BENCH_broker_recovery.json".into());
    std::fs::write(&path, &out).expect("write benchmark output");
    eprintln!("wrote {path}");
}
