//! Replication benchmark (B8): what quorum acknowledgement costs, how
//! long failover takes, and what follower reads are worth, emitted as
//! machine-readable `BENCH_broker_replication.json`.
//!
//! Three measurements over a primary with two live followers:
//!
//! 1. **Mutation throughput vs ack mode** — the same publish workload
//!    under `local` (fsync-only) and `quorum` (majority of a 3-node
//!    cluster) acknowledgement; the gap is the price of one replication
//!    round trip on the mutation path.
//! 2. **Failover time distribution** — kill the primary, promote the
//!    most-caught-up follower, and time kill → promoted → first
//!    successful mutation on the new primary.
//! 3. **Follower plan reads** — `plan` throughput served by the primary
//!    vs a follower; reads scale out because followers answer them from
//!    replicated state without touching the primary.
//!
//! Environment:
//! * `SUFS_BENCH_SMOKE=1` — tiny workloads, for CI;
//! * `SUFS_BENCH_BROKER_REPLICATION_OUT=path` — where to write the JSON
//!   (default `BENCH_broker_replication.json` in the working directory).

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use sufs_broker::{AckMode, Broker, BrokerClient, BrokerConfig, BrokerHandle, Json};
use sufs_hexpr::builder::*;
use sufs_hexpr::Hist;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn state_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sufs-bench-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn responder() -> Hist {
    recv("req", choose([("ok", eps()), ("no", eps())]))
}

fn booking_client() -> Hist {
    request(
        1,
        None,
        seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
    )
}

fn node_config(dir: &Path, follow: Option<String>, ack: AckMode) -> BrokerConfig {
    BrokerConfig {
        state_dir: Some(dir.to_path_buf()),
        snapshot_every: 64,
        follow,
        ack,
        cluster_size: 3,
        ack_timeout: Duration::from_millis(500),
        follow_retry: Duration::from_millis(10),
        replication_tick: Duration::from_millis(25),
        ..BrokerConfig::default()
    }
}

/// A primary plus two live followers; returns once both followers have
/// bootstrapped (the primary reports two connections).
struct Trio {
    dirs: Vec<PathBuf>,
    primary: BrokerHandle,
    followers: Vec<BrokerHandle>,
}

fn spawn_trio(tag: &str, ack: AckMode) -> Trio {
    let dirs: Vec<PathBuf> = (0..3).map(|i| state_dir(&format!("{tag}-n{i}"))).collect();
    let primary = Broker::spawn(node_config(&dirs[0], None, ack)).expect("primary spawns");
    let upstream = primary.addr().to_string();
    let followers: Vec<BrokerHandle> = (1..3)
        .map(|i| {
            Broker::spawn(node_config(&dirs[i], Some(upstream.clone()), ack))
                .expect("follower spawns")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut conn = BrokerClient::connect(primary.addr()).expect("connect");
        let stats = conn.stats().expect("stats");
        let count = stats
            .get("replication")
            .and_then(|r| r.u64_field("follower_count"))
            .unwrap_or(0);
        if count == 2 {
            break;
        }
        assert!(Instant::now() < deadline, "followers never connected");
        std::thread::sleep(Duration::from_millis(10));
    }
    Trio {
        dirs,
        primary,
        followers,
    }
}

impl Trio {
    fn cleanup(self) {
        self.primary.kill();
        for f in self.followers {
            f.kill();
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Measurement 1: publish throughput under one ack mode, two live
/// followers either way (so `local` pays replication shipping but not
/// the wait).
fn run_throughput(ack: AckMode, mutations: usize) -> Json {
    let trio = spawn_trio(&format!("tp-{}", ack.as_str()), ack);
    let service = responder().to_string();
    let mut conn = BrokerClient::connect(trio.primary.addr()).expect("connect");
    let mut latencies = Vec::with_capacity(mutations);
    let wall = Instant::now();
    for i in 0..mutations {
        let t = Instant::now();
        let reply = conn
            .publish(&format!("loc{}", i % 32), &service, None)
            .expect("publish");
        latencies.push(t.elapsed().as_micros());
        assert_eq!(reply.bool_field("ok"), Some(true), "publish rejected");
        if ack == AckMode::Quorum {
            assert_eq!(reply.bool_field("quorum"), Some(true), "quorum timed out");
        }
    }
    let wall = wall.elapsed().as_secs_f64();
    drop(conn);
    trio.cleanup();
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let rps = mutations as f64 / wall;
    eprintln!(
        "  ack={}: {mutations} publishes in {:.1}ms, {rps:.0} rps, \
         p50 {p50}µs p95 {p95}µs p99 {p99}µs",
        ack.as_str(),
        wall * 1e3
    );
    Json::obj()
        .with("ack", ack.as_str())
        .with("mutations", mutations)
        .with("wall_ms", wall * 1e3)
        .with("throughput_rps", rps)
        .with("p50_us", p50 as u64)
        .with("p95_us", p95 as u64)
        .with("p99_us", p99 as u64)
}

/// Measurement 2: one failover — kill the primary, promote the
/// most-caught-up follower, and time until it accepts a mutation.
/// Local acks throughout, so the measurement isolates the failover
/// mechanics instead of the new primary's quorum wait (no follower has
/// been re-pointed at it yet).
fn run_failover(rep: usize, seed_mutations: usize) -> Json {
    let trio = spawn_trio(&format!("fo-{rep}"), AckMode::Local);
    let service = responder().to_string();
    let mut conn = BrokerClient::connect(trio.primary.addr()).expect("connect");
    for i in 0..seed_mutations {
        conn.publish(&format!("loc{}", i % 32), &service, None)
            .expect("seed publish");
    }
    drop(conn);

    let applied = |addr: SocketAddr| {
        let mut c = BrokerClient::connect(addr).expect("connect");
        c.stats()
            .expect("stats")
            .get("replication")
            .and_then(|r| r.u64_field("applied_seq"))
            .unwrap_or(0)
    };
    let t = Instant::now();
    trio.primary.kill();
    let kill_ms = t.elapsed().as_secs_f64() * 1e3;
    let best = trio
        .followers
        .iter()
        .max_by_key(|f| applied(f.addr()))
        .expect("two followers");
    let mut promoted = BrokerClient::connect(best.addr()).expect("connect best");
    let reply = promoted.promote().expect("promote");
    assert_eq!(reply.bool_field("changed"), Some(true), "{reply}");
    let promote_ms = t.elapsed().as_secs_f64() * 1e3 - kill_ms;
    let reply = promoted
        .publish("after-failover", &service, None)
        .expect("first mutation on the new primary");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
    let total_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "  failover {rep}: kill {kill_ms:.1}ms, promote +{promote_ms:.1}ms, \
         first write at {total_ms:.1}ms"
    );
    for f in trio.followers {
        f.kill();
    }
    for dir in &trio.dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    Json::obj()
        .with("seed_mutations", seed_mutations)
        .with("kill_ms", kill_ms)
        .with("promote_ms", promote_ms)
        .with("first_write_ms", total_ms)
}

/// Measurement 3: `plan` reads served by the primary vs a follower.
fn run_follower_reads(plans: usize) -> Json {
    let trio = spawn_trio("reads", AckMode::Quorum);
    let service = responder().to_string();
    let mut conn = BrokerClient::connect(trio.primary.addr()).expect("connect");
    for i in 0..4 {
        conn.publish(&format!("loc{i}"), &service, None)
            .expect("seed publish");
    }
    drop(conn);
    let client_hist = booking_client().to_string();
    let measure = |addr: SocketAddr| {
        let mut c = BrokerClient::connect(addr).expect("connect");
        // Warm the verification cache out of the measurement.
        c.plan(&client_hist).expect("warm plan");
        let wall = Instant::now();
        for _ in 0..plans {
            let reply = c.plan(&client_hist).expect("plan");
            assert_eq!(reply.bool_field("ok"), Some(true), "plan failed");
        }
        plans as f64 / wall.elapsed().as_secs_f64()
    };
    // Let the followers catch up on the seeds before reading from one.
    std::thread::sleep(Duration::from_millis(100));
    let primary_rps = measure(trio.primary.addr());
    let follower_rps = measure(trio.followers[0].addr());
    eprintln!("  plan reads: primary {primary_rps:.0} rps, follower {follower_rps:.0} rps");
    trio.cleanup();
    Json::obj()
        .with("plans", plans)
        .with("primary_rps", primary_rps)
        .with("follower_rps", follower_rps)
}

fn main() {
    let smoke = std::env::var("SUFS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let mutations = if smoke { 50 } else { 500 };
    let failover_reps = if smoke { 3 } else { 10 };
    let seed_mutations = if smoke { 16 } else { 128 };
    let plans = if smoke { 20 } else { 200 };

    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"broker_replication\",\n  \"schema_version\": 1,\n  \"smoke\": {smoke},\n"
    )
    .unwrap();

    eprintln!("mutation throughput, local vs quorum acks (2 followers)");
    out.push_str("  \"throughput\": [\n");
    let local = run_throughput(AckMode::Local, mutations);
    let quorum = run_throughput(AckMode::Quorum, mutations);
    let ratio = quorum
        .get("p50_us")
        .and_then(Json::as_f64)
        .zip(local.get("p50_us").and_then(Json::as_f64))
        .map_or(0.0, |(q, l)| if l == 0.0 { 0.0 } else { q / l });
    write!(out, "    {local},\n    {quorum}\n  ],\n").unwrap();
    writeln!(out, "  \"quorum_p50_cost_ratio\": {ratio:.2},").unwrap();

    eprintln!("failover time distribution ({failover_reps} reps)");
    out.push_str("  \"failover\": [\n");
    let mut first_writes: Vec<u128> = Vec::new();
    for rep in 0..failover_reps {
        if rep > 0 {
            out.push_str(",\n");
        }
        let sample = run_failover(rep, seed_mutations);
        if let Some(ms) = sample.get("first_write_ms").and_then(Json::as_f64) {
            first_writes.push((ms * 1000.0) as u128);
        }
        write!(out, "    {sample}").unwrap();
    }
    out.push_str("\n  ],\n");
    first_writes.sort_unstable();
    write!(
        out,
        "  \"failover_first_write_p50_us\": {},\n  \"failover_first_write_p95_us\": {},\n",
        percentile(&first_writes, 50.0),
        percentile(&first_writes, 95.0)
    )
    .unwrap();

    eprintln!("plan read throughput, primary vs follower");
    write!(
        out,
        "  \"follower_reads\": {}\n}}\n",
        run_follower_reads(plans)
    )
    .unwrap();

    let path = std::env::var("SUFS_BENCH_BROKER_REPLICATION_OUT")
        .unwrap_or_else(|_| "BENCH_broker_replication.json".into());
    std::fs::write(&path, &out).expect("write benchmark output");
    eprintln!("wrote {path}");
}
