//! Broker load generator: throughput and latency of `plan` queries
//! against a live `sufs serve` daemon, emitted as machine-readable
//! `BENCH_broker.json`.
//!
//! For each workload the harness spawns an in-process broker on a
//! loopback port, publishes the mixed-responder repository *over the
//! wire* (so the service texts round-trip through the protocol), then
//! drives `clients` concurrent connections each issuing `iters` plan
//! queries — once with the `enumerative` engine (the seed pipeline,
//! re-walking the search per query) and once with `compositional`
//! (reading plans off the broker's incrementally maintained composed
//! product). Timed queries are production-shaped — `max_valid: 1`,
//! "give me a valid orchestration", a constant-size reply however wide
//! the plan space — so the numbers measure synthesis, not the size of
//! a full verdict audit. After its timed window each connection issues
//! untimed *full* queries checked for verdict equivalence against an
//! in-process `synthesize` over the same repository — the daemon must
//! answer exactly what the library answers, whichever engine ran.
//!
//! In the full configuration the harness also asserts the headline
//! claim: compositional throughput on the 1296-candidate workload
//! stays within 2× of the 36-candidate workload's, i.e. the
//! exponential plan-space cliff is gone.
//!
//! Environment:
//! * `SUFS_BENCH_SMOKE=1` — tiny workloads, for CI;
//! * `SUFS_BENCH_BROKER_OUT=path` — where to write the JSON (default
//!   `BENCH_broker.json` in the working directory);
//! * `SUFS_BENCH_GEN=profile=mesh,services=6,seed=3[,policies=deny+frame][,faults]`
//!   — source the topology from the scenario generator (`sufs gen`)
//!   instead of the inline mixed-responder builder; the scenario text
//!   is published over the wire (services *and* policies) and the run
//!   measures that single generated workload.

use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use sufs_bench::{gen_workload_from_env, mixed_responder_repo, multi_request_client, GenWorkload};
use sufs_broker::{Broker, BrokerClient, BrokerConfig, Json};
use sufs_core::{synthesize, SynthesisOptions};
use sufs_policy::PolicyRegistry;

/// What the broker serves: a client history over a repository, from
/// either the inline mixed-responder builder or the scenario generator.
struct Topology {
    label: String,
    requests: usize,
    services: usize,
    client: sufs_hexpr::Hist,
    repo: sufs_net::Repository,
    registry: PolicyRegistry,
    /// Gen mode: the scenario text, published wholesale over the wire
    /// so the broker installs the policies too.
    scenario: Option<String>,
    /// Provenance tag recorded in the JSON when gen-sourced.
    source: Option<String>,
}

impl Topology {
    /// `requests`-deep client over `good + bad` inline responders.
    fn inline(requests: usize, good: usize, bad: usize) -> Topology {
        Topology {
            label: format!("r={requests} good={good} bad={bad}"),
            requests,
            services: good + bad,
            client: multi_request_client(requests),
            repo: mixed_responder_repo(good, bad),
            registry: PolicyRegistry::new(),
            scenario: None,
            source: None,
        }
    }

    fn from_gen(gen: GenWorkload) -> Topology {
        Topology {
            label: format!(
                "gen({}) client={} r={} s={}",
                gen.spec,
                gen.client_name,
                gen.requests,
                gen.repo.len()
            ),
            requests: gen.requests,
            services: gen.repo.len(),
            client: gen.client,
            repo: gen.repo,
            registry: gen.registry,
            scenario: Some(gen.scenario),
            source: Some(format!("gen:{}", gen.spec)),
        }
    }
}

/// One load configuration: a topology driven by `clients` connections
/// × `iters` queries each.
struct Workload {
    topo: Topology,
    clients: usize,
    iters: usize,
}

/// Full-reply equivalence queries per connection, issued outside the
/// timed window.
const EQUIVALENCE_SAMPLES: usize = 3;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Drives one workload against a fresh broker with the given engine.
/// Returns the per-engine stats object and the measured throughput.
fn run_engine(w: &Workload, engine: &str, expected: &[String], client_text: &str) -> (Json, f64) {
    let handle = Broker::spawn(BrokerConfig {
        max_clients: w.clients + 8,
        ..BrokerConfig::default()
    })
    .expect("spawn broker");
    let addr = handle.addr().to_string();

    // Publish the repository over the wire so the service histories
    // round-trip through the protocol, like a real deployment. A
    // gen-sourced topology ships as a whole scenario so the broker
    // installs its policies alongside the services.
    let mut admin = BrokerClient::connect(&addr).expect("connect admin");
    match &w.topo.scenario {
        Some(text) => {
            let reply = admin.publish_scenario(text).expect("publish scenario");
            assert_eq!(reply.bool_field("ok"), Some(true), "scenario rejected");
        }
        None => {
            for (loc, service) in w.topo.repo.iter() {
                let reply = admin
                    .publish(loc.as_ref(), &service.to_string(), None)
                    .expect("publish");
                assert_eq!(reply.bool_field("ok"), Some(true), "publish rejected");
            }
        }
    }

    // One untimed warm-up query: the compositional engine builds its
    // product (the once-per-repository-state cost), the enumerative
    // engine warms the shared cache — workers then measure the steady
    // state a long-running daemon actually serves.
    let warmed = admin
        .plan_with(
            client_text,
            Json::obj().with("engine", engine).with("max_valid", 1u64),
        )
        .expect("warm-up plan");
    assert_eq!(warmed.bool_field("ok"), Some(true), "warm-up rejected");

    let barrier = Arc::new(Barrier::new(w.clients));
    let workers: Vec<_> = (0..w.clients)
        .map(|_| {
            let addr = addr.clone();
            let text = client_text.to_owned();
            let engine = engine.to_owned();
            let expected = expected.to_owned();
            let barrier = Arc::clone(&barrier);
            let iters = w.iters;
            thread::spawn(move || {
                let mut conn = BrokerClient::connect(&addr).expect("connect worker");
                let mut latencies: Vec<u128> = Vec::with_capacity(iters);
                barrier.wait();
                let window = Instant::now();
                for _ in 0..iters {
                    let t = Instant::now();
                    let reply = conn
                        .plan_with(
                            &text,
                            Json::obj()
                                .with("engine", engine.as_str())
                                .with("max_valid", 1u64),
                        )
                        .expect("plan request");
                    latencies.push(t.elapsed().as_micros());
                    assert_eq!(reply.bool_field("ok"), Some(true), "plan rejected");
                    assert_eq!(
                        reply
                            .get("stats")
                            .and_then(|s| s.str_field("engine"))
                            .unwrap_or("?"),
                        engine,
                        "broker ran the wrong engine"
                    );
                    let first = reply
                        .get("valid")
                        .and_then(Json::as_arr)
                        .and_then(|v| v.first())
                        .and_then(|v| v.as_str().map(str::to_owned))
                        .expect("a valid plan");
                    assert!(
                        expected.binary_search(&first).is_ok(),
                        "broker returned a plan in-process synthesis rejects ({engine})"
                    );
                    assert_eq!(
                        reply.u64_field("valid_total"),
                        Some(expected.len() as u64),
                        "valid-plan count diverged ({engine})"
                    );
                }
                let elapsed = window.elapsed();
                // Wait out every other worker's timed window before the
                // heavyweight full queries, so they never contend with
                // someone else's measurement.
                barrier.wait();
                // Outside the timed window: the complete valid set must
                // match in-process synthesis exactly.
                let mut samples = 0usize;
                for _ in 0..EQUIVALENCE_SAMPLES {
                    let full = conn
                        .plan_with(&text, Json::obj().with("engine", engine.as_str()))
                        .expect("full plan request");
                    let mut valid: Vec<String> = full
                        .get("valid")
                        .and_then(Json::as_arr)
                        .expect("valid array")
                        .iter()
                        .filter_map(|v| v.as_str().map(str::to_owned))
                        .collect();
                    valid.sort();
                    assert_eq!(
                        valid, expected,
                        "remote verdicts diverged from in-process synthesis ({engine})"
                    );
                    samples += 1;
                }
                (latencies, samples, elapsed)
            })
        })
        .collect();

    let mut latencies: Vec<u128> = Vec::with_capacity(w.clients * w.iters);
    let mut samples = 0usize;
    let mut wall = 0f64;
    for worker in workers {
        let (lat, s, elapsed) = worker.join().expect("worker panicked");
        latencies.extend(lat);
        samples += s;
        wall = wall.max(elapsed.as_secs_f64());
    }

    let stats = admin.stats().expect("stats");
    let hit_rate = stats
        .get("stats")
        .and_then(|s| s.get("cache_hit_rate"))
        .and_then(Json::as_f64);
    let product_reads = stats
        .get("products")
        .and_then(|p| p.u64_field("reads"))
        .unwrap_or(0);
    drop(admin);
    drop(handle); // drains the daemon

    latencies.sort_unstable();
    let total = latencies.len();
    let throughput = total as f64 / wall;
    eprintln!(
        "  {engine}: {total} requests in {:.1}ms ({throughput:.1} rps), p50 {}µs p95 {}µs p99 {}µs",
        wall * 1e3,
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );

    let mut out = Json::obj()
        .with("total_requests", total)
        .with("wall_ms", wall * 1e3)
        .with("throughput_rps", throughput)
        .with("p50_us", percentile(&latencies, 50.0) as u64)
        .with("p95_us", percentile(&latencies, 95.0) as u64)
        .with("p99_us", percentile(&latencies, 99.0) as u64)
        .with("equivalence_samples", samples)
        .with("equivalence", "ok");
    if let Some(rate) = hit_rate {
        out.set("cache_hit_rate", rate);
    }
    if engine == "compositional" {
        out.set("product_reads", product_reads);
    }
    (out, throughput)
}

/// Runs one workload under both engines. Returns the JSON row and the
/// compositional throughput (for the cliff assertion).
fn run_workload(w: &Workload) -> (Json, f64) {
    let opts = SynthesisOptions::default();

    // The in-process baseline the daemon's replies must reproduce.
    let baseline = synthesize(&w.topo.client, &w.topo.repo, &w.topo.registry, &opts)
        .expect("workload verifies");
    let mut expected: Vec<String> = baseline
        .report
        .valid_plans()
        .map(|p| p.to_string())
        .collect();
    expected.sort();
    assert!(!expected.is_empty(), "workload admits no valid plan");

    let client_text = w.topo.client.to_string();
    let (enumerative, _) = run_engine(w, "enumerative", &expected, &client_text);
    let (compositional, comp_rps) = run_engine(w, "compositional", &expected, &client_text);
    let enum_rps = enumerative.get("throughput_rps").and_then(Json::as_f64);
    let speedup = enum_rps.map(|e| comp_rps / e).unwrap_or(0.0);

    let candidates = w.topo.services.pow(w.topo.requests as u32);
    let mut row = Json::obj()
        .with("requests", w.topo.requests)
        .with("services", w.topo.services)
        .with("candidates", candidates)
        .with("valid_plans", expected.len())
        .with("clients", w.clients)
        .with("enumerative", enumerative)
        .with("compositional", compositional)
        .with("speedup_compositional", speedup);
    if let Some(source) = &w.topo.source {
        row.set("source", source.as_str());
    }
    (row, comp_rps)
}

fn main() {
    let smoke = std::env::var("SUFS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let workloads: Vec<Workload> = if let Some(gen) = gen_workload_from_env() {
        let (clients, iters) = if smoke { (2, 5) } else { (4, 50) };
        vec![Workload {
            topo: Topology::from_gen(gen),
            clients,
            iters,
        }]
    } else if smoke {
        vec![Workload {
            topo: Topology::inline(2, 2, 2),
            clients: 2,
            iters: 5,
        }]
    } else {
        vec![
            Workload {
                topo: Topology::inline(2, 3, 3),
                clients: 4,
                iters: 50,
            },
            Workload {
                topo: Topology::inline(3, 3, 3),
                clients: 4,
                iters: 50,
            },
            Workload {
                topo: Topology::inline(3, 3, 3),
                clients: 8,
                iters: 50,
            },
            Workload {
                topo: Topology::inline(4, 3, 3),
                clients: 4,
                iters: 20,
            },
        ]
    };

    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"broker\",\n  \"schema_version\": 2,\n  \"smoke\": {smoke},\n"
    )
    .unwrap();
    out.push_str("  \"workloads\": [\n");
    let mut comp_rps: Vec<(usize, f64)> = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        eprintln!(
            "workload {} clients={} iters={}",
            w.topo.label, w.clients, w.iters
        );
        let (row, rps) = run_workload(w);
        comp_rps.push((w.topo.services.pow(w.topo.requests as u32), rps));
        if i > 0 {
            out.push_str(",\n");
        }
        write!(out, "    {row}").unwrap();
    }
    out.push_str("\n  ]\n}\n");

    // The headline claim, asserted where the cliff used to be: the
    // widest plan space must stay within 2× of the narrowest one's
    // compositional throughput (same connection count). Meaningless
    // for a single gen-sourced workload, so it needs at least two.
    if !smoke && workloads.len() > 1 {
        let narrow = comp_rps.first().expect("workloads not empty");
        let wide = comp_rps.last().expect("workloads not empty");
        eprintln!(
            "cliff check: {} candidates at {:.1} rps vs {} candidates at {:.1} rps",
            narrow.0, narrow.1, wide.0, wide.1
        );
        assert!(
            wide.1 * 2.0 >= narrow.1,
            "the plan-space cliff is back: {} candidates at {:.1} rps vs {} candidates at {:.1} rps",
            narrow.0,
            narrow.1,
            wide.0,
            wide.1
        );
    }

    let path =
        std::env::var("SUFS_BENCH_BROKER_OUT").unwrap_or_else(|_| "BENCH_broker.json".into());
    std::fs::write(&path, &out).expect("write benchmark output");
    eprintln!("wrote {path}");
}
