//! Broker load generator: throughput and latency of `plan` queries
//! against a live `sufs serve` daemon, emitted as machine-readable
//! `BENCH_broker.json`.
//!
//! For each workload the harness spawns an in-process broker on a
//! loopback port, publishes the mixed-responder repository *over the
//! wire* (so the service texts round-trip through the protocol), then
//! drives `clients` concurrent connections each issuing `iters` plan
//! queries. Every sampled reply is checked for verdict equivalence
//! against an in-process `synthesize` over the same repository — the
//! daemon must answer exactly what the library answers.
//!
//! Environment:
//! * `SUFS_BENCH_SMOKE=1` — tiny workloads, for CI;
//! * `SUFS_BENCH_BROKER_OUT=path` — where to write the JSON (default
//!   `BENCH_broker.json` in the working directory).

use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use sufs_bench::{mixed_responder_repo, multi_request_client};
use sufs_broker::{Broker, BrokerClient, BrokerConfig, Json};
use sufs_core::{synthesize, SynthesisOptions};
use sufs_policy::PolicyRegistry;

/// One load configuration: `requests`-deep client over a repository of
/// `good + bad` responders, driven by `clients` connections × `iters`
/// queries each.
struct Workload {
    requests: usize,
    good: usize,
    bad: usize,
    clients: usize,
    iters: usize,
}

/// Every `SAMPLE_EVERY`-th reply per connection is checked against the
/// in-process baseline (the first one always is).
const SAMPLE_EVERY: usize = 8;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn run_workload(w: &Workload) -> Json {
    let client_hist = multi_request_client(w.requests);
    let repo = mixed_responder_repo(w.good, w.bad);
    let registry = PolicyRegistry::new();
    let opts = SynthesisOptions::default();

    // The in-process baseline the daemon's replies must reproduce.
    let baseline = synthesize(&client_hist, &repo, &registry, &opts).expect("workload verifies");
    let mut expected: Vec<String> = baseline
        .report
        .valid_plans()
        .map(|p| p.to_string())
        .collect();
    expected.sort();

    let handle = Broker::spawn(BrokerConfig {
        max_clients: w.clients + 8,
        ..BrokerConfig::default()
    })
    .expect("spawn broker");
    let addr = handle.addr().to_string();

    // Publish the repository over the wire so the service histories
    // round-trip through the protocol, like a real deployment.
    let mut admin = BrokerClient::connect(&addr).expect("connect admin");
    for (loc, service) in repo.iter() {
        let reply = admin
            .publish(loc.as_ref(), &service.to_string(), None)
            .expect("publish");
        assert_eq!(reply.bool_field("ok"), Some(true), "publish rejected");
    }

    let client_text = client_hist.to_string();
    let barrier = Arc::new(Barrier::new(w.clients));
    let start_wall = Instant::now();
    let workers: Vec<_> = (0..w.clients)
        .map(|_| {
            let addr = addr.clone();
            let text = client_text.clone();
            let expected = expected.clone();
            let barrier = Arc::clone(&barrier);
            let iters = w.iters;
            thread::spawn(move || {
                let mut conn = BrokerClient::connect(&addr).expect("connect worker");
                let mut latencies: Vec<u128> = Vec::with_capacity(iters);
                let mut samples = 0usize;
                barrier.wait();
                for i in 0..iters {
                    let t = Instant::now();
                    let reply = conn.plan(&text).expect("plan request");
                    latencies.push(t.elapsed().as_micros());
                    assert_eq!(reply.bool_field("ok"), Some(true), "plan rejected");
                    if i % SAMPLE_EVERY == 0 {
                        let mut valid: Vec<String> = reply
                            .get("valid")
                            .and_then(Json::as_arr)
                            .expect("valid array")
                            .iter()
                            .filter_map(|v| v.as_str().map(str::to_owned))
                            .collect();
                        valid.sort();
                        assert_eq!(
                            valid, expected,
                            "remote verdicts diverged from in-process synthesis"
                        );
                        samples += 1;
                    }
                }
                (latencies, samples)
            })
        })
        .collect();

    let mut latencies: Vec<u128> = Vec::with_capacity(w.clients * w.iters);
    let mut samples = 0usize;
    for worker in workers {
        let (lat, s) = worker.join().expect("worker panicked");
        latencies.extend(lat);
        samples += s;
    }
    let wall = start_wall.elapsed().as_secs_f64();

    let stats = admin.stats().expect("stats");
    let hit_rate = stats
        .get("stats")
        .and_then(|s| s.get("cache_hit_rate"))
        .and_then(Json::as_f64);
    drop(admin);
    drop(handle); // drains the daemon

    latencies.sort_unstable();
    let total = latencies.len();
    let candidates = (w.good + w.bad).pow(w.requests as u32);
    eprintln!(
        "  r={} s={} clients={}: {total} requests in {:.1}ms, p50 {}µs p95 {}µs p99 {}µs",
        w.requests,
        w.good + w.bad,
        w.clients,
        wall * 1e3,
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );

    let mut out = Json::obj()
        .with("requests", w.requests)
        .with("services", w.good + w.bad)
        .with("candidates", candidates)
        .with("valid_plans", expected.len())
        .with("clients", w.clients)
        .with("total_requests", total)
        .with("wall_ms", wall * 1e3)
        .with("throughput_rps", total as f64 / wall)
        .with("p50_us", percentile(&latencies, 50.0) as u64)
        .with("p95_us", percentile(&latencies, 95.0) as u64)
        .with("p99_us", percentile(&latencies, 99.0) as u64)
        .with("equivalence_samples", samples)
        .with("equivalence", "ok");
    if let Some(rate) = hit_rate {
        out.set("cache_hit_rate", rate);
    }
    out
}

fn main() {
    let smoke = std::env::var("SUFS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let workloads: Vec<Workload> = if smoke {
        vec![Workload {
            requests: 2,
            good: 2,
            bad: 2,
            clients: 2,
            iters: 5,
        }]
    } else {
        vec![
            Workload {
                requests: 2,
                good: 3,
                bad: 3,
                clients: 4,
                iters: 50,
            },
            Workload {
                requests: 3,
                good: 3,
                bad: 3,
                clients: 4,
                iters: 50,
            },
            Workload {
                requests: 3,
                good: 3,
                bad: 3,
                clients: 8,
                iters: 50,
            },
            Workload {
                requests: 4,
                good: 3,
                bad: 3,
                clients: 4,
                iters: 20,
            },
        ]
    };

    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"broker\",\n  \"schema_version\": 1,\n  \"smoke\": {smoke},\n"
    )
    .unwrap();
    out.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        eprintln!(
            "workload r={} good={} bad={} clients={} iters={}",
            w.requests, w.good, w.bad, w.clients, w.iters
        );
        let row = run_workload(w);
        if i > 0 {
            out.push_str(",\n");
        }
        write!(out, "    {row}").unwrap();
    }
    out.push_str("\n  ]\n}\n");

    let path =
        std::env::var("SUFS_BENCH_BROKER_OUT").unwrap_or_else(|_| "BENCH_broker.json".into());
    std::fs::write(&path, &out).expect("write benchmark output");
    eprintln!("wrote {path}");
}
