//! E9 ablation — the quantitative (§5 / \[14\]) extension: static
//! cost-bound checking as the charged chain grows and as the budget
//! (and hence the tracked cost configurations) grows.

use sufs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sufs_hexpr::{Hist, PolicyRef};
use sufs_policy::cost::{check_cost_bound, CostBound, CostModel};

fn budget(bound: u64) -> CostBound {
    CostBound {
        policy: PolicyRef::nullary("wallet"),
        model: CostModel::new().flat("spend", 1),
        bound,
    }
}

fn charged_chain(n: usize) -> Hist {
    Hist::framed(
        PolicyRef::nullary("wallet"),
        Hist::seq_all((0..n).map(|i| Hist::ev(sufs_hexpr::Event::new("spend", [i as i64])))),
    )
}

fn chain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_bound_chain");
    for n in [10usize, 100, 400] {
        let h = charged_chain(n);
        let cb = budget(n as u64 + 1); // within budget: full exploration
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| check_cost_bound(h, &cb, 1 << 20).unwrap().is_within())
        });
    }
    group.finish();
}

fn budget_scaling(c: &mut Criterion) {
    // A charging loop: phase 1 proves unboundedness via the SCC pass,
    // so the cost is flat in the budget.
    let loop_h = Hist::framed(
        PolicyRef::nullary("wallet"),
        Hist::mu(
            "h",
            Hist::int_([
                (
                    sufs_hexpr::Channel::new("go"),
                    Hist::seq(
                        Hist::ev(sufs_hexpr::Event::nullary("spend")),
                        Hist::var("h"),
                    ),
                ),
                (sufs_hexpr::Channel::new("stop"), Hist::Eps),
            ]),
        ),
    );
    let mut group = c.benchmark_group("cost_bound_unbounded_loop");
    for bound in [10u64, 10_000, 10_000_000] {
        let cb = budget(bound);
        group.bench_with_input(BenchmarkId::from_parameter(bound), &loop_h, |b, h| {
            b.iter(|| !check_cost_bound(h, &cb, 1 << 20).unwrap().is_within())
        });
    }
    group.finish();
}

criterion_group!(benches, chain_scaling, budget_scaling);
criterion_main!(benches);
