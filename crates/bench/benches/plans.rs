//! E4 / B3 — plan synthesis: verifying the paper's clients against the
//! Fig. 2 repository, and the combinatorial scaling of enumeration +
//! verification in the number of requests `r` and repository size `s`
//! (the candidate space is `sʳ`).

use sufs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sufs::paper;
use sufs_bench::{multi_request_client, responder_repo, scaled_hotel_repo};
use sufs_core::{enumerate_plans, verify, verify_plan};
use sufs_policy::PolicyRegistry;

fn paper_plan_synthesis(c: &mut Criterion) {
    let repo = paper::repository();
    let reg = paper::registry();
    c.bench_function("plan_synthesis_paper/c1_all_plans", |b| {
        b.iter(|| verify(&paper::client_c1(), &repo, &reg).unwrap())
    });
    c.bench_function("plan_synthesis_paper/c2_all_plans", |b| {
        b.iter(|| verify(&paper::client_c2(), &repo, &reg).unwrap())
    });
    c.bench_function("plan_synthesis_paper/pi1_single", |b| {
        b.iter(|| verify_plan(&paper::client_c1(), &paper::plan_pi1(), &repo, &reg).unwrap())
    });
}

fn hotel_repo_scaling(c: &mut Criterion) {
    let reg = paper::registry();
    let mut group = c.benchmark_group("plan_synthesis_hotels");
    group.sample_size(10);
    for hotels in [4usize, 8, 16] {
        let repo = scaled_hotel_repo(hotels);
        group.bench_with_input(BenchmarkId::from_parameter(hotels), &repo, |b, repo| {
            b.iter(|| verify(&paper::client_c1(), repo, &reg).unwrap())
        });
    }
    group.finish();
}

fn enumeration_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_enumeration");
    group.sample_size(10);
    for (r, s) in [(2usize, 4usize), (3, 4), (4, 4), (3, 8)] {
        let client = multi_request_client(r);
        let repo = responder_repo(s);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("r{r}_s{s}")),
            &(client, repo),
            |b, (client, repo)| b.iter(|| enumerate_plans(client, repo, 1 << 20).unwrap()),
        );
    }
    group.finish();
}

fn full_verification_scaling(c: &mut Criterion) {
    let reg = PolicyRegistry::new();
    let mut group = c.benchmark_group("plan_verification");
    group.sample_size(10);
    for (r, s) in [(2usize, 2usize), (2, 4), (3, 3)] {
        let client = multi_request_client(r);
        let repo = responder_repo(s);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("r{r}_s{s}")),
            &(client, repo),
            |b, (client, repo)| b.iter(|| verify(client, repo, &reg).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    paper_plan_synthesis,
    hotel_repo_scaling,
    enumeration_scaling,
    full_verification_scaling
);
criterion_main!(benches);
