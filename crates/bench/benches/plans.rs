//! E4 / B3 — plan synthesis: wall time, throughput, cache hit-rate and
//! pruning/parallel speedups across plan spaces of 10²–10⁵ candidates,
//! emitted as machine-readable `BENCH_plans.json`.
//!
//! Unlike the micro-benches, this target is a *harness*: for each
//! workload it runs the same synthesis in four configurations —
//!
//! | mode         | cache | prune | jobs |
//! |--------------|-------|-------|------|
//! | `sequential` |   —   |   —   |  1   | (the seed pipeline)
//! | `cached`     |   ✓   |   —   |  1   |
//! | `pruned`     |   ✓   |   ✓   |  1   |
//! | `parallel`   |   ✓   |   ✓   | auto |
//!
//! asserts the modes agree (full verdict equality for `cached`, valid
//! plan-set equality for the pruning modes), and records the numbers.
//!
//! Environment:
//! * `SUFS_BENCH_SMOKE=1` — tiny workloads, for CI;
//! * `SUFS_BENCH_PLANS_OUT=path` — where to write the JSON (default
//!   `BENCH_plans.json` in the working directory).

use std::fmt::Write as _;
use std::time::Instant;

use sufs_bench::{mixed_responder_repo, multi_request_client};
use sufs_core::pool::default_jobs;
use sufs_core::{synthesize, Synthesis, SynthesisOptions};
use sufs_net::Plan;
use sufs_policy::PolicyRegistry;

struct ModeResult {
    wall_ms: f64,
    plans_per_sec: f64,
    cache_hit_rate: Option<f64>,
    pruned_subtrees: Option<usize>,
}

fn run_mode(
    client: &sufs_hexpr::Hist,
    repo: &sufs_net::Repository,
    registry: &PolicyRegistry,
    opts: &SynthesisOptions,
    candidates: usize,
) -> (Synthesis, ModeResult) {
    let start = Instant::now();
    let synthesis = synthesize(client, repo, registry, opts).expect("workload verifies");
    let wall = start.elapsed().as_secs_f64();
    let result = ModeResult {
        wall_ms: wall * 1e3,
        // Throughput over the *whole* candidate space: pruning gets
        // credit for deciding plans it never had to expand.
        plans_per_sec: candidates as f64 / wall,
        cache_hit_rate: synthesis.stats.cache.as_ref().map(|c| c.hit_rate()),
        pruned_subtrees: opts.prune.then_some(synthesis.stats.pruned_subtrees),
    };
    (synthesis, result)
}

fn json_mode(out: &mut String, name: &str, m: &ModeResult) {
    write!(
        out,
        "      \"{name}\": {{\"wall_ms\": {:.3}, \"plans_per_sec\": {:.1}",
        m.wall_ms, m.plans_per_sec
    )
    .unwrap();
    if let Some(rate) = m.cache_hit_rate {
        write!(out, ", \"cache_hit_rate\": {rate:.4}").unwrap();
    }
    if let Some(pruned) = m.pruned_subtrees {
        write!(out, ", \"pruned_subtrees\": {pruned}").unwrap();
    }
    out.push('}');
}

fn main() {
    let smoke = std::env::var("SUFS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    // (requests, good services, bad services): the candidate space is
    // (good+bad)^requests, spanning 10²–10⁵ in the full configuration.
    let workloads: &[(usize, usize, usize)] = if smoke {
        &[(2, 2, 2), (3, 2, 2)]
    } else {
        &[(2, 5, 5), (3, 5, 5), (4, 5, 5), (5, 5, 5)]
    };
    let registry = PolicyRegistry::new();
    let jobs = default_jobs();

    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"plans\",\n  \"schema_version\": 1,\n  \"smoke\": {smoke},\n  \"jobs\": {jobs},\n"
    )
    .unwrap();
    out.push_str("  \"workloads\": [\n");

    for (wi, &(r, good, bad)) in workloads.iter().enumerate() {
        let s = good + bad;
        let candidates = s.pow(r as u32);
        let client = multi_request_client(r);
        let repo = mixed_responder_repo(good, bad);
        eprintln!("workload r={r} s={s}: {candidates} candidates");

        let base = SynthesisOptions::default();
        let sequential_opts = SynthesisOptions {
            cache: false,
            ..base.clone()
        };
        let cached_opts = base.clone();
        let pruned_opts = SynthesisOptions {
            prune: true,
            ..base.clone()
        };
        let parallel_opts = SynthesisOptions {
            prune: true,
            jobs: 0,
            ..base.clone()
        };

        let (seq_synth, sequential) =
            run_mode(&client, &repo, &registry, &sequential_opts, candidates);
        let (cached_synth, cached) = run_mode(&client, &repo, &registry, &cached_opts, candidates);
        let (pruned_synth, pruned) = run_mode(&client, &repo, &registry, &pruned_opts, candidates);
        let (par_synth, parallel) = run_mode(&client, &repo, &registry, &parallel_opts, candidates);

        // Equivalence: cached must reproduce the sequential report
        // verbatim; the pruning modes must agree on the valid plans.
        assert_eq!(
            seq_synth.report.verdicts(),
            cached_synth.report.verdicts(),
            "cached synthesis diverged from the sequential baseline"
        );
        let valid = |s: &Synthesis| s.report.valid_plans().cloned().collect::<Vec<Plan>>();
        let expected = valid(&seq_synth);
        assert_eq!(expected.len(), good.pow(r as u32));
        assert_eq!(
            valid(&pruned_synth),
            expected,
            "pruned synthesis lost valid plans"
        );
        assert_eq!(
            valid(&par_synth),
            expected,
            "parallel synthesis lost valid plans"
        );
        eprintln!(
            "  sequential {:.1}ms, cached {:.1}ms, pruned {:.1}ms, parallel {:.1}ms",
            sequential.wall_ms, cached.wall_ms, pruned.wall_ms, parallel.wall_ms
        );

        if wi > 0 {
            out.push_str(",\n");
        }
        out.push_str("    {\n");
        write!(
            out,
            "      \"requests\": {r}, \"services\": {s}, \"good_services\": {good},\n      \"candidates\": {candidates}, \"valid_plans\": {},\n",
            expected.len()
        )
        .unwrap();
        json_mode(&mut out, "sequential", &sequential);
        out.push_str(",\n");
        json_mode(&mut out, "cached", &cached);
        out.push_str(",\n");
        json_mode(&mut out, "pruned", &pruned);
        out.push_str(",\n");
        json_mode(&mut out, "parallel", &parallel);
        out.push_str(",\n");
        writeln!(
            out,
            "      \"speedup_cached\": {:.2}, \"speedup_pruned\": {:.2}, \"speedup_parallel\": {:.2}",
            sequential.wall_ms / cached.wall_ms,
            sequential.wall_ms / pruned.wall_ms,
            sequential.wall_ms / parallel.wall_ms
        )
        .unwrap();
        out.push_str("    }");
    }
    out.push_str("\n  ]\n}\n");

    let path = std::env::var("SUFS_BENCH_PLANS_OUT").unwrap_or_else(|_| "BENCH_plans.json".into());
    std::fs::write(&path, &out).expect("write benchmark output");
    eprintln!("wrote {path}");
}
