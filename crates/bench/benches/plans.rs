//! E4 / B3 — plan synthesis: wall time, throughput, cache hit-rate and
//! pruning/parallel speedups across plan spaces of 10²–10⁵ candidates,
//! emitted as machine-readable `BENCH_plans.json`.
//!
//! Unlike the micro-benches, this target is a *harness*: for each
//! workload it runs the same synthesis in four configurations —
//!
//! | mode         | cache | prune | jobs |
//! |--------------|-------|-------|------|
//! | `sequential` |   —   |   —   |  1   | (the seed pipeline)
//! | `cached`     |   ✓   |   —   |  1   |
//! | `pruned`     |   ✓   |   ✓   |  1   |
//! | `parallel`   |   ✓   |   ✓   | auto |
//!
//! plus the `compositional` engine: one product build against a fresh
//! [`ProductStore`], then repeated queries reading plans off the
//! maintained product (`query_ms` is the per-query mean). The harness
//! asserts the modes agree (full verdict equality for `cached`, valid
//! plan-set equality for the pruning modes and the compositional
//! engine), that caching never slows synthesis down
//! (`speedup_cached ≥ 1`), and records the numbers.
//!
//! Environment:
//! * `SUFS_BENCH_SMOKE=1` — tiny workloads, for CI;
//! * `SUFS_BENCH_PLANS_OUT=path` — where to write the JSON (default
//!   `BENCH_plans.json` in the working directory);
//! * `SUFS_BENCH_GEN=profile=mesh,services=6,seed=3[,policies=deny+frame][,faults]`
//!   — source the topology from the scenario generator (`sufs gen`)
//!   instead of the inline synthetic builders; the run then measures
//!   that single generated workload.

use std::fmt::Write as _;
use std::time::Instant;

use sufs_bench::{gen_workload_from_env, mixed_responder_repo, multi_request_client};
use sufs_core::pool::default_jobs;
use sufs_core::{synthesize, Engine, ProductStore, Synthesis, SynthesisOptions};
use sufs_net::Plan;
use sufs_policy::PolicyRegistry;

struct ModeResult {
    wall_ms: f64,
    plans_per_sec: f64,
    cache_hit_rate: Option<f64>,
    pruned_subtrees: Option<usize>,
}

/// One timed synthesis run; folds the wall time into the running
/// minimum. Reps are interleaved across modes (all modes' rep 0, then
/// all modes' rep 1, …) so machine drift on a shared box lands on
/// every mode instead of whichever ran last; the minimum is the honest
/// per-mode estimate because scheduler noise is one-sided.
fn run_once(
    client: &sufs_hexpr::Hist,
    repo: &sufs_net::Repository,
    registry: &PolicyRegistry,
    opts: &SynthesisOptions,
    best_wall: &mut f64,
) -> Synthesis {
    let start = Instant::now();
    let synthesis = synthesize(client, repo, registry, opts).expect("workload verifies");
    *best_wall = best_wall.min(start.elapsed().as_secs_f64());
    synthesis
}

fn mode_result(
    synthesis: &Synthesis,
    opts: &SynthesisOptions,
    best_wall: f64,
    candidates: usize,
) -> ModeResult {
    ModeResult {
        wall_ms: best_wall * 1e3,
        // Throughput over the *whole* candidate space: pruning gets
        // credit for deciding plans it never had to expand.
        plans_per_sec: candidates as f64 / best_wall,
        cache_hit_rate: synthesis.stats.cache.as_ref().map(|c| c.hit_rate()),
        pruned_subtrees: opts.prune.then_some(synthesis.stats.pruned_subtrees),
    }
}

fn json_mode(out: &mut String, name: &str, m: &ModeResult) {
    write!(
        out,
        "      \"{name}\": {{\"wall_ms\": {:.3}, \"plans_per_sec\": {:.1}",
        m.wall_ms, m.plans_per_sec
    )
    .unwrap();
    if let Some(rate) = m.cache_hit_rate {
        write!(out, ", \"cache_hit_rate\": {rate:.4}").unwrap();
    }
    if let Some(pruned) = m.pruned_subtrees {
        write!(out, ", \"pruned_subtrees\": {pruned}").unwrap();
    }
    out.push('}');
}

/// One workload for the harness, from either source: the inline
/// builders (with a closed-form valid-plan count) or the scenario
/// generator (whose valid set is pinned by the replay corpus instead).
struct Work {
    label: String,
    requests: usize,
    services: usize,
    client: sufs_hexpr::Hist,
    repo: sufs_net::Repository,
    registry: PolicyRegistry,
    /// `goodʳ` for the inline cells; `None` for generated topologies.
    exact_valid: Option<usize>,
    good_services: Option<usize>,
    /// Provenance tag recorded in the JSON when gen-sourced.
    source: Option<String>,
}

fn main() {
    let smoke = std::env::var("SUFS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let workloads: Vec<Work> = if let Some(gen) = gen_workload_from_env() {
        let services = gen.repo.len();
        vec![Work {
            label: format!(
                "gen({}) client={} r={} s={services}",
                gen.spec, gen.client_name, gen.requests
            ),
            requests: gen.requests,
            services,
            client: gen.client,
            repo: gen.repo,
            registry: gen.registry,
            exact_valid: None,
            good_services: None,
            source: Some(format!("gen:{}", gen.spec)),
        }]
    } else {
        // (requests, good services, bad services): the candidate space
        // is (good+bad)^requests, spanning 10²–10⁵ in the full
        // configuration.
        let cells: &[(usize, usize, usize)] = if smoke {
            &[(2, 2, 2), (3, 2, 2)]
        } else {
            &[(2, 5, 5), (3, 5, 5), (4, 5, 5), (5, 5, 5)]
        };
        cells
            .iter()
            .map(|&(r, good, bad)| Work {
                label: format!("r={r} s={}", good + bad),
                requests: r,
                services: good + bad,
                client: multi_request_client(r),
                repo: mixed_responder_repo(good, bad),
                registry: PolicyRegistry::new(),
                exact_valid: Some(good.pow(r as u32)),
                good_services: Some(good),
                source: None,
            })
            .collect()
    };
    let jobs = default_jobs();

    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"plans\",\n  \"schema_version\": 2,\n  \"smoke\": {smoke},\n  \"jobs\": {jobs},\n"
    )
    .unwrap();
    out.push_str("  \"workloads\": [\n");

    for (wi, w) in workloads.iter().enumerate() {
        let candidates = w.services.pow(w.requests as u32);
        let client = &w.client;
        let repo = &w.repo;
        let registry = &w.registry;
        eprintln!("workload {}: {candidates} candidates", w.label);

        let base = SynthesisOptions::default();
        let sequential_opts = SynthesisOptions {
            cache: false,
            ..base.clone()
        };
        let cached_opts = base.clone();
        let pruned_opts = SynthesisOptions {
            prune: true,
            ..base.clone()
        };
        let parallel_opts = SynthesisOptions {
            prune: true,
            jobs: 0,
            ..base.clone()
        };

        let reps = if smoke || candidates >= 100_000 { 2 } else { 3 };
        let mut walls = [f64::INFINITY; 4];
        let (mut seq_synth, mut cached_synth, mut pruned_synth, mut par_synth) =
            (None, None, None, None);
        for _ in 0..reps {
            seq_synth = Some(run_once(
                client,
                repo,
                registry,
                &sequential_opts,
                &mut walls[0],
            ));
            cached_synth = Some(run_once(
                client,
                repo,
                registry,
                &cached_opts,
                &mut walls[1],
            ));
            pruned_synth = Some(run_once(
                client,
                repo,
                registry,
                &pruned_opts,
                &mut walls[2],
            ));
            par_synth = Some(run_once(
                client,
                repo,
                registry,
                &parallel_opts,
                &mut walls[3],
            ));
        }
        let (seq_synth, cached_synth, pruned_synth, par_synth) = (
            seq_synth.unwrap(),
            cached_synth.unwrap(),
            pruned_synth.unwrap(),
            par_synth.unwrap(),
        );
        let sequential = mode_result(&seq_synth, &sequential_opts, walls[0], candidates);
        let cached = mode_result(&cached_synth, &cached_opts, walls[1], candidates);
        let pruned = mode_result(&pruned_synth, &pruned_opts, walls[2], candidates);
        let parallel = mode_result(&par_synth, &parallel_opts, walls[3], candidates);

        // Compositional: one product build, then repeated queries that
        // read plans off the maintained product.
        let comp_opts = SynthesisOptions {
            engine: Engine::Compositional,
            ..base.clone()
        };
        let store = ProductStore::new();
        let start = Instant::now();
        let comp_synth = store
            .synthesize(client, repo, registry, &comp_opts, None)
            .expect("compositional build");
        let comp_build_ms = start.elapsed().as_secs_f64() * 1e3;
        let query_reps = if smoke { 3 } else { 10 };
        let start = Instant::now();
        for _ in 0..query_reps {
            store
                .synthesize(client, repo, registry, &comp_opts, None)
                .expect("compositional query");
        }
        let comp_query_ms = start.elapsed().as_secs_f64() * 1e3 / query_reps as f64;

        // Equivalence: cached must reproduce the sequential report
        // verbatim; the pruning modes must agree on the valid plans.
        assert_eq!(
            seq_synth.report.verdicts(),
            cached_synth.report.verdicts(),
            "cached synthesis diverged from the sequential baseline"
        );
        let valid = |s: &Synthesis| s.report.valid_plans().cloned().collect::<Vec<Plan>>();
        let expected = valid(&seq_synth);
        assert_eq!(
            seq_synth.report.len(),
            candidates,
            "candidate space does not match services^requests"
        );
        match w.exact_valid {
            // The inline cells have a closed-form count.
            Some(exact) => assert_eq!(expected.len(), exact),
            // Generated topologies always admit the all-honest plan;
            // their exact valid sets are pinned by the replay corpus.
            None => assert!(
                !expected.is_empty(),
                "generated workload admits no valid plan"
            ),
        }
        assert_eq!(
            valid(&pruned_synth),
            expected,
            "pruned synthesis lost valid plans"
        );
        assert_eq!(
            valid(&par_synth),
            expected,
            "parallel synthesis lost valid plans"
        );
        assert_eq!(
            valid(&comp_synth),
            expected,
            "compositional synthesis lost valid plans"
        );
        let speedup_cached = sequential.wall_ms / cached.wall_ms;
        assert!(
            speedup_cached >= 1.0,
            "caching slowed synthesis down: sequential {:.3}ms vs cached {:.3}ms",
            sequential.wall_ms,
            cached.wall_ms
        );
        eprintln!(
            "  sequential {:.1}ms, cached {:.1}ms, pruned {:.1}ms, parallel {:.1}ms, \
             compositional build {comp_build_ms:.1}ms / query {comp_query_ms:.3}ms",
            sequential.wall_ms, cached.wall_ms, pruned.wall_ms, parallel.wall_ms
        );

        if wi > 0 {
            out.push_str(",\n");
        }
        out.push_str("    {\n");
        write!(
            out,
            "      \"requests\": {}, \"services\": {}",
            w.requests, w.services
        )
        .unwrap();
        if let Some(good) = w.good_services {
            write!(out, ", \"good_services\": {good}").unwrap();
        }
        if let Some(source) = &w.source {
            write!(out, ", \"source\": \"{source}\"").unwrap();
        }
        write!(
            out,
            ",\n      \"candidates\": {candidates}, \"valid_plans\": {},\n",
            expected.len()
        )
        .unwrap();
        json_mode(&mut out, "sequential", &sequential);
        out.push_str(",\n");
        json_mode(&mut out, "cached", &cached);
        out.push_str(",\n");
        json_mode(&mut out, "pruned", &pruned);
        out.push_str(",\n");
        json_mode(&mut out, "parallel", &parallel);
        out.push_str(",\n");
        writeln!(
            out,
            "      \"compositional\": {{\"build_ms\": {comp_build_ms:.3}, \"query_ms\": {comp_query_ms:.4}, \"query_plans_per_sec\": {:.1}}},",
            candidates as f64 / (comp_query_ms / 1e3)
        )
        .unwrap();
        writeln!(
            out,
            "      \"speedup_cached\": {:.2}, \"speedup_pruned\": {:.2}, \"speedup_parallel\": {:.2}, \"speedup_compositional\": {:.2}",
            speedup_cached,
            sequential.wall_ms / pruned.wall_ms,
            sequential.wall_ms / parallel.wall_ms,
            sequential.wall_ms / comp_query_ms
        )
        .unwrap();
        out.push_str("    }");
    }
    out.push_str("\n  ]\n}\n");

    let path = std::env::var("SUFS_BENCH_PLANS_OUT").unwrap_or_else(|_| "BENCH_plans.json".into());
    std::fs::write(&path, &out).expect("write benchmark output");
    eprintln!("wrote {path}");
}
