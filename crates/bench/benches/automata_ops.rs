//! B5 — the automata substrate: subset construction, product, emptiness
//! and minimisation on random automata families.

use sufs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sufs_rng::Rng;

use sufs_automata::{Dfa, Nfa};
use sufs_bench::rng;

fn random_nfa(states: usize, density: usize, seed: u64) -> Nfa<u8> {
    let mut r = rng(seed);
    let mut n = Nfa::new();
    for _ in 0..states {
        n.add_state();
    }
    n.set_start(0);
    n.set_final(states - 1);
    for _ in 0..states * density {
        let from = r.gen_range(0..states);
        let to = r.gen_range(0..states);
        let sym = r.gen_range(0..2u8);
        n.add_transition(from, sym, to);
    }
    n
}

fn subset_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("automata_determinize");
    for states in [8usize, 16, 32] {
        let nfa = random_nfa(states, 3, 1);
        group.bench_with_input(BenchmarkId::from_parameter(states), &nfa, |b, nfa| {
            b.iter(|| nfa.determinize().len())
        });
    }
    group.finish();
}

fn product_and_emptiness(c: &mut Criterion) {
    let mut group = c.benchmark_group("automata_product");
    for states in [8usize, 16, 32] {
        let d1: Dfa<u8> = random_nfa(states, 3, 2).determinize();
        let d2: Dfa<u8> = random_nfa(states, 3, 3).determinize();
        group.bench_with_input(
            BenchmarkId::new("intersect", states),
            &(d1.clone(), d2.clone()),
            |b, (d1, d2)| b.iter(|| d1.intersect(d2).len()),
        );
        let prod = d1.intersect(&d2);
        group.bench_with_input(BenchmarkId::new("emptiness", states), &prod, |b, p| {
            b.iter(|| p.language_is_empty())
        });
    }
    group.finish();
}

fn minimisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("automata_minimize");
    for states in [8usize, 16, 32] {
        let d: Dfa<u8> = random_nfa(states, 3, 4).determinize();
        group.bench_with_input(BenchmarkId::from_parameter(states), &d, |b, d| {
            b.iter(|| d.minimize().len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    subset_construction,
    product_and_emptiness,
    minimisation
);
criterion_main!(benches);
