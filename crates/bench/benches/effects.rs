//! B6 — the λ-calculus front end: type-and-effect inference throughput
//! on generated programs, and the paper's Fig. 2 services written as
//! programs.

use sufs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sufs_bench::lambda_chain;
use sufs_lang::{eval, infer, parse_expr};

fn inference_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("effect_inference_chain");
    for n in [10usize, 100, 1000] {
        let e = lambda_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &e, |b, e| {
            b.iter(|| infer(e).unwrap().effect.size())
        });
    }
    group.finish();
}

fn paper_service_programs(c: &mut Criterion) {
    let hotel_src = "#sgn(1); #p(45); #ta(80); offer[idc -> choose[bok -> () | una -> ()]]";
    let pump_src =
        "rec pump(x: unit) -> unit { offer[item -> send fetch; pump(x) | end -> ()] }(())";
    c.bench_function("lang_parse/hotel", |b| {
        b.iter(|| parse_expr(hotel_src).unwrap())
    });
    let hotel = parse_expr(hotel_src).unwrap();
    c.bench_function("effect_inference/hotel", |b| {
        b.iter(|| infer(&hotel).unwrap())
    });
    let pump = parse_expr(pump_src).unwrap();
    c.bench_function("effect_inference/recursive_pump", |b| {
        b.iter(|| infer(&pump).unwrap())
    });
}

fn evaluation(c: &mut Criterion) {
    let e = lambda_chain(100);
    c.bench_function("lang_eval/chain_100", |b| {
        b.iter(|| {
            let mut rng = sufs_bench::rng(1);
            eval(&e, &mut rng, 1 << 20).unwrap().trace.len()
        })
    });
}

criterion_group!(
    benches,
    inference_scaling,
    paper_service_programs,
    evaluation
);
criterion_main!(benches);
