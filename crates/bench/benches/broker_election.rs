//! Election benchmark (B10): what self-healing costs when nobody is
//! on call, emitted as machine-readable `BENCH_broker_election.json`.
//!
//! Each repetition spawns a fresh 3-node cluster with `--election
//! auto`, waits until every follower's heartbeat-fed peer view holds
//! the full membership, kills the primary with no operator anywhere,
//! and times kill → first quorum-acknowledged write on the elected
//! successor. That window is the paper's bounded-unavailability claim
//! measured end to end: detection (4 missed heartbeat ticks), the
//! randomized candidacy delay, the canvass, promotion, the survivors'
//! re-point, and the client's redirect chase all land inside it.
//!
//! Environment:
//! * `SUFS_BENCH_SMOKE=1` — tiny workloads, for CI;
//! * `SUFS_BENCH_BROKER_ELECTION_OUT=path` — where to write the JSON
//!   (default `BENCH_broker_election.json` in the working directory).

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use sufs_broker::{
    AckMode, Broker, BrokerClient, BrokerConfig, BrokerHandle, ElectionMode, Json, ReconnectPolicy,
};
use sufs_hexpr::builder::*;
use sufs_hexpr::Hist;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn state_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sufs-bench-elect-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn responder() -> Hist {
    recv("req", choose([("ok", eps()), ("no", eps())]))
}

fn node_config(dir: &Path, follow: Option<String>, seed: u64) -> BrokerConfig {
    BrokerConfig {
        state_dir: Some(dir.to_path_buf()),
        snapshot_every: 64,
        follow,
        ack: AckMode::Quorum,
        cluster_size: 3,
        ack_timeout: Duration::from_millis(500),
        follow_retry: Duration::from_millis(10),
        replication_tick: Duration::from_millis(25),
        election: ElectionMode::Auto,
        election_timeout: Duration::from_millis(150),
        election_seed: seed,
        ..BrokerConfig::default()
    }
}

fn repl_section(stats: &Json) -> Json {
    stats.get("replication").cloned().unwrap_or_else(Json::obj)
}

fn stats_at(addr: SocketAddr) -> Option<Json> {
    let mut c = BrokerClient::connect(addr).ok()?;
    c.stats().ok()
}

/// Spawns primary + two followers and blocks until both followers have
/// bootstrapped *and* learned each other's address — the precondition
/// for any two survivors to elect without the third.
fn spawn_cluster(rep: usize, seed: u64) -> (Vec<PathBuf>, Vec<BrokerHandle>) {
    let dirs: Vec<PathBuf> = (0..3).map(|i| state_dir(&format!("r{rep}-n{i}"))).collect();
    let primary = Broker::spawn(node_config(&dirs[0], None, seed)).expect("primary spawns");
    let upstream = primary.addr().to_string();
    let mut handles = vec![primary];
    for dir in dirs.iter().skip(1) {
        handles
            .push(Broker::spawn(node_config(dir, Some(upstream.clone()), seed)).expect("follower"));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let converged = handles.iter().skip(1).all(|h| {
            stats_at(h.addr()).is_some_and(|stats| {
                repl_section(&stats)
                    .get("peers")
                    .and_then(Json::as_arr)
                    .is_some_and(|p| p.len() >= 2)
            })
        });
        if converged {
            return (dirs, handles);
        }
        assert!(Instant::now() < deadline, "peer views never converged");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One repetition: kill the primary, no operator anywhere, and time
/// until a quorum-acknowledged write lands on whoever got elected.
fn run_failover(rep: usize, seed: u64, service: &str) -> Json {
    let (dirs, mut handles) = spawn_cluster(rep, seed);
    let mut conn = BrokerClient::connect(handles[0].addr()).expect("connect");
    let reply = conn.publish("seed", service, None).expect("seed publish");
    assert_eq!(reply.bool_field("quorum"), Some(true), "seed not settled");
    drop(conn);

    let survivors: Vec<String> = handles
        .iter()
        .skip(1)
        .map(|h| h.addr().to_string())
        .collect();
    let t = Instant::now();
    handles.remove(0).kill();
    let client = BrokerClient::connect_any(&survivors).expect("survivors reachable");
    let mut client = client.with_reconnect(
        ReconnectPolicy {
            max_retries: 12,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            ..ReconnectPolicy::default()
        }
        .with_addrs(survivors.clone()),
    );
    let req = Json::obj()
        .with("cmd", "publish")
        .with("location", format!("fo{rep}"))
        .with("service", service)
        .with("req_id", format!("b10-{rep:03}"));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "rep {rep}: write never settled");
        match client.request_retrying(&req) {
            Ok(reply)
                if reply.bool_field("ok") == Some(true)
                    && reply.bool_field("quorum") == Some(true) =>
            {
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let window_ms = t.elapsed().as_secs_f64() * 1e3;

    // The winner's own detection→promotion time, from its metrics.
    let election_ms = survivors
        .iter()
        .filter_map(|a| {
            let addr: SocketAddr = a.parse().ok()?;
            let stats = stats_at(addr)?;
            if repl_section(&stats).str_field("role") != Some("primary") {
                return None;
            }
            stats
                .get("stats")?
                .get("replication")?
                .u64_field("last_election_ms")
        })
        .next()
        .unwrap_or(0);
    eprintln!("  rep {rep} (seed {seed:#x}): first settled write at {window_ms:.1}ms, election {election_ms}ms");
    for h in handles {
        h.kill();
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    Json::obj()
        .with("rep", rep)
        .with("seed", seed)
        .with("first_settled_write_ms", window_ms)
        .with("election_ms", election_ms)
}

fn main() {
    let smoke = std::env::var("SUFS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let reps = if smoke { 3 } else { 15 };
    let service = responder().to_string();

    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"broker_election\",\n  \"schema_version\": 1,\n  \"smoke\": {smoke},\n"
    )
    .unwrap();

    eprintln!("no-operator failover: kill the primary, time to first settled write ({reps} reps)");
    out.push_str("  \"failover\": [\n");
    let mut windows: Vec<u128> = Vec::new();
    let mut elections: Vec<u128> = Vec::new();
    for rep in 0..reps {
        if rep > 0 {
            out.push_str(",\n");
        }
        let sample = run_failover(rep, 0xB10_000 + rep as u64, &service);
        if let Some(ms) = sample.get("first_settled_write_ms").and_then(Json::as_f64) {
            windows.push((ms * 1000.0) as u128);
        }
        if let Some(ms) = sample.get("election_ms").and_then(Json::as_f64) {
            elections.push((ms * 1000.0) as u128);
        }
        write!(out, "    {sample}").unwrap();
    }
    out.push_str("\n  ],\n");
    windows.sort_unstable();
    elections.sort_unstable();
    write!(
        out,
        "  \"unavailability_p50_us\": {},\n  \"unavailability_p95_us\": {},\n  \
         \"unavailability_max_us\": {},\n  \"election_p50_us\": {},\n  \
         \"election_p95_us\": {}\n}}\n",
        percentile(&windows, 50.0),
        percentile(&windows, 95.0),
        windows.last().copied().unwrap_or(0),
        percentile(&elections, 50.0),
        percentile(&elections, 95.0),
    )
    .unwrap();

    let path = std::env::var("SUFS_BENCH_BROKER_ELECTION_OUT")
        .unwrap_or_else(|_| "BENCH_broker_election.json".into());
    std::fs::write(&path, &out).expect("write benchmark output");
    eprintln!("wrote {path}");
}
