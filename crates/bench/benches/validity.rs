//! E1 / B2 — security machinery: instantiating and running the Fig. 1
//! policy automaton, batch history validity `⊨ η`, and the static
//! validity model checker as the history grows and framings nest.

use sufs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sufs::paper;
use sufs_bench::framed_event_chain;
use sufs_hexpr::semantics::successors;
use sufs_hexpr::{Event, Hist, PolicyRef};
use sufs_policy::{catalog, check_validity, History, HistoryItem, PolicyRegistry};

fn policy_instantiation(c: &mut Criterion) {
    let reg = paper::registry();
    c.bench_function("policy_instantiation/fig1", |b| {
        b.iter(|| reg.instantiate(&paper::phi1()).unwrap())
    });
    let inst = reg.instantiate(&paper::phi1()).unwrap();
    let trace: Vec<Event> = vec![
        Event::new("sgn", [3i64]),
        Event::new("p", [90i64]),
        Event::new("ta", [100i64]),
    ];
    c.bench_function("policy_run/fig1_trace", |b| {
        b.iter(|| inst.respects(trace.iter()))
    });
}

fn batch_validity(c: &mut Criterion) {
    let mut reg = PolicyRegistry::new();
    reg.register(catalog::at_most("op", 2000));
    let phi = PolicyRef::nullary("at_most_2000_op");
    let mut group = c.benchmark_group("history_validity");
    for n in [10usize, 100, 1000] {
        let mut h = History::new();
        h.push_open(phi.clone());
        for i in 0..n {
            h.push_event(Event::new("op", [i as i64]));
        }
        h.push_close(phi.clone());
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| h.is_valid(&reg).unwrap())
        });
    }
    group.finish();
}

fn static_model_checking(c: &mut Criterion) {
    let mut reg = PolicyRegistry::new();
    reg.register(catalog::at_most("op", 2000));
    let phi = PolicyRef::nullary("at_most_2000_op");
    let mut group = c.benchmark_group("validity_model_checking");
    for n in [10usize, 50, 200] {
        let h = framed_event_chain(n, phi.clone());
        group.bench_with_input(BenchmarkId::new("chain", n), &h, |b, h| {
            b.iter(|| check_validity(h.clone(), |x: &Hist| successors(x), &reg, 1 << 20).unwrap())
        });
    }
    // Nesting depth: φ⟦φ⟦…⟦α⟧…⟧⟧.
    for depth in [2usize, 8, 32] {
        let mut h = Hist::ev(Event::nullary("op"));
        for _ in 0..depth {
            h = Hist::framed(phi.clone(), h);
        }
        group.bench_with_input(BenchmarkId::new("nesting", depth), &h, |b, h| {
            b.iter(|| check_validity(h.clone(), |x: &Hist| successors(x), &reg, 1 << 20).unwrap())
        });
    }
    group.finish();
}

fn incremental_monitor(c: &mut Criterion) {
    let mut reg = PolicyRegistry::new();
    reg.register(catalog::at_most("op", 2000));
    let phi = PolicyRef::nullary("at_most_2000_op");
    let mut group = c.benchmark_group("incremental_monitor");
    for n in [100usize, 1000] {
        let mut items = vec![HistoryItem::Open(phi.clone())];
        items.extend((0..n).map(|i| HistoryItem::Ev(Event::new("op", [i as i64]))));
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| {
                let mut m = sufs_net::ValidityMonitor::new();
                for item in items {
                    m.observe(item, &reg).unwrap();
                }
                m.is_valid()
            })
        });
    }
    group.finish();
}

fn regularisation_ablation(c: &mut Criterion) {
    use sufs_policy::regularize::regularize;
    let mut reg = PolicyRegistry::new();
    reg.register(catalog::at_most("op", 2000));
    let phi = PolicyRef::nullary("at_most_2000_op");
    let mut group = c.benchmark_group("regularisation_ablation");
    for depth in [4usize, 16, 64] {
        // Deeply nested same-policy framings around a small body.
        let mut h = Hist::seq(
            Hist::ev(Event::new("op", [1i64])),
            Hist::ev(Event::new("op", [2i64])),
        );
        for _ in 0..depth {
            h = Hist::framed(phi.clone(), h);
        }
        group.bench_with_input(BenchmarkId::new("raw", depth), &h, |b, h| {
            b.iter(|| check_validity(h.clone(), |x: &Hist| successors(x), &reg, 1 << 20).unwrap())
        });
        let r = regularize(&h);
        group.bench_with_input(BenchmarkId::new("regularized", depth), &r, |b, r| {
            b.iter(|| check_validity(r.clone(), |x: &Hist| successors(x), &reg, 1 << 20).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    policy_instantiation,
    batch_validity,
    static_model_checking,
    incremental_monitor,
    regularisation_ablation
);
criterion_main!(benches);
