//! Incremental lint benchmark: what the dependency index buys on a
//! live repository, emitted as machine-readable
//! `BENCH_lint_incremental.json`.
//!
//! For each repository size the harness publishes `n` services and
//! three single-request clients, then alternates one service's body
//! (the kind of single mutation a broker sees) and measures, for the
//! same mutation sequence, two kinds of refresh (timed in separate
//! loops so the heavy cold runs cannot pollute the incremental
//! timings):
//!
//! * **cold** — a fresh [`LintEngine`] with empty caches, the price a
//!   broker without the incremental engine would pay on every `lint`;
//! * **incremental** — the long-lived engine, which re-verifies only
//!   the plans routing through the touched location and splices every
//!   pass whose inputs did not change.
//!
//! After every mutation the two reports are checked byte-identical
//! (`equivalence: "ok"`), so the speedup is never bought with staleness.
//!
//! Environment:
//! * `SUFS_BENCH_SMOKE=1` — tiny workloads, for CI;
//! * `SUFS_BENCH_LINT_INCREMENTAL_OUT=path` — where to write the JSON
//!   (default `BENCH_lint_incremental.json` in the working directory).

use std::fmt::Write as _;
use std::time::Instant;

use sufs_broker::Json;
use sufs_hexpr::{parse_hist, Hist};
use sufs_lint::{LintEngine, LintInput};
use sufs_net::Repository;
use sufs_policy::PolicyRegistry;

/// Three one-request clients; single requests keep the candidate-plan
/// count linear in the repository size (every request binds to every
/// location), so the cold baseline scales honestly.
fn clients() -> Vec<(String, Hist)> {
    (0..3)
        .map(|k| {
            let hist = parse_hist(&format!("open {} {{ int[ping{k} -> eps] }}", k + 1))
                .expect("client parses");
            (format!("c{k}"), hist)
        })
        .collect()
}

/// A repository of `n` services, each answering one of the three
/// client events — every client has ~n/3 valid plans.
fn repository(n: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..n {
        let body = parse_hist(&format!("ext[ping{} -> eps]", i % 3)).expect("service parses");
        repo.restore(format!("svc{i}"), body, None)
            .expect("service is well-formed");
    }
    repo
}

/// One size point: `mutations` single-service mutations, each timed
/// cold and incrementally, with a byte-level equivalence check.
fn run_size(n: usize, mutations: usize) -> Json {
    let clients = clients();
    let mut repo = repository(n);
    let registry = PolicyRegistry::new();

    let mut engine = LintEngine::new();
    engine
        .refresh(LintInput::new(&clients, &repo, &registry))
        .expect("initial refresh");

    let bodies = ["ext[ping0 -> eps]", "ext[ping1 -> eps]"];
    let (mut cold_ms, mut incr_ms) = (0.0f64, 0.0f64);
    let (mut passes_run, mut passes_reused) = (0usize, 0usize);

    // First the incremental refreshes, back to back — interleaving the
    // (much heavier) cold runs would let their cache pollution bleed
    // into the incremental timings. The reports are kept for the
    // equivalence check below.
    let mut reports = Vec::with_capacity(mutations);
    for step in 0..mutations {
        // The mutation: alternate svc0 between two bodies.
        let body = parse_hist(bodies[step % 2]).expect("pool body parses");
        repo.restore("svc0", body, None).expect("well-formed");

        let t = Instant::now();
        let outcome = engine
            .refresh(LintInput::new(&clients, &repo, &registry))
            .expect("incremental refresh");
        incr_ms += t.elapsed().as_secs_f64() * 1e3;
        passes_run += outcome.passes_run;
        passes_reused += outcome.passes_reused;
        reports.push(engine.report().to_json(None));
    }

    // Then the cold baseline over the same mutation sequence, checking
    // every incremental report byte-identical to the from-scratch one.
    for (step, incremental_report) in reports.iter().enumerate() {
        let body = parse_hist(bodies[step % 2]).expect("pool body parses");
        repo.restore("svc0", body, None).expect("well-formed");

        let t = Instant::now();
        let mut cold = LintEngine::new();
        cold.refresh(LintInput::new(&clients, &repo, &registry))
            .expect("cold refresh");
        cold_ms += t.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            *incremental_report,
            cold.report().to_json(None),
            "{n} services, mutation {step}: incremental and cold reports diverged"
        );
    }
    cold_ms /= mutations as f64;
    incr_ms /= mutations as f64;
    let speedup = if incr_ms > 0.0 {
        cold_ms / incr_ms
    } else {
        0.0
    };
    let reuse_total = passes_run + passes_reused;
    let reuse_rate = if reuse_total == 0 {
        0.0
    } else {
        passes_reused as f64 / reuse_total as f64
    };
    eprintln!(
        "  {n} services: cold {cold_ms:.2}ms, incremental {incr_ms:.3}ms, {speedup:.1}x, \
         reuse rate {reuse_rate:.2}"
    );
    Json::obj()
        .with("services", n)
        .with("clients", 3u64)
        .with("mutations", mutations)
        .with("cold_ms", cold_ms)
        .with("incremental_ms", incr_ms)
        .with("speedup", speedup)
        .with("passes_run", passes_run)
        .with("passes_reused", passes_reused)
        .with("reuse_rate", reuse_rate)
        .with("equivalence", "ok")
}

fn main() {
    let smoke = std::env::var("SUFS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let sizes: &[usize] = if smoke {
        &[10, 30]
    } else {
        &[10, 50, 200, 500]
    };
    let mutations = if smoke { 4 } else { 10 };

    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"lint_incremental\",\n  \"schema_version\": 1,\n  \"smoke\": {smoke},\n"
    )
    .unwrap();

    eprintln!("incremental vs cold re-lint, single mutation on an n-service repository");
    out.push_str("  \"sizes\": [\n");
    for (i, &n) in sizes.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write!(out, "    {}", run_size(n, mutations)).unwrap();
    }
    out.push_str("\n  ]\n}\n");

    let path = std::env::var("SUFS_BENCH_LINT_INCREMENTAL_OUT")
        .unwrap_or_else(|_| "BENCH_lint_incremental.json".into());
    std::fs::write(&path, &out).expect("write benchmark output");
    eprintln!("wrote {path}");
}
