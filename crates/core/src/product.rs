//! Compositional plan synthesis: the composed product.
//!
//! The enumerative pipeline ([`crate::verify::synthesize`]) re-walks a
//! plan space exponential in the number of requests on *every* query,
//! although the repository state it walks rarely changes between
//! queries. Following the contract-automata line (one product/controller
//! object from which all valid orchestrations are read off), this module
//! computes a **composed product** of the client behaviour × the exposed
//! service interfaces once per repository state:
//!
//! * an **edge relation** `request × location → admissible?` — one
//!   pairwise compliance check per `(request body, service)` pair (via
//!   the Theorem 1 product automaton, memoized in the [`VerifyCache`]),
//!   instead of one per candidate plan;
//! * the **surviving plan set** — the depth-first closure of the edge
//!   relation over exposed requests, with inadmissible branches cut
//!   *during construction* (never expanded);
//! * the **materialized verdicts** — each surviving plan's security and
//!   progress checks, run once and stored.
//!
//! A query then *reads off* valid plans (any, all up to the cap, or
//! first-k) from the materialized map in time proportional to the
//! result, not to the candidate space.
//!
//! # Incremental maintenance
//!
//! The product is fingerprint-addressed with the same `shash` idiom as
//! the incremental lint engine: it stores a per-location fingerprint of
//! `(service behaviour, capacity)` and one fingerprint of the policy
//! registry. On the next query after a `publish`/`retract`/
//! `retract_policy`, only the regions whose fingerprints changed are
//! recomputed — edges touching changed locations, plus the verdicts of
//! surviving plans that bind a changed location. Verdicts of plans
//! whose bound locations are untouched are *reused* (sound for the same
//! reason [`VerifyCache::invalidate_location`] is selective: security
//! and progress consult the repository only at the locations a plan
//! binds). A patched product is byte-identical to a cold rebuild: both
//! paths run the same deterministic checks over the same inputs and
//! store results in plan-sorted maps.
//!
//! # Equivalence with the enumerative engines
//!
//! When compliance pruning is sound (every request identifier carries
//! one structural body — see `prune_safe_bodies`), the product's report
//! equals the *pruned* enumerative report: the surviving plans with
//! their verdicts, from which compliance-rejected candidates have been
//! cut. Its valid-plan set equals the *full* enumerative report's valid
//! set (pruning only ever cuts invalid candidates). When pruning is
//! unsound the product falls back to materializing every candidate's
//! verdict, and the report equals the full enumerative report. The plan
//! cap counts distinct surviving candidates.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sufs_hexpr::shash::stable_hash_of;
use sufs_hexpr::RequestId;
use sufs_hexpr::{wf, Hist, Location};
use sufs_net::{Plan, Repository};
use sufs_policy::PolicyRegistry;

use crate::cache::VerifyCache;
use crate::plans::{search, PlanSpaceExceeded, SearchNode};
use crate::report::VerifyReport;
use crate::verify::{
    check_plan, prune_safe_bodies, ComplianceMemo, Engine, PlanVerdict, SynthStats, Synthesis,
    SynthesisOptions, VerifyError,
};

/// Per-query product instrumentation, surfaced in
/// [`SynthStats::product`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProductInfo {
    /// Whether an existing product was reused (possibly after a patch)
    /// instead of built from scratch.
    pub reused: bool,
    /// Changed regions repaired by the incremental patch: mutated
    /// locations, plus one for a registry change.
    pub patched: usize,
    /// Admissible `(request, location)` edges in the product.
    pub admissible_edges: usize,
    /// Total `(request, location)` edges examined.
    pub total_edges: usize,
}

/// Store-level counters, surfaced in broker `stats` and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProductStats {
    /// Products built from scratch.
    pub builds: u64,
    /// Incremental patches applied (queries that repaired ≥ 1 region).
    pub patches: u64,
    /// Queries answered by reading off a current product unchanged.
    pub reads: u64,
    /// Products evicted to respect the store capacity.
    pub evictions: u64,
    /// Products currently resident.
    pub entries: usize,
}

/// The per-location fingerprint the product diffs against: behaviour
/// and capacity together, since both influence verdicts.
fn location_fp(service: &Hist, capacity: Option<usize>) -> u64 {
    stable_hash_of(&(service, capacity.map(|c| c as u64)))
}

/// The repository signature: one fingerprint per published location.
fn repo_signature(repo: &Repository) -> BTreeMap<Location, u64> {
    repo.iter()
        .map(|(loc, service)| {
            let capacity = repo.capacity(loc).flatten();
            (loc.clone(), location_fp(service, capacity))
        })
        .collect()
}

/// One fingerprint of the whole policy registry (same idiom as the
/// incremental lint engine): verdicts depend on it through every policy
/// the composition can activate.
fn registry_fingerprint(registry: &PolicyRegistry) -> u64 {
    let parts: Vec<u64> = registry
        .iter()
        .map(|a| stable_hash_of(&format!("{a:?}")))
        .collect();
    stable_hash_of(&parts)
}

/// The composed product for one client over one repository state.
#[derive(Debug, Clone)]
struct Product {
    /// Fingerprint of `(service, capacity)` per location at build time.
    repo_sig: BTreeMap<Location, u64>,
    /// Fingerprint of the policy registry at build time.
    registry_fp: u64,
    /// The per-request bodies the edge relation committed to, or `None`
    /// when compliance pruning is unsound (ambiguous bodies) and the
    /// product materializes every candidate instead.
    bodies: Option<HashMap<RequestId, Hist>>,
    /// `request × location → admissible` (empty when `bodies` is `None`).
    edges: BTreeMap<RequestId, BTreeMap<Location, bool>>,
    /// Every surviving plan with its materialized verdict.
    verdicts: BTreeMap<Plan, PlanVerdict>,
    /// Subtrees cut while enumerating the surviving set.
    pruned_subtrees: usize,
}

impl Product {
    fn admissible_edges(&self) -> usize {
        self.edges
            .values()
            .map(|row| row.values().filter(|a| **a).count())
            .sum()
    }

    fn total_edges(&self) -> usize {
        self.edges.values().map(BTreeMap::len).sum()
    }
}

/// Recomputes the admissibility row of request `r` (body `body`) at the
/// given locations. An edge stays admissible on projection errors, so
/// full verification — not the prune — surfaces them, mirroring the
/// enumerative prune predicate.
fn edge_row<'a>(
    body: &Hist,
    locations: impl Iterator<Item = (&'a Location, &'a Hist)>,
    cache: Option<&VerifyCache>,
) -> BTreeMap<Location, bool> {
    let client_side = crate::verify::contract_of(cache, body);
    locations
        .map(|(loc, service)| {
            let admissible = match (&client_side, crate::verify::contract_of(cache, service)) {
                (Ok(c), Ok(s)) => crate::verify::witness_of(cache, c, &s).is_none(),
                _ => true,
            };
            (loc.clone(), admissible)
        })
        .collect()
}

/// Enumerates the distinct surviving plans under the product's edge
/// relation, cutting inadmissible branches during construction.
fn surviving_plans(
    client: &Hist,
    repo: &Repository,
    edges: &BTreeMap<RequestId, BTreeMap<Location, bool>>,
    cap: usize,
) -> Result<(BTreeSet<Plan>, usize), PlanSpaceExceeded> {
    let mut seen: BTreeSet<Plan> = BTreeSet::new();
    let pruned = search(
        SearchNode::root(client),
        repo,
        &mut |_plan, r, loc| matches!(edges.get(&r).and_then(|row| row.get(loc)), Some(false)),
        &mut |plan| {
            if seen.contains(&plan) {
                return Ok(());
            }
            if seen.len() >= cap {
                return Err(PlanSpaceExceeded { cap });
            }
            seen.insert(plan);
            Ok(())
        },
    )?;
    Ok((seen, pruned))
}

fn build_product(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    cap: usize,
    cache: Option<&VerifyCache>,
) -> Result<Product, VerifyError> {
    let bodies = prune_safe_bodies(client, repo);
    let edges: BTreeMap<RequestId, BTreeMap<Location, bool>> = match &bodies {
        Some(map) => map
            .iter()
            .map(|(r, body)| (*r, edge_row(body, repo.iter(), cache)))
            .collect(),
        None => BTreeMap::new(),
    };
    let (surviving, pruned_subtrees) = surviving_plans(client, repo, &edges, cap)?;
    let comp = cache.map(|c| c.intern(client));
    let memo = ComplianceMemo::new();
    let mut verdicts = BTreeMap::new();
    for plan in surviving {
        let verdict = check_plan(
            client,
            comp,
            &plan,
            repo,
            registry,
            cache,
            Some(&memo),
            true,
        )?;
        verdicts.insert(plan, verdict);
    }
    Ok(Product {
        repo_sig: repo_signature(repo),
        registry_fp: registry_fingerprint(registry),
        bodies,
        edges,
        verdicts,
        pruned_subtrees,
    })
}

/// Patches `product` to the current `(repo, registry)` state, repairing
/// only the regions whose fingerprints changed. Returns the number of
/// repaired regions (0 = the product was already current).
fn patch_product(
    product: &mut Product,
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    cap: usize,
    cache: Option<&VerifyCache>,
) -> Result<usize, VerifyError> {
    let new_sig = repo_signature(repo);
    let new_registry_fp = registry_fingerprint(registry);
    let changed: BTreeSet<Location> = product
        .repo_sig
        .iter()
        .filter(|(loc, fp)| new_sig.get(*loc) != Some(fp))
        .map(|(loc, _)| loc.clone())
        .chain(
            new_sig
                .keys()
                .filter(|loc| !product.repo_sig.contains_key(*loc))
                .cloned(),
        )
        .collect();
    let registry_changed = new_registry_fp != product.registry_fp;
    if changed.is_empty() && !registry_changed {
        return Ok(0);
    }

    if !changed.is_empty() {
        let bodies = prune_safe_bodies(client, repo);
        match (&product.bodies, &bodies) {
            (Some(old), Some(new)) => {
                // Requests whose committed body changed (or that are new)
                // re-check every location; stable requests re-check only
                // the changed locations.
                let mut edges = BTreeMap::new();
                for (r, body) in new {
                    let row = match (old.get(r), product.edges.get(r)) {
                        (Some(old_body), Some(old_row)) if old_body == body => {
                            let mut row: BTreeMap<Location, bool> = old_row
                                .iter()
                                .filter(|(loc, _)| {
                                    !changed.contains(*loc) && new_sig.contains_key(*loc)
                                })
                                .map(|(loc, a)| (loc.clone(), *a))
                                .collect();
                            let touched = repo.iter().filter(|(loc, _)| changed.contains(*loc));
                            row.extend(edge_row(body, touched, cache));
                            row
                        }
                        _ => edge_row(body, repo.iter(), cache),
                    };
                    edges.insert(*r, row);
                }
                product.edges = edges;
            }
            (_, Some(new)) => {
                // The product previously ran unpruned; rebuild the whole
                // edge relation.
                product.edges = new
                    .iter()
                    .map(|(r, body)| (*r, edge_row(body, repo.iter(), cache)))
                    .collect();
            }
            (_, None) => {
                // Bodies became ambiguous: pruning is off from here on.
                product.edges = BTreeMap::new();
            }
        }
        product.bodies = bodies;
    }

    let (surviving, pruned_subtrees) = surviving_plans(client, repo, &product.edges, cap)?;
    let comp = cache.map(|c| c.intern(client));
    let memo = ComplianceMemo::new();
    let mut verdicts = BTreeMap::new();
    for plan in surviving {
        let untouched = !registry_changed && !plan.iter().any(|(_, loc)| changed.contains(loc));
        let verdict = match product.verdicts.get(&plan) {
            Some(v) if untouched => v.clone(),
            _ => check_plan(
                client,
                comp,
                &plan,
                repo,
                registry,
                cache,
                Some(&memo),
                true,
            )?,
        };
        verdicts.insert(plan, verdict);
    }
    product.verdicts = verdicts;
    product.pruned_subtrees = pruned_subtrees;
    product.repo_sig = new_sig;
    product.registry_fp = new_registry_fp;
    Ok(changed.len() + usize::from(registry_changed))
}

#[derive(Debug)]
struct Entry {
    client: Hist,
    client_fp: u64,
    product: Product,
    last_used: u64,
}

/// The default number of resident products.
pub const DEFAULT_STORE_CAPACITY: usize = 64;

/// A bounded store of composed products, keyed by client behaviour:
/// the long-lived structure behind the broker's compositional engine
/// (one entry per distinct client) and the one-shot structure behind
/// `sufs verify --engine compositional`.
///
/// Internally synchronised; a query holds the store lock for the
/// duration of any build/patch it triggers, so concurrent queries for
/// the same repository state serialise on the structure they share —
/// by design, since the second query then reads off the first one's
/// work. When used with a shared [`VerifyCache`], the caller keeps the
/// cache sound exactly as for [`crate::verify::synthesize_with`]
/// (invalidate on every repository/registry mutation); the product
/// itself needs no invalidation calls — it re-validates against the
/// current fingerprints on every query.
#[derive(Debug)]
pub struct ProductStore {
    entries: Mutex<Vec<Entry>>,
    capacity: usize,
    clock: AtomicU64,
    builds: AtomicU64,
    patches: AtomicU64,
    reads: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ProductStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_STORE_CAPACITY)
    }
}

impl ProductStore {
    /// An empty store with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store holding at most `capacity` products.
    pub fn with_capacity(capacity: usize) -> Self {
        ProductStore {
            entries: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// A snapshot of the store counters.
    pub fn stats(&self) -> ProductStats {
        ProductStats {
            builds: self.builds.load(Ordering::Relaxed),
            patches: self.patches.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("product store poisoned").len(),
        }
    }

    /// Drops every resident product (they rebuild on next query).
    pub fn clear(&self) {
        self.entries.lock().expect("product store poisoned").clear();
    }

    /// Builds (or patches) the product for `client` without reading a
    /// report: the broker's warm-start hook, run after crash recovery
    /// so the first post-recovery query pays read-off price only.
    ///
    /// # Errors
    ///
    /// As [`ProductStore::synthesize`].
    pub fn warm(
        &self,
        client: &Hist,
        repo: &Repository,
        registry: &PolicyRegistry,
        opts: &SynthesisOptions,
        shared: Option<&VerifyCache>,
    ) -> Result<(), VerifyError> {
        self.synthesize(client, repo, registry, opts, shared)
            .map(|_| ())
    }

    /// Compositional synthesis: answers from the resident product for
    /// `client`, building or patching it first if the repository or
    /// registry fingerprints moved. Report-equivalent to the pruned
    /// enumerative engine (see the module docs for the exact spec).
    ///
    /// # Errors
    ///
    /// As [`crate::verify::synthesize`]; the plan cap counts distinct
    /// surviving candidates.
    pub fn synthesize(
        &self,
        client: &Hist,
        repo: &Repository,
        registry: &PolicyRegistry,
        opts: &SynthesisOptions,
        shared: Option<&VerifyCache>,
    ) -> Result<Synthesis, VerifyError> {
        let (verdicts, stats) = self.with_entry(client, repo, registry, opts, shared, |p| {
            p.verdicts.values().cloned().collect::<Vec<PlanVerdict>>()
        })?;
        Ok(Synthesis {
            report: VerifyReport::new(verdicts),
            stats,
        })
    }

    /// The production read-off: the first `k` valid plans plus the
    /// total valid count, straight from the resident product. Unlike
    /// [`ProductStore::synthesize`] this never materialises the full
    /// verdict map, so a query costs the same however wide the plan
    /// space is — the broker's `max_valid` fast path.
    ///
    /// # Errors
    ///
    /// As [`ProductStore::synthesize`].
    pub fn read_valid(
        &self,
        client: &Hist,
        repo: &Repository,
        registry: &PolicyRegistry,
        opts: &SynthesisOptions,
        shared: Option<&VerifyCache>,
        k: usize,
    ) -> Result<(Vec<Plan>, usize, SynthStats), VerifyError> {
        let ((valid, total), stats) =
            self.with_entry(client, repo, registry, opts, shared, |p| {
                let mut valid = Vec::with_capacity(k.min(8));
                let mut total = 0usize;
                for v in p.verdicts.values() {
                    if v.is_valid() {
                        if valid.len() < k {
                            valid.push(v.plan.clone());
                        }
                        total += 1;
                    }
                }
                (valid, total)
            })?;
        Ok((valid, total, stats))
    }

    /// Shared maintenance path: locate (or build) the resident product
    /// for `client`, patch it if the repository or registry
    /// fingerprints moved, and hand it to `read` under the store lock.
    fn with_entry<T>(
        &self,
        client: &Hist,
        repo: &Repository,
        registry: &PolicyRegistry,
        opts: &SynthesisOptions,
        shared: Option<&VerifyCache>,
        read: impl FnOnce(&Product) -> T,
    ) -> Result<(T, SynthStats), VerifyError> {
        let start = Instant::now();
        wf::check(client).map_err(VerifyError::IllFormedClient)?;
        let local;
        let (cache, mark) = if !opts.cache {
            (None, None)
        } else if let Some(shared) = shared {
            (Some(shared), Some(shared.stats()))
        } else {
            local = VerifyCache::new();
            (Some(&local), None)
        };

        let client_fp = stable_hash_of(client);
        let now = self.tick();
        let mut entries = self.entries.lock().expect("product store poisoned");
        let slot = entries
            .iter()
            .position(|e| e.client_fp == client_fp && e.client == *client);
        let mut info = ProductInfo::default();
        let entry = match slot {
            Some(i) => {
                let entry = &mut entries[i];
                let patched = patch_product(
                    &mut entry.product,
                    client,
                    repo,
                    registry,
                    opts.plan_cap,
                    cache,
                )?;
                if patched > 0 {
                    self.patches.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.reads.fetch_add(1, Ordering::Relaxed);
                }
                info.reused = true;
                info.patched = patched;
                entry.last_used = now;
                entry
            }
            None => {
                let product = build_product(client, repo, registry, opts.plan_cap, cache)?;
                self.builds.fetch_add(1, Ordering::Relaxed);
                if entries.len() >= self.capacity {
                    if let Some(oldest) = entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                    {
                        entries.remove(oldest);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                entries.push(Entry {
                    client: client.clone(),
                    client_fp,
                    product,
                    last_used: now,
                });
                entries.last_mut().expect("just pushed")
            }
        };

        info.admissible_edges = entry.product.admissible_edges();
        info.total_edges = entry.product.total_edges();
        let candidates = entry.product.verdicts.len();
        let pruned_subtrees = entry.product.pruned_subtrees;
        let prune_active = entry.product.bodies.is_some();
        let out = read(&entry.product);
        drop(entries);

        let stats = SynthStats {
            candidates,
            pruned_subtrees,
            jobs: 1,
            prune_active,
            cache: cache.map(|c| match &mark {
                Some(mark) => c.stats().since(mark),
                None => c.stats(),
            }),
            engine: Engine::Compositional,
            product: Some(info),
            elapsed: start.elapsed(),
        };
        Ok((out, stats))
    }

    /// The *full* plan space for `client` over `repo` (no pruning), up
    /// to `cap` distinct plans: the product-backed replacement for raw
    /// enumeration, used by the lint engine's plan-space caches. The
    /// result is identical to `enumerate_plans` — the product only
    /// contributes its closure walk.
    ///
    /// # Errors
    ///
    /// Returns [`PlanSpaceExceeded`] past the cap.
    pub fn plan_space(
        &self,
        client: &Hist,
        repo: &Repository,
        cap: usize,
    ) -> Result<Vec<Plan>, PlanSpaceExceeded> {
        let (plans, _) = surviving_plans(client, repo, &BTreeMap::new(), cap)?;
        Ok(plans.into_iter().collect())
    }
}

/// One-shot compositional synthesis against a fresh store: the path
/// behind [`crate::verify::synthesize_with`] when
/// `opts.engine == Engine::Compositional` and no long-lived store is
/// supplied.
///
/// # Errors
///
/// As [`ProductStore::synthesize`].
pub fn synthesize_one_shot(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    opts: &SynthesisOptions,
    shared: Option<&VerifyCache>,
) -> Result<Synthesis, VerifyError> {
    ProductStore::with_capacity(1).synthesize(client, repo, registry, opts, shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{synthesize, SynthesisOptions};
    use sufs_hexpr::builder::*;

    fn client2() -> Hist {
        Hist::seq_all((0..2).map(|i| {
            request(
                i as u32 + 1,
                None,
                seq([send("q", eps()), offer([("a", eps())])]),
            )
        }))
    }

    fn mixed_repo() -> Repository {
        let mut repo = Repository::new();
        for i in 0..2 {
            repo.publish(format!("good{i}"), recv("q", choose([("a", eps())])));
        }
        for i in 0..2 {
            repo.publish(format!("bad{i}"), recv("q", choose([("b", eps())])));
        }
        repo
    }

    #[test]
    fn product_matches_enumerative_valid_set() {
        let client = client2();
        let repo = mixed_repo();
        let registry = PolicyRegistry::new();
        let opts = SynthesisOptions::default();
        let enumerative = synthesize(&client, &repo, &registry, &opts).unwrap();
        let store = ProductStore::new();
        let compositional = store
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        let expected: Vec<_> = enumerative.report.valid_plans().collect();
        let got: Vec<_> = compositional.report.valid_plans().collect();
        assert_eq!(expected, got);
        assert_eq!(compositional.stats.engine, Engine::Compositional);
        // Pruning cut the bad-binding candidates during construction.
        assert_eq!(compositional.report.len(), 4); // 2² survivors of 4²
        assert!(compositional.stats.prune_active);
        let info = compositional.stats.product.unwrap();
        assert!(!info.reused);
        assert_eq!(info.admissible_edges, 4); // 2 requests × 2 good
        assert_eq!(info.total_edges, 8); // 2 requests × 4 services
    }

    #[test]
    fn unchanged_state_reads_off_without_patching() {
        let client = client2();
        let repo = mixed_repo();
        let registry = PolicyRegistry::new();
        let opts = SynthesisOptions::default();
        let store = ProductStore::new();
        store
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        let again = store
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        let info = again.stats.product.unwrap();
        assert!(info.reused);
        assert_eq!(info.patched, 0);
        let stats = store.stats();
        assert_eq!((stats.builds, stats.patches, stats.reads), (1, 0, 1));
    }

    #[test]
    fn publish_patches_only_the_touched_region() {
        let client = client2();
        let mut repo = mixed_repo();
        let registry = PolicyRegistry::new();
        let opts = SynthesisOptions::default();
        let store = ProductStore::new();
        store
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        repo.publish("good2", recv("q", choose([("a", eps())])));
        let patched = store
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        let info = patched.stats.product.unwrap();
        assert!(info.reused);
        assert_eq!(info.patched, 1);
        assert_eq!(patched.report.len(), 9); // 3² survivors
                                             // Byte-identical to a cold rebuild.
        let cold = ProductStore::new()
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        assert_eq!(cold.report.verdicts(), patched.report.verdicts());
        assert_eq!(store.stats().patches, 1);
    }

    #[test]
    fn retract_drops_the_plans_binding_the_location() {
        let client = client2();
        let mut repo = mixed_repo();
        let registry = PolicyRegistry::new();
        let opts = SynthesisOptions::default();
        let store = ProductStore::new();
        store
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        repo.retract(&Location::new("good1"));
        let patched = store
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        assert_eq!(patched.report.len(), 1); // only good0ʳ survives
        let cold = ProductStore::new()
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        assert_eq!(cold.report.verdicts(), patched.report.verdicts());
    }

    #[test]
    fn store_capacity_evicts_least_recent() {
        let repo = mixed_repo();
        let registry = PolicyRegistry::new();
        let opts = SynthesisOptions::default();
        let store = ProductStore::with_capacity(1);
        store
            .synthesize(&client2(), &repo, &registry, &opts, None)
            .unwrap();
        let other = request(9u32, None, seq([send("q", eps()), offer([("a", eps())])]));
        store
            .synthesize(&other, &repo, &registry, &opts, None)
            .unwrap();
        let stats = store.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.builds, 2);
    }

    #[test]
    fn plan_space_matches_enumeration() {
        let client = client2();
        let repo = mixed_repo();
        let store = ProductStore::new();
        let via_product = store.plan_space(&client, &repo, 1000).unwrap();
        let direct = crate::plans::enumerate_plans(&client, &repo, 1000).unwrap();
        assert_eq!(via_product, direct);
        assert_eq!(via_product.len(), 16);
    }

    #[test]
    fn cap_counts_distinct_surviving_candidates() {
        let client = client2();
        let repo = mixed_repo();
        let registry = PolicyRegistry::new();
        let opts = SynthesisOptions {
            plan_cap: 3, // 4 survivors exist
            ..SynthesisOptions::default()
        };
        let err = ProductStore::new()
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap_err();
        assert!(matches!(err, VerifyError::PlanSpace(_)));
    }
}
