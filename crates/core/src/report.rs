//! Verification reports: valid plans and per-plan diagnoses.

use std::fmt;

use crate::verify::PlanVerdict;
use sufs_net::Plan;

/// The outcome of verifying every candidate plan of a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    verdicts: Vec<PlanVerdict>,
}

impl VerifyReport {
    /// Wraps the per-plan verdicts.
    pub fn new(verdicts: Vec<PlanVerdict>) -> Self {
        VerifyReport { verdicts }
    }

    /// All verdicts, one per candidate plan.
    pub fn verdicts(&self) -> &[PlanVerdict] {
        &self.verdicts
    }

    /// The valid plans: executions under any of these need no run-time
    /// monitor (§5).
    pub fn valid_plans(&self) -> impl Iterator<Item = &Plan> {
        self.verdicts
            .iter()
            .filter(|v| v.is_valid())
            .map(|v| &v.plan)
    }

    /// The rejected verdicts, each carrying its violations.
    pub fn rejected(&self) -> impl Iterator<Item = &PlanVerdict> {
        self.verdicts.iter().filter(|v| !v.is_valid())
    }

    /// The number of candidate plans examined.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Returns `true` if no candidate plan exists at all.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Returns `true` if at least one plan is valid.
    pub fn has_valid_plan(&self) -> bool {
        self.verdicts.iter().any(PlanVerdict::is_valid)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let valid = self.valid_plans().count();
        writeln!(
            f,
            "examined {} candidate plan(s): {} valid, {} rejected",
            self.len(),
            valid,
            self.len() - valid
        )?;
        for v in &self.verdicts {
            if v.is_valid() {
                writeln!(f, "  ✓ {}", v.plan)?;
            } else {
                writeln!(f, "  ✗ {}", v.plan)?;
                for violation in &v.violations {
                    writeln!(f, "      - {violation}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::Violation;
    use sufs_hexpr::RequestId;

    fn verdict(plan: Plan, valid: bool) -> PlanVerdict {
        PlanVerdict {
            plan,
            violations: if valid {
                vec![]
            } else {
                vec![Violation::UnboundRequest {
                    request: RequestId::new(1),
                }]
            },
        }
    }

    #[test]
    fn partitions_valid_and_rejected() {
        let report = VerifyReport::new(vec![
            verdict(Plan::new().with(1u32, "a"), true),
            verdict(Plan::new().with(1u32, "b"), false),
        ]);
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        assert!(report.has_valid_plan());
        assert_eq!(report.valid_plans().count(), 1);
        assert_eq!(report.rejected().count(), 1);
        assert_eq!(report.verdicts().len(), 2);
    }

    #[test]
    fn display_lists_reasons() {
        let report = VerifyReport::new(vec![
            verdict(Plan::new().with(1u32, "a"), true),
            verdict(Plan::new().with(1u32, "b"), false),
        ]);
        let s = report.to_string();
        assert!(s.contains("1 valid, 1 rejected"));
        assert!(s.contains("✓ {r1↦a}"));
        assert!(s.contains("✗ {r1↦b}"));
        assert!(s.contains("not bound"));
    }

    #[test]
    fn empty_report() {
        let report = VerifyReport::new(vec![]);
        assert!(report.is_empty());
        assert!(!report.has_valid_plan());
    }
}
