//! Scenario files: a self-contained textual format bundling policies,
//! clients and a service repository, used by the `sufs` command-line
//! tool and handy for tests.
//!
//! ```text
//! // Fig. 1's policy as text. `x0`, `x1`, … name event arguments;
//! // bare identifiers in guards name the policy's formal parameters.
//! policy hotel(bl, p, t) {
//!   start q1;
//!   offending q6;
//!   q1 -- sgn(x0) if x0 in bl     -> q6;
//!   q1 -- sgn(x0) if x0 not_in bl -> q2;
//!   q2 -- p(x0)   if x0 <= p      -> q3;
//!   q2 -- p(x0)   if x0 > p       -> q4;
//!   q4 -- ta(x0)  if x0 >= t      -> q5;
//!   q4 -- ta(x0)  if x0 < t       -> q6;
//! }
//!
//! // Clients and services contain ordinary history-expression syntax.
//! client c1 { open 1 phi hotel({1},45,100) { int[req -> eps] } }
//! service br { ext[req -> eps] }
//! service scarce cap 1 { ext[q -> int[a -> eps]] }   // bounded
//! ```
//!
//! States are declared implicitly by use; `--  * ->` is a wildcard
//! transition on any event; guards combine with `and`, `or`, `not` and
//! parentheses.

use std::collections::BTreeMap;
use std::fmt;

use sufs_hexpr::{parse_hist, Hist, Location};
use sufs_net::{FaultPlan, Repository};
use sufs_policy::{CmpOp, Guard, Operand, PolicyRegistry, UsageBuilder};

/// A position in a scenario source text: byte offset plus 1-based line
/// and column. This is the location type shared by parse errors and
/// lint diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SrcPos {
    /// Byte offset into the source text.
    pub offset: usize,
    /// 1-based line number (0 when unknown).
    pub line: usize,
    /// 1-based column number in characters (0 when unknown).
    pub col: usize,
}

impl SrcPos {
    /// The position of the start of the text.
    pub fn start() -> SrcPos {
        SrcPos {
            offset: 0,
            line: 1,
            col: 1,
        }
    }

    /// Computes line and column for a byte offset into `input`.
    pub fn from_offset(input: &str, offset: usize) -> SrcPos {
        let offset = offset.min(input.len());
        let before = &input[..offset];
        let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let col = before[line_start..].chars().count() + 1;
        SrcPos { offset, line, col }
    }
}

impl fmt::Display for SrcPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "byte {}", self.offset)
        }
    }
}

/// Source positions of the declarations of a parsed scenario, keyed by
/// declared name. Scenarios assembled programmatically leave this empty;
/// consumers fall back to [`SrcPos::start`].
#[derive(Debug, Clone, Default)]
pub struct SpanTable {
    /// `policy` declarations by policy name.
    pub policies: BTreeMap<String, SrcPos>,
    /// `client` declarations by client name.
    pub clients: BTreeMap<String, SrcPos>,
    /// `service` declarations by location name.
    pub services: BTreeMap<String, SrcPos>,
}

/// A parsed scenario: policies, clients, the repository, and optional
/// quantitative budgets.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// The policy registry with every `policy` definition.
    pub registry: PolicyRegistry,
    /// The named clients, in declaration order.
    pub clients: Vec<(String, Hist)>,
    /// The repository of `service` declarations.
    pub repository: Repository,
    /// Quantitative budgets (`budget` declarations), in order.
    pub budgets: Vec<sufs_policy::cost::CostBound>,
    /// The fault-injection plan (`faults` block), if declared.
    pub faults: Option<FaultPlan>,
    /// Source positions of the declarations, for diagnostics.
    pub spans: SpanTable,
}

impl Scenario {
    /// Finds a client by name.
    pub fn client(&self, name: &str) -> Option<&Hist> {
        self.clients.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// A scenario parse error with a byte offset and, when produced by
/// [`parse_scenario`], a resolved line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending token (0 until located).
    pub line: usize,
    /// 1-based column of the offending token (0 until located).
    pub col: usize,
}

impl ScenarioError {
    fn at(offset: usize, message: impl Into<String>) -> ScenarioError {
        ScenarioError {
            offset,
            message: message.into(),
            line: 0,
            col: 0,
        }
    }

    fn locate(mut self, input: &str) -> ScenarioError {
        let pos = SrcPos::from_offset(input, self.offset);
        self.line = pos.line;
        self.col = pos.col;
        self
    }

    /// The error position as a [`SrcPos`].
    pub fn pos(&self) -> SrcPos {
        SrcPos {
            offset: self.offset,
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "scenario error at line {}:{}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(
                f,
                "scenario error at byte {}: {}",
                self.offset, self.message
            )
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Parses a scenario file.
///
/// # Errors
///
/// Returns a [`ScenarioError`] on syntax errors, ill-formed embedded
/// history expressions, or ill-formed policy automata.
pub fn parse_scenario(input: &str) -> Result<Scenario, ScenarioError> {
    parse_scenario_inner(input).map_err(|e| e.locate(input))
}

fn parse_scenario_inner(input: &str) -> Result<Scenario, ScenarioError> {
    let mut p = P { input, pos: 0 };
    let mut scenario = Scenario::default();
    loop {
        p.skip_ws();
        if p.pos >= p.input.len() {
            break;
        }
        let kw = p.ident()?;
        let decl_pos = SrcPos::from_offset(input, p.peek_pos());
        match kw.as_str() {
            "policy" => {
                let automaton = parse_policy(&mut p)?;
                scenario
                    .spans
                    .policies
                    .insert(automaton.name().to_owned(), decl_pos);
                scenario.registry.register(automaton);
            }
            "budget" => {
                scenario.budgets.push(parse_budget(&mut p)?);
            }
            "faults" => {
                let plan = parse_faults(&mut p)?;
                scenario.faults = Some(plan);
            }
            "client" => {
                let name = p.ident()?;
                let body = p.braced_block()?;
                let h = parse_hist(body.text).map_err(|e| {
                    ScenarioError::at(
                        body.offset + e.offset,
                        format!("in client {name}: {}", e.message),
                    )
                })?;
                sufs_hexpr::wf::check(&h).map_err(|e| {
                    ScenarioError::at(body.offset, format!("in client {name}: {e}"))
                })?;
                scenario.spans.clients.insert(name.clone(), decl_pos);
                scenario.clients.push((name, h));
            }
            "service" => {
                let name = p.ident()?;
                let cap = if p.eat_kw("cap") {
                    Some(p.nat()?)
                } else {
                    None
                };
                let body = p.braced_block()?;
                let h = parse_hist(body.text).map_err(|e| {
                    ScenarioError::at(
                        body.offset + e.offset,
                        format!("in service {name}: {}", e.message),
                    )
                })?;
                let publish = match cap {
                    Some(c) => {
                        scenario
                            .repository
                            .try_publish_bounded(Location::new(name.clone()), h, c)
                    }
                    None => scenario
                        .repository
                        .try_publish(Location::new(name.clone()), h),
                };
                publish.map_err(|e| ScenarioError::at(body.offset, e.to_string()))?;
                scenario.spans.services.insert(name, decl_pos);
            }
            other => {
                return Err(ScenarioError::at(
                    p.pos,
                    format!(
                        "expected `policy`, `budget`, `client`, `service` or `faults`, \
                         found `{other}`"
                    ),
                ))
            }
        }
    }
    // A budget may attach to a name with no qualitative definition of
    // its own; register a trivially satisfied automaton so framings on
    // that name resolve during validity checking.
    for b in &scenario.budgets {
        if scenario.registry.get(b.policy.name()).is_none() {
            let mut builder = UsageBuilder::new(b.policy.name(), Vec::<String>::new());
            builder.state();
            scenario
                .registry
                .register(builder.build().expect("trivial automaton is well-formed"));
        }
    }
    Ok(scenario)
}

struct Block<'a> {
    text: &'a str,
    offset: usize,
}

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ScenarioError> {
        Err(ScenarioError::at(self.pos, message))
    }

    /// The position of the next token (whitespace and comments skipped).
    fn peek_pos(&mut self) -> usize {
        self.skip_ws();
        self.pos
    }

    fn skip_ws(&mut self) {
        let bytes = self.input.as_bytes();
        loop {
            while self.pos < bytes.len() && (bytes[self.pos] as char).is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.input[self.pos..].starts_with("//") {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) -> Result<String, ScenarioError> {
        self.skip_ws();
        let bytes = self.input.as_bytes();
        let start = self.pos;
        if self.pos < bytes.len()
            && ((bytes[self.pos] as char).is_ascii_alphabetic() || bytes[self.pos] == b'_')
        {
            while self.pos < bytes.len()
                && ((bytes[self.pos] as char).is_ascii_alphanumeric() || bytes[self.pos] == b'_')
            {
                self.pos += 1;
            }
            Ok(self.input[start..self.pos].to_owned())
        } else {
            self.err("expected identifier")
        }
    }

    fn nat(&mut self) -> Result<usize, ScenarioError> {
        self.skip_ws();
        let bytes = self.input.as_bytes();
        let start = self.pos;
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected a number");
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| ScenarioError::at(start, "number out of range"))
    }

    fn int(&mut self) -> Result<i64, ScenarioError> {
        self.skip_ws();
        let bytes = self.input.as_bytes();
        let start = self.pos;
        if self.pos < bytes.len() && bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && bytes[start] == b'-') {
            return self.err("expected an integer");
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| ScenarioError::at(start, "integer out of range"))
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(kw) {
            let after = self.input[self.pos + kw.len()..].chars().next();
            if after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                return false;
            }
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), ScenarioError> {
        if self.eat(tok) {
            Ok(())
        } else {
            self.err(format!("expected `{tok}`"))
        }
    }

    /// Consumes a `{ … }` block with balanced inner braces, returning
    /// the inner text.
    fn braced_block(&mut self) -> Result<Block<'a>, ScenarioError> {
        self.expect("{")?;
        let start = self.pos;
        let bytes = self.input.as_bytes();
        let mut depth = 1usize;
        let mut i = self.pos;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        let text = &self.input[start..i];
                        self.pos = i + 1;
                        return Ok(Block {
                            text,
                            offset: start,
                        });
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.err("unbalanced `{`")
    }
}

/// Parses a quantitative budget declaration:
///
/// ```text
/// budget <policy-name> {
///   bound 100;
///   charge by_arg 0;     // the event `charge` costs its first argument
///   spend flat 10;       // the event `spend` costs 10 per occurrence
/// }
/// ```
///
/// The policy name refers to a framing/session policy whose activation
/// windows are charged; it need not have a `policy` definition of its
/// own (a budget can attach to a purely qualitative policy, or to a
/// name only used for framing).
fn parse_budget(p: &mut P<'_>) -> Result<sufs_policy::cost::CostBound, ScenarioError> {
    use sufs_policy::cost::{CostBound, CostModel};
    let name = p.ident()?;
    p.expect("{")?;
    let mut model = CostModel::new();
    let mut bound: Option<u64> = None;
    loop {
        p.skip_ws();
        if p.eat("}") {
            break;
        }
        let word = p.ident()?;
        if word == "bound" {
            bound = Some(p.nat()? as u64);
            p.expect(";")?;
            continue;
        }
        let kind = p.ident()?;
        match kind.as_str() {
            "flat" => {
                let c = p.nat()? as u64;
                model = model.flat(&word, c);
            }
            "by_arg" => {
                let idx = p.nat()?;
                model = model.by_arg(&word, idx);
            }
            other => {
                return p.err(format!(
                    "expected `flat` or `by_arg` after event `{word}`, found `{other}`"
                ))
            }
        }
        p.expect(";")?;
    }
    let bound =
        bound.ok_or_else(|| ScenarioError::at(p.pos, format!("budget {name} has no `bound`")))?;
    Ok(CostBound {
        policy: sufs_hexpr::PolicyRef::nullary(name),
        model,
        bound,
    })
}

/// Parses a fault-injection block:
///
/// ```text
/// faults {
///   crash 0.01;        // per-step crash probability
///   drop 0.05;         // per-synch message-loss probability
///   revoke 0.002;      // per-step capacity-revocation probability
///   stall 0.02;        // per-step stall probability
///   stall_steps 4;     // how long a stalled service stays frozen
///   max_crashes 1;     // cap on total crashes per run
///   timeout 20;        // blocked-step budget before the first retry
///   retries 2;         // retries (with doubling budget) before giving up
///   seed 7;            // the deterministic fault-schedule seed
/// }
/// ```
///
/// Every setting is optional; rates default to zero, so an empty block
/// arms the timeout machinery without injecting anything. The settings
/// and their validation are shared with the command line's
/// `--faults key=value,…` spec ([`FaultPlan::parse`]).
fn parse_faults(p: &mut P<'_>) -> Result<FaultPlan, ScenarioError> {
    p.expect("{")?;
    let mut spec = String::new();
    loop {
        p.skip_ws();
        if p.eat("}") {
            break;
        }
        let key = p.ident()?;
        p.skip_ws();
        let start = p.pos;
        let bytes = p.input.as_bytes();
        while p.pos < bytes.len()
            && (bytes[p.pos].is_ascii_digit() || bytes[p.pos] == b'.' || bytes[p.pos] == b'-')
        {
            p.pos += 1;
        }
        if p.pos == start {
            return p.err(format!("expected a number after `{key}`"));
        }
        let value = &p.input[start..p.pos];
        p.expect(";")?;
        if !spec.is_empty() {
            spec.push(',');
        }
        spec.push_str(&format!("{key}={value}"));
    }
    FaultPlan::parse(&spec).map_err(|e| ScenarioError::at(p.pos, format!("in faults block: {e}")))
}

/// Parses a `policy name(params) { … }` definition into a usage
/// automaton.
fn parse_policy(p: &mut P<'_>) -> Result<sufs_policy::UsageAutomaton, ScenarioError> {
    let name = p.ident()?;
    let mut params = Vec::new();
    if p.eat("(") && !p.eat(")") {
        loop {
            params.push(p.ident()?);
            if !p.eat(",") {
                break;
            }
        }
        p.expect(")")?;
    }
    p.expect("{")?;
    let mut builder = UsageBuilder::new(name, params.clone());
    let mut states: BTreeMap<String, usize> = BTreeMap::new();
    let mut start: Option<String> = None;
    let mut offending: Vec<String> = Vec::new();
    let mut transitions: Vec<(String, Option<String>, Guard, String)> = Vec::new();
    loop {
        p.skip_ws();
        if p.eat("}") {
            break;
        }
        let word = p.ident()?;
        match word.as_str() {
            "start" => {
                start = Some(p.ident()?);
                p.expect(";")?;
            }
            "offending" => {
                offending.push(p.ident()?);
                while !p.eat(";") {
                    offending.push(p.ident()?);
                }
            }
            from => {
                let from = from.to_owned();
                p.expect("--")?;
                // event pattern: `*` or `name(x0)` / bare `name`
                let event = if p.eat("*") {
                    None
                } else {
                    let ev = p.ident()?;
                    if p.eat("(") {
                        // argument placeholders are positional; names are
                        // documentation only
                        if !p.eat(")") {
                            loop {
                                p.ident()?;
                                if !p.eat(",") {
                                    break;
                                }
                            }
                            p.expect(")")?;
                        }
                    }
                    Some(ev)
                };
                let guard = if p.eat_kw("if") {
                    parse_guard(p, &params)?
                } else {
                    Guard::True
                };
                p.expect("->")?;
                let to = p.ident()?;
                p.expect(";")?;
                transitions.push((from, event, guard, to));
            }
        }
    }
    // Materialise states in first-mention order: start, then the rest.
    let state_id = |builder: &mut UsageBuilder, states: &mut BTreeMap<String, usize>, n: &str| {
        if let Some(&q) = states.get(n) {
            q
        } else {
            let q = builder.state();
            states.insert(n.to_owned(), q);
            q
        }
    };
    let start_name =
        start.ok_or_else(|| ScenarioError::at(p.pos, "policy has no `start` state"))?;
    let q0 = state_id(&mut builder, &mut states, &start_name);
    builder.start(q0);
    for (from, event, guard, to) in transitions {
        let qf = state_id(&mut builder, &mut states, &from);
        let qt = state_id(&mut builder, &mut states, &to);
        match event {
            Some(ev) => {
                builder.on(qf, ev, guard, qt);
            }
            None => {
                builder.on_any(qf, guard, qt);
            }
        }
    }
    for o in offending {
        let q = state_id(&mut builder, &mut states, &o);
        builder.offending(q);
    }
    builder
        .build()
        .map_err(|e| ScenarioError::at(p.pos, e.to_string()))
}

/// `guard := term (('and'|'or') term)*`, left-associative, `and`/`or`
/// not mixed without parentheses (rejected for clarity).
fn parse_guard(p: &mut P<'_>, params: &[String]) -> Result<Guard, ScenarioError> {
    let first = parse_guard_term(p, params)?;
    let mut acc = first;
    let mut mode: Option<bool> = None; // Some(true)=and, Some(false)=or
    loop {
        let is_and = if p.eat_kw("and") {
            true
        } else if p.eat_kw("or") {
            false
        } else {
            return Ok(acc);
        };
        if let Some(m) = mode {
            if m != is_and {
                return p.err("mixing `and` and `or` requires parentheses");
            }
        }
        mode = Some(is_and);
        let rhs = parse_guard_term(p, params)?;
        acc = if is_and { acc.and(rhs) } else { acc.or(rhs) };
    }
}

fn parse_guard_term(p: &mut P<'_>, params: &[String]) -> Result<Guard, ScenarioError> {
    if p.eat_kw("not") {
        return Ok(parse_guard_term(p, params)?.not());
    }
    if p.eat("(") {
        let g = parse_guard(p, params)?;
        p.expect(")")?;
        return Ok(g);
    }
    // xN <op> operand
    let lhs = p.ident()?;
    let Some(idx) = lhs.strip_prefix('x').and_then(|n| n.parse::<usize>().ok()) else {
        return p.err(format!(
            "guard left-hand side must be an argument placeholder x0, x1, …, found `{lhs}`"
        ));
    };
    p.skip_ws();
    if p.eat_kw("in") {
        let set = p.ident()?;
        return Ok(Guard::InSet(idx, set));
    }
    if p.eat_kw("not_in") {
        let set = p.ident()?;
        return Ok(Guard::NotInSet(idx, set));
    }
    let op = if p.eat("<=") {
        CmpOp::Le
    } else if p.eat(">=") {
        CmpOp::Ge
    } else if p.eat("==") {
        CmpOp::Eq
    } else if p.eat("!=") {
        CmpOp::Ne
    } else if p.eat("<") {
        CmpOp::Lt
    } else if p.eat(">") {
        CmpOp::Gt
    } else {
        return p.err("expected a comparison operator or `in`/`not_in`");
    };
    // operand: integer literal, parameter name, or bare identifier
    // (a string literal).
    p.skip_ws();
    let c = p.input[p.pos..].chars().next();
    let operand = match c {
        Some(c) if c.is_ascii_digit() || c == '-' => Operand::Lit(sufs_hexpr::Value::Int(p.int()?)),
        _ => {
            let name = p.ident()?;
            if params.iter().any(|q| q == &name) {
                Operand::param(name)
            } else {
                Operand::Lit(sufs_hexpr::Value::Str(name))
            }
        }
    };
    Ok(Guard::Cmp(idx, op, operand))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::{Event, ParamValue, PolicyRef};

    const HOTEL_SCENARIO: &str = r#"
        // Fig. 1 as text.
        policy hotel(bl, p, t) {
          start q1;
          offending q6;
          q1 -- sgn(x0) if x0 in bl     -> q6;
          q1 -- sgn(x0) if x0 not_in bl -> q2;
          q2 -- p(x0)   if x0 <= p      -> q3;
          q2 -- p(x0)   if x0 > p       -> q4;
          q4 -- ta(x0)  if x0 >= t      -> q5;
          q4 -- ta(x0)  if x0 < t       -> q6;
        }

        client c1 {
          open 1 phi hotel({1},45,100) {
            int[req -> eps]; ext[cobo -> int[pay -> eps] | noav -> eps]
          }
        }

        service br {
          ext[req -> eps];
          open 3 { int[idc -> eps]; ext[bok -> eps | una -> eps] };
          int[cobo -> ext[pay -> eps] | noav -> eps]
        }

        service s3 {
          #sgn(3); #p(90); #ta(100);
          ext[idc -> int[bok -> eps | una -> eps]]
        }
    "#;

    #[test]
    fn parses_the_hotel_scenario() {
        let sc = parse_scenario(HOTEL_SCENARIO).unwrap();
        assert_eq!(sc.clients.len(), 1);
        assert_eq!(sc.repository.len(), 2);
        assert!(sc.client("c1").is_some());
        assert!(sc.client("nope").is_none());
        assert!(sc.registry.get("hotel").is_some());
    }

    #[test]
    fn textual_policy_matches_the_catalog_one() {
        let sc = parse_scenario(HOTEL_SCENARIO).unwrap();
        let phi1 = PolicyRef::new(
            "hotel",
            [
                ParamValue::set([1i64]),
                ParamValue::int(45),
                ParamValue::int(100),
            ],
        );
        let textual = sc.registry.instantiate(&phi1).unwrap();
        let mut catalog_reg = PolicyRegistry::new();
        catalog_reg.register(sufs_policy::catalog::hotel_policy());
        let reference = catalog_reg.instantiate(&phi1).unwrap();

        let traces: Vec<Vec<Event>> = vec![
            vec![Event::new("sgn", [1i64])],
            vec![
                Event::new("sgn", [4i64]),
                Event::new("p", [50i64]),
                Event::new("ta", [90i64]),
            ],
            vec![
                Event::new("sgn", [3i64]),
                Event::new("p", [90i64]),
                Event::new("ta", [100i64]),
            ],
            vec![Event::new("sgn", [2i64]), Event::new("p", [10i64])],
        ];
        for t in traces {
            assert_eq!(
                textual.forbids(t.iter()),
                reference.forbids(t.iter()),
                "disagreement on {t:?}"
            );
        }
    }

    #[test]
    fn scenario_verifies_end_to_end() {
        let sc = parse_scenario(HOTEL_SCENARIO).unwrap();
        let report =
            crate::verify::verify(sc.client("c1").unwrap(), &sc.repository, &sc.registry).unwrap();
        // With only br and s3 published, the single valid plan is
        // {r1↦br, r3↦s3}.
        assert_eq!(report.valid_plans().count(), 1);
    }

    #[test]
    fn budgets_parse_and_check() {
        use sufs_net::symbolic::{symbolic_successors, SymState};
        use sufs_policy::cost::{check_cost_bound_lts, CostVerdict};
        let src = r#"
            budget wallet { bound 20; charge by_arg 0; fee flat 5; }
            client buyer {
              open 1 phi wallet { int[buy -> eps]; ext[done -> eps] }
            }
            service shop { ext[buy -> #fee; #charge(10); int[done -> eps]] }
            service pricey { ext[buy -> #charge(30); int[done -> eps]] }
        "#;
        let sc = parse_scenario(src).unwrap();
        assert_eq!(sc.budgets.len(), 1);
        assert_eq!(sc.budgets[0].bound, 20);
        // The budget-only policy resolves (trivial automaton registered).
        assert!(sc.registry.get("wallet").is_some());
        let client = sc.client("buyer").unwrap().clone();
        let check = |loc: &str| {
            let plan = sufs_net::Plan::new().with(1u32, loc);
            check_cost_bound_lts(
                SymState::initial("client", client.clone()),
                |s| symbolic_successors(s, &plan, &sc.repository),
                &sc.budgets[0],
                1 << 16,
            )
            .unwrap()
        };
        assert_eq!(check("shop"), CostVerdict::Within { worst: 15 });
        assert_eq!(check("pricey"), CostVerdict::Exceeded { witness: Some(30) });
    }

    #[test]
    fn faults_block_parses() {
        let src = r#"
            faults {
              crash 0.01;
              drop 0.05;
              stall 0.1;
              stall_steps 6;
              max_crashes 2;
              timeout 20;
              retries 2;
              seed 7;
            }
            client c { open 1 { int[req -> eps] } }
            service s { ext[req -> eps] }
        "#;
        let sc = parse_scenario(src).unwrap();
        let f = sc.faults.expect("faults block parsed");
        assert_eq!(f.seed, 7);
        assert_eq!(f.stall_steps, 6);
        assert_eq!(f.max_crashes, 2);
        assert_eq!(f.timeout_steps, 20);
        assert_eq!(f.max_retries, 2);
        assert!((f.crash_rate - 0.01).abs() < 1e-12);
        assert!((f.drop_rate - 0.05).abs() < 1e-12);
        assert!((f.stall_rate - 0.1).abs() < 1e-12);
        // An empty block arms the machinery with all-zero rates.
        let sc = parse_scenario("faults { }").unwrap();
        let f = sc.faults.expect("empty faults block parsed");
        assert_eq!(f.crash_rate, 0.0);
    }

    #[test]
    fn faults_block_rejects_bad_settings() {
        let err = parse_scenario("faults { crash 1.5; }").unwrap_err();
        assert!(
            err.message.contains("outside [0, 1]"),
            "got: {}",
            err.message
        );
        let err = parse_scenario("faults { flux 0.1; }").unwrap_err();
        assert!(
            err.message.contains("unknown fault setting"),
            "got: {}",
            err.message
        );
        let err = parse_scenario("faults { crash; }").unwrap_err();
        assert!(
            err.message.contains("expected a number"),
            "got: {}",
            err.message
        );
    }

    #[test]
    fn budget_without_bound_rejected() {
        let err = parse_scenario("budget w { fee flat 1; }").unwrap_err();
        assert!(err.message.contains("no `bound`"));
    }

    #[test]
    fn bounded_services_parse() {
        let sc = parse_scenario("service x cap 2 { ext[a -> eps] }").unwrap();
        assert_eq!(sc.repository.capacity(&Location::new("x")), Some(Some(2)));
    }

    #[test]
    fn wildcard_and_boolean_guards() {
        let src = r#"
            policy strange(limit) {
              start s0;
              offending bad;
              s0 -- * if x0 > limit and x0 < 100 -> bad;
              s0 -- probe(x0) if not (x0 == ok or x0 == fine) -> bad;
            }
        "#;
        let sc = parse_scenario(src).unwrap();
        let inst = sc
            .registry
            .instantiate(&PolicyRef::new("strange", [ParamValue::int(10)]))
            .unwrap();
        assert!(inst.forbids([Event::new("anything", [50i64])].iter()));
        assert!(inst.respects([Event::new("anything", [150i64])].iter()));
        assert!(inst.forbids([Event::new("probe", [sufs_hexpr::Value::str("meh")])].iter()));
        assert!(inst.respects([Event::new("probe", [sufs_hexpr::Value::str("ok")])].iter()));
    }

    #[test]
    fn error_reporting() {
        assert!(parse_scenario("client x {")
            .unwrap_err()
            .to_string()
            .contains("unbalanced"));
        assert!(parse_scenario("widget w { }").is_err());
        assert!(parse_scenario("client c { mu h. h }").is_err()); // parses but…
        let err = parse_scenario("service s { mu h. h }").unwrap_err();
        assert!(err.message.contains("recursion"), "got: {}", err.message);
        let err = parse_scenario("policy p() { offending q; }").unwrap_err();
        assert!(err.message.contains("start"));
        let err = parse_scenario(
            "policy p(a) { start s; s -- e(x0) if x0 in a or x0 > 1 and x0 < 2 -> s; }",
        )
        .unwrap_err();
        assert!(err.message.contains("parentheses"));
    }
}
