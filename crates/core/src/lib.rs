//! The primary contribution of *Secure and Unfailing Services*: static
//! synthesis of **valid plans**.
//!
//! Given a client and a repository of published services, this crate
//! enumerates every candidate orchestration ([`plans`]), checks each for
//! security (validity of all reachable histories against the activated
//! policies) *and* compliance (every session eventually progresses, per
//! request via Theorem 1's product automaton and globally via symbolic
//! reachability), and returns the set of valid plans with counterexample
//! witnesses for the rejected ones ([`mod@verify`], [`report`]).
//!
//! Executing a network under a valid plan is guaranteed never to violate
//! a security policy and never to block on a missing communication —
//! so the run-time monitor can be switched off (§5). The `sufs-net`
//! schedulers and the workspace integration tests validate this claim
//! empirically on thousands of randomly scheduled executions.
//!
//! # Example
//!
//! ```
//! use sufs_core::verify::verify;
//! use sufs_hexpr::builder::*;
//! use sufs_net::Repository;
//! use sufs_policy::PolicyRegistry;
//!
//! // A client booking through request 1 and two candidate services.
//! let client = request(1, None, seq([
//!     send("req", eps()),
//!     offer([("ok", eps()), ("no", eps())]),
//! ]));
//! let mut repo = Repository::new();
//! repo.publish("reliable", recv("req", choose([("ok", eps()), ("no", eps())])));
//! repo.publish("flaky", recv("req", choose([("ok", eps()), ("later", eps())])));
//!
//! let report = verify(&client, &repo, &PolicyRegistry::new()).unwrap();
//! println!("{report}");
//! assert_eq!(report.valid_plans().count(), 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod discover;
pub mod multi;
pub mod plans;
pub mod pool;
pub mod product;
pub mod recovery;
pub mod report;
pub mod scenario;
pub mod verify;

pub use cache::{CacheStats, CompositionId, VerifyCache};
pub use discover::{discover, discover_matches, DiscoveryCandidate};
pub use multi::{find_joint_deadlock, verify_network, ClientSpec, JointDeadlock, NetworkReport};
pub use plans::{composed_requests, enumerate_plans, PlanSpaceExceeded};
pub use pool::WorkPool;
pub use product::{ProductInfo, ProductStats, ProductStore};
pub use recovery::{
    fallback_chain, fallback_chain_with_cap, recovery_table, recovery_table_with_cap,
};
pub use report::VerifyReport;
pub use verify::{
    synthesize, synthesize_with, verify, verify_plan, verify_plan_with, verify_with_cap, Engine,
    PlanVerdict, SynthStats, Synthesis, SynthesisOptions, VerifyError, Violation,
};
