//! Call-by-contract service discovery.
//!
//! The methodology the paper builds on (\[5\]: *call-by-contract for
//! service discovery, orchestration and recovery*) lets a client specify
//! the conversation it needs and asks the orchestrator to find services
//! whose contracts can carry it out. Discovery is compliance-driven:
//! a published service matches a request body `H₁` iff `H₁! ⊢ H₂!`.

use sufs_contract::{compliant, Contract, ContractError, StuckWitness};
use sufs_hexpr::{Hist, Location};
use sufs_net::Repository;

/// One discovery result: a matching service, or why a candidate was
/// rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryCandidate {
    /// The candidate's location.
    pub location: Location,
    /// `None` if compliant (a match); otherwise the counterexample.
    pub rejection: Option<StuckWitness>,
}

impl DiscoveryCandidate {
    /// Returns `true` if the candidate matches.
    pub fn matches(&self) -> bool {
        self.rejection.is_none()
    }
}

/// Finds every published service whose contract is compliant with the
/// given client-side conversation (e.g. a request body).
///
/// Results preserve the repository's location order; rejected candidates
/// carry their Theorem 1 counterexamples, which makes discovery
/// diagnosable ("why did nothing match?").
///
/// # Errors
///
/// Returns a [`ContractError`] if the conversation or a published
/// service does not project to a contract (ill-formed input).
///
/// # Examples
///
/// ```
/// use sufs_core::discover::discover;
/// use sufs_hexpr::builder::*;
/// use sufs_net::Repository;
///
/// let conversation = seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]);
/// let mut repo = Repository::new();
/// repo.publish("good", recv("req", choose([("ok", eps())])));
/// repo.publish("bad", recv("req", choose([("later", eps())])));
///
/// let results = discover(&conversation, &repo).unwrap();
/// let matches: Vec<_> = results.iter().filter(|c| c.matches()).collect();
/// assert_eq!(matches.len(), 1);
/// assert_eq!(matches[0].location.as_str(), "good");
/// ```
pub fn discover(
    conversation: &Hist,
    repo: &Repository,
) -> Result<Vec<DiscoveryCandidate>, ContractError> {
    let client_side = Contract::from_service(conversation)?;
    let mut out = Vec::with_capacity(repo.len());
    for (loc, service) in repo.iter() {
        let server_side = Contract::from_service(service)?;
        let result = compliant(&client_side, &server_side);
        out.push(DiscoveryCandidate {
            location: loc.clone(),
            rejection: result.witness().cloned(),
        });
    }
    Ok(out)
}

/// Only the matching locations, in repository order.
///
/// # Errors
///
/// As [`discover`].
pub fn discover_matches(
    conversation: &Hist,
    repo: &Repository,
) -> Result<Vec<Location>, ContractError> {
    Ok(discover(conversation, repo)?
        .into_iter()
        .filter(|c| c.matches())
        .map(|c| c.location)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::parse_hist;

    // The facade crate `sufs` is not a dependency of sufs-core, so the
    // Fig. 2 repository is rebuilt locally.
    fn fig2_repo() -> Repository {
        let mut repo = Repository::new();
        repo.publish(
            "br",
            parse_hist(
                "ext[req -> eps]; open 3 { int[idc -> eps]; ext[bok -> eps | una -> eps] }; \
                 int[cobo -> ext[pay -> eps] | noav -> eps]",
            )
            .unwrap(),
        );
        for (loc, id, p, ta, del) in [
            ("s1", 1, 45, 80, false),
            ("s2", 2, 70, 100, true),
            ("s3", 3, 90, 100, false),
            ("s4", 4, 50, 90, false),
        ] {
            let mut branches = vec![("bok", eps()), ("una", eps())];
            if del {
                branches.push(("del", eps()));
            }
            repo.publish(
                loc,
                seq([
                    ev("sgn", [id]),
                    ev("p", [p]),
                    ev("ta", [ta]),
                    recv("idc", choose(branches)),
                ]),
            );
        }
        repo
    }

    #[test]
    fn broker_discovery_finds_the_compliant_hotels() {
        let repo = fig2_repo();
        // The broker's request-3 conversation.
        let conv = seq([send("idc", eps()), offer([("bok", eps()), ("una", eps())])]);
        let matches = discover_matches(&conv, &repo).unwrap();
        let names: Vec<&str> = matches.iter().map(|l| l.as_str()).collect();
        assert_eq!(
            names,
            vec!["s1", "s3", "s4"],
            "S2 and the broker itself fail"
        );
        // S2's rejection carries the del witness.
        let all = discover(&conv, &repo).unwrap();
        let s2 = all.iter().find(|c| c.location.as_str() == "s2").unwrap();
        assert!(!s2.matches());
        assert!(s2.rejection.as_ref().unwrap().to_string().contains("del"));
    }

    #[test]
    fn empty_repository_discovers_nothing() {
        let conv = send("x", eps());
        assert!(discover_matches(&conv, &Repository::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn trivial_conversation_matches_everything() {
        // ε is compliant with every service (the client may stop).
        let repo = fig2_repo();
        let matches = discover_matches(&Hist::Eps, &repo).unwrap();
        assert_eq!(matches.len(), repo.len());
    }

    #[test]
    fn ill_formed_conversation_is_an_error() {
        let conv = Hist::mu("h", Hist::var("h"));
        assert!(discover(&conv, &fig2_repo()).is_err());
    }
}
