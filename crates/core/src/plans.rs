//! Plan enumeration: all ways of binding the requests of a composed
//! service to repository locations.
//!
//! Serving a client request may expose further requests (the selected
//! service opens its own sessions, as the broker does in §2), so
//! enumeration closes over newly exposed requests: a plan is *complete*
//! when every request reachable through its own bindings is bound.

use std::fmt;

use sufs_hexpr::requests::requests;
use sufs_hexpr::{Hist, RequestId};
use sufs_net::{Plan, Repository};

/// An error raised when the plan space is too large to enumerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSpaceExceeded {
    /// The configured cap.
    pub cap: usize,
}

impl fmt::Display for PlanSpaceExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "more than {} candidate plans", self.cap)
    }
}

impl std::error::Error for PlanSpaceExceeded {}

/// The default cap on enumerated plans.
pub const DEFAULT_PLAN_CAP: usize = 100_000;

/// Enumerates every complete plan for `client` over `repo`, up to `cap`
/// plans.
///
/// Requests exposed by selected services are bound too; a request
/// identifier is bound at most once (identifiers are globally unique per
/// the paper's assumption), so enumeration always terminates.
///
/// # Errors
///
/// Returns [`PlanSpaceExceeded`] if more than `cap` plans exist.
///
/// # Examples
///
/// ```
/// use sufs_core::plans::enumerate_plans;
/// use sufs_hexpr::builder::*;
/// use sufs_net::Repository;
///
/// let client = request(1, None, send("q", eps()));
/// let mut repo = Repository::new();
/// repo.publish("s1", recv("q", eps()));
/// repo.publish("s2", recv("q", eps()));
/// let plans = enumerate_plans(&client, &repo, 100).unwrap();
/// assert_eq!(plans.len(), 2); // r1 ↦ s1 or r1 ↦ s2
/// ```
pub fn enumerate_plans(
    client: &Hist,
    repo: &Repository,
    cap: usize,
) -> Result<Vec<Plan>, PlanSpaceExceeded> {
    let pending: Vec<RequestId> = requests(client).into_iter().map(|r| r.id).collect();
    let mut out = Vec::new();
    extend(Plan::new(), pending, repo, cap, &mut out)?;
    out.sort();
    out.dedup();
    Ok(out)
}

fn extend(
    plan: Plan,
    mut pending: Vec<RequestId>,
    repo: &Repository,
    cap: usize,
    out: &mut Vec<Plan>,
) -> Result<(), PlanSpaceExceeded> {
    // Drop requests already bound (shared identifiers bind once).
    while let Some(&r) = pending.first() {
        if plan.service_for(r).is_some() {
            pending.remove(0);
        } else {
            break;
        }
    }
    let Some(&r) = pending.first() else {
        if out.len() >= cap {
            return Err(PlanSpaceExceeded { cap });
        }
        out.push(plan);
        return Ok(());
    };
    let rest: Vec<RequestId> = pending[1..].to_vec();
    for (loc, service) in repo.iter() {
        let mut next_plan = plan.clone();
        next_plan.bind(r, loc.clone());
        let mut next_pending = rest.clone();
        for exposed in requests(service) {
            if next_plan.service_for(exposed.id).is_none() && !next_pending.contains(&exposed.id) {
                next_pending.push(exposed.id);
            }
        }
        extend(next_plan, next_pending, repo, cap, out)?;
    }
    Ok(())
}

/// The requests of the whole composed service under a plan: the client's
/// requests plus those exposed by every service the plan selects,
/// paired with the location bound to each (or `None` if unbound).
pub fn composed_requests(
    client: &Hist,
    plan: &Plan,
    repo: &Repository,
) -> Vec<(
    sufs_hexpr::requests::RequestInfo,
    Option<sufs_hexpr::Location>,
)> {
    let mut seen: Vec<RequestId> = Vec::new();
    let mut out = Vec::new();
    let mut frontier: Vec<Hist> = vec![client.clone()];
    while let Some(h) = frontier.pop() {
        for info in requests(&h) {
            if seen.contains(&info.id) {
                continue;
            }
            seen.push(info.id);
            let bound = plan.service_for(info.id).cloned();
            if let Some(loc) = &bound {
                if let Some(service) = repo.get(loc) {
                    frontier.push(service.clone());
                }
            }
            out.push((info, bound));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::Location;

    fn repo(pairs: &[(&str, Hist)]) -> Repository {
        let mut r = Repository::new();
        for (loc, h) in pairs {
            r.publish(*loc, h.clone());
        }
        r
    }

    #[test]
    fn no_requests_yields_empty_plan() {
        let plans = enumerate_plans(&ev0("a"), &Repository::new(), 10).unwrap();
        assert_eq!(plans, vec![Plan::new()]);
    }

    #[test]
    fn cartesian_product_over_independent_requests() {
        let client = Hist::seq(
            request(1, None, send("a", eps())),
            request(2, None, send("b", eps())),
        );
        let repo = repo(&[
            ("s1", recv("a", eps())),
            ("s2", recv("b", eps())),
            ("s3", recv("a", eps())),
        ]);
        let plans = enumerate_plans(&client, &repo, 100).unwrap();
        // 3 choices for r1 × 3 for r2.
        assert_eq!(plans.len(), 9);
        for p in &plans {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn nested_requests_are_closed_over() {
        // Client asks r1; the broker (a candidate for r1) asks r3.
        let client = request(1, None, send("q", eps()));
        let broker = Hist::seq(recv("q", eps()), request(3, None, send("w", eps())));
        let leafsrv = recv("w", eps());
        let repo = repo(&[("br", broker), ("leaf", leafsrv)]);
        let plans = enumerate_plans(&client, &repo, 100).unwrap();
        // r1↦br exposes r3 (2 choices); r1↦leaf leaves nothing exposed.
        // Total: 2 (r1↦br, r3↦{br,leaf}) + 1 (r1↦leaf) = 3.
        assert_eq!(plans.len(), 3);
        let with_broker: Vec<&Plan> = plans
            .iter()
            .filter(|p| p.service_for(sufs_hexpr::RequestId::new(1)) == Some(&Location::new("br")))
            .collect();
        assert_eq!(with_broker.len(), 2);
        for p in with_broker {
            assert!(p.service_for(sufs_hexpr::RequestId::new(3)).is_some());
        }
    }

    #[test]
    fn cap_is_enforced() {
        let client = Hist::seq(
            request(1, None, send("a", eps())),
            request(2, None, send("a", eps())),
        );
        let repo = repo(&[
            ("s1", recv("a", eps())),
            ("s2", recv("a", eps())),
            ("s3", recv("a", eps())),
        ]);
        let err = enumerate_plans(&client, &repo, 4).unwrap_err();
        assert_eq!(err, PlanSpaceExceeded { cap: 4 });
        assert!(err.to_string().contains('4'));
    }

    #[test]
    fn composed_requests_follow_bindings() {
        let client = request(1, None, send("q", eps()));
        let broker = Hist::seq(recv("q", eps()), request(3, None, send("w", eps())));
        let repo = repo(&[("br", broker), ("leaf", recv("w", eps()))]);
        let plan = Plan::new().with(1u32, "br").with(3u32, "leaf");
        let rs = composed_requests(&client, &plan, &repo);
        assert_eq!(rs.len(), 2);
        // An unbound nested request is reported with None.
        let partial = Plan::new().with(1u32, "br");
        let rs = composed_requests(&client, &partial, &repo);
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().any(|(i, b)| i.id.index() == 3 && b.is_none()));
    }

    #[test]
    fn empty_repository_binds_nothing() {
        let client = request(1, None, send("q", eps()));
        let plans = enumerate_plans(&client, &Repository::new(), 10).unwrap();
        assert!(plans.is_empty());
    }
}
