//! Plan enumeration: all ways of binding the requests of a composed
//! service to repository locations.
//!
//! Serving a client request may expose further requests (the selected
//! service opens its own sessions, as the broker does in §2), so
//! enumeration closes over newly exposed requests: a plan is *complete*
//! when every request reachable through its own bindings is bound.
//!
//! The search is organised around [`SearchNode`]s (a partial plan plus
//! the queue of requests still to bind) walked depth-first by an
//! explicit stack, so deep request chains cost O(n) queue work instead
//! of the former `Vec::remove(0)` quadratic shuffle, and a *prune* hook
//! can cut a whole subtree the moment a single binding is known bad —
//! the engine behind `verify::synthesize`'s interleaved
//! enumerate-and-verify mode. Distinct plans are deduplicated **during**
//! enumeration, so duplicates can never count toward the
//! [`PlanSpaceExceeded`] cap.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use sufs_hexpr::requests::requests;
use sufs_hexpr::{Hist, Location, RequestId};
use sufs_net::{Plan, Repository};

/// An error raised when the plan space is too large to enumerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSpaceExceeded {
    /// The configured cap.
    pub cap: usize,
}

impl fmt::Display for PlanSpaceExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "more than {} candidate plans", self.cap)
    }
}

impl std::error::Error for PlanSpaceExceeded {}

/// The default cap on enumerated plans.
pub const DEFAULT_PLAN_CAP: usize = 100_000;

/// A node of the plan search tree: a partial plan plus the requests
/// still waiting for a binding, in discovery order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SearchNode {
    /// The bindings committed so far.
    pub(crate) plan: Plan,
    /// Requests not yet bound (front = next to bind).
    pub(crate) pending: VecDeque<RequestId>,
}

impl SearchNode {
    /// The root node for `client`: an empty plan over its requests.
    pub(crate) fn root(client: &Hist) -> SearchNode {
        SearchNode {
            plan: Plan::new(),
            pending: requests(client).into_iter().map(|r| r.id).collect(),
        }
    }

    /// Drops already-bound requests from the front of the queue (shared
    /// identifiers bind once) and returns the next request to bind, or
    /// `None` when the plan is complete.
    fn next_request(&mut self) -> Option<RequestId> {
        while let Some(&r) = self.pending.front() {
            if self.plan.service_for(r).is_some() {
                self.pending.pop_front();
            } else {
                return Some(r);
            }
        }
        None
    }

    /// The child node binding `r` to `loc`, closing the queue over the
    /// requests the selected `service` exposes.
    fn bind_child(&self, r: RequestId, loc: &Location, service: &Hist) -> SearchNode {
        let mut plan = self.plan.clone();
        plan.bind(r, loc.clone());
        let mut pending = self.pending.clone();
        for exposed in requests(service) {
            if plan.service_for(exposed.id).is_none() && !pending.contains(&exposed.id) {
                pending.push_back(exposed.id);
            }
        }
        SearchNode { plan, pending }
    }
}

/// Depth-first search below `start`. `prune(plan, r, loc)` may cut the
/// subtree rooted at extending `plan` with `r ↦ loc` before it is
/// expanded; `emit` receives every complete plan and may abort the
/// search by returning an error. Returns the number of subtrees cut.
pub(crate) fn search<PF, EF>(
    start: SearchNode,
    repo: &Repository,
    prune: &mut PF,
    emit: &mut EF,
) -> Result<usize, PlanSpaceExceeded>
where
    PF: FnMut(&Plan, RequestId, &Location) -> bool,
    EF: FnMut(Plan) -> Result<(), PlanSpaceExceeded>,
{
    let mut pruned = 0usize;
    let mut stack = vec![start];
    while let Some(mut node) = stack.pop() {
        let Some(r) = node.next_request() else {
            emit(node.plan)?;
            continue;
        };
        node.pending.pop_front();
        // Children are pushed in reverse repository order so the stack
        // pops them in the repository's (sorted) order — keeping the
        // visit order of the old recursive implementation.
        let entries: Vec<(&Location, &Hist)> = repo.iter().collect();
        for (loc, service) in entries.into_iter().rev() {
            if prune(&node.plan, r, loc) {
                pruned += 1;
                continue;
            }
            stack.push(node.bind_child(r, loc, service));
        }
    }
    Ok(pruned)
}

/// Breadth-first expansion of the search tree under `prune` until at
/// least `target` open nodes exist (or the tree is exhausted): the seed
/// step for running independent subtrees on the worker pool. Returns
/// the open frontier, the plans already completed while expanding, and
/// the number of subtrees cut.
pub(crate) fn expand_frontier<PF>(
    client: &Hist,
    repo: &Repository,
    target: usize,
    prune: &mut PF,
) -> (Vec<SearchNode>, Vec<Plan>, usize)
where
    PF: FnMut(&Plan, RequestId, &Location) -> bool,
{
    let mut pruned = 0usize;
    let mut complete = Vec::new();
    let mut frontier = VecDeque::from([SearchNode::root(client)]);
    while frontier.len() < target.max(1) {
        let Some(mut node) = frontier.pop_front() else {
            break;
        };
        let Some(r) = node.next_request() else {
            complete.push(node.plan);
            continue;
        };
        node.pending.pop_front();
        for (loc, service) in repo.iter() {
            if prune(&node.plan, r, loc) {
                pruned += 1;
                continue;
            }
            frontier.push_back(node.bind_child(r, loc, service));
        }
    }
    (frontier.into(), complete, pruned)
}

/// Enumerates every complete plan for `client` over `repo`, up to `cap`
/// **distinct** plans.
///
/// Requests exposed by selected services are bound too; a request
/// identifier is bound at most once (identifiers are globally unique per
/// the paper's assumption), so enumeration always terminates. Plans are
/// deduplicated as they are found, so only distinct plans count toward
/// the cap.
///
/// # Errors
///
/// Returns [`PlanSpaceExceeded`] if more than `cap` distinct plans
/// exist.
///
/// # Examples
///
/// ```
/// use sufs_core::plans::enumerate_plans;
/// use sufs_hexpr::builder::*;
/// use sufs_net::Repository;
///
/// let client = request(1, None, send("q", eps()));
/// let mut repo = Repository::new();
/// repo.publish("s1", recv("q", eps()));
/// repo.publish("s2", recv("q", eps()));
/// let plans = enumerate_plans(&client, &repo, 100).unwrap();
/// assert_eq!(plans.len(), 2); // r1 ↦ s1 or r1 ↦ s2
/// ```
pub fn enumerate_plans(
    client: &Hist,
    repo: &Repository,
    cap: usize,
) -> Result<Vec<Plan>, PlanSpaceExceeded> {
    let mut seen: BTreeSet<Plan> = BTreeSet::new();
    search(
        SearchNode::root(client),
        repo,
        &mut |_, _, _| false,
        &mut |plan| {
            if seen.contains(&plan) {
                return Ok(()); // duplicate: free, never counts toward the cap
            }
            if seen.len() >= cap {
                return Err(PlanSpaceExceeded { cap });
            }
            seen.insert(plan);
            Ok(())
        },
    )?;
    Ok(seen.into_iter().collect())
}

/// The requests of the whole composed service under a plan: the client's
/// requests plus those exposed by every service the plan selects,
/// paired with the location bound to each (or `None` if unbound).
pub fn composed_requests(
    client: &Hist,
    plan: &Plan,
    repo: &Repository,
) -> Vec<(
    sufs_hexpr::requests::RequestInfo,
    Option<sufs_hexpr::Location>,
)> {
    let mut seen: Vec<RequestId> = Vec::new();
    let mut out = Vec::new();
    let mut frontier: Vec<Hist> = vec![client.clone()];
    while let Some(h) = frontier.pop() {
        for info in requests(&h) {
            if seen.contains(&info.id) {
                continue;
            }
            seen.push(info.id);
            let bound = plan.service_for(info.id).cloned();
            if let Some(loc) = &bound {
                if let Some(service) = repo.get(loc) {
                    frontier.push(service.clone());
                }
            }
            out.push((info, bound));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::Location;

    fn repo(pairs: &[(&str, Hist)]) -> Repository {
        let mut r = Repository::new();
        for (loc, h) in pairs {
            r.publish(*loc, h.clone());
        }
        r
    }

    #[test]
    fn no_requests_yields_empty_plan() {
        let plans = enumerate_plans(&ev0("a"), &Repository::new(), 10).unwrap();
        assert_eq!(plans, vec![Plan::new()]);
    }

    #[test]
    fn cartesian_product_over_independent_requests() {
        let client = Hist::seq(
            request(1, None, send("a", eps())),
            request(2, None, send("b", eps())),
        );
        let repo = repo(&[
            ("s1", recv("a", eps())),
            ("s2", recv("b", eps())),
            ("s3", recv("a", eps())),
        ]);
        let plans = enumerate_plans(&client, &repo, 100).unwrap();
        // 3 choices for r1 × 3 for r2.
        assert_eq!(plans.len(), 9);
        for p in &plans {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn nested_requests_are_closed_over() {
        // Client asks r1; the broker (a candidate for r1) asks r3.
        let client = request(1, None, send("q", eps()));
        let broker = Hist::seq(recv("q", eps()), request(3, None, send("w", eps())));
        let leafsrv = recv("w", eps());
        let repo = repo(&[("br", broker), ("leaf", leafsrv)]);
        let plans = enumerate_plans(&client, &repo, 100).unwrap();
        // r1↦br exposes r3 (2 choices); r1↦leaf leaves nothing exposed.
        // Total: 2 (r1↦br, r3↦{br,leaf}) + 1 (r1↦leaf) = 3.
        assert_eq!(plans.len(), 3);
        let with_broker: Vec<&Plan> = plans
            .iter()
            .filter(|p| p.service_for(sufs_hexpr::RequestId::new(1)) == Some(&Location::new("br")))
            .collect();
        assert_eq!(with_broker.len(), 2);
        for p in with_broker {
            assert!(p.service_for(sufs_hexpr::RequestId::new(3)).is_some());
        }
    }

    #[test]
    fn cap_is_enforced() {
        let client = Hist::seq(
            request(1, None, send("a", eps())),
            request(2, None, send("a", eps())),
        );
        let repo = repo(&[
            ("s1", recv("a", eps())),
            ("s2", recv("a", eps())),
            ("s3", recv("a", eps())),
        ]);
        let err = enumerate_plans(&client, &repo, 4).unwrap_err();
        assert_eq!(err, PlanSpaceExceeded { cap: 4 });
        assert!(err.to_string().contains('4'));
    }

    #[test]
    fn cap_boundary_with_shared_request_ids() {
        // Both candidate services for r1 and r2 expose the *same* nested
        // request id r3, so naive counting could bill the shared id
        // several times. Exactly 8 distinct plans exist
        // (2 × 2 × 2 choices): a cap of 8 must succeed, 7 must fail.
        let client = Hist::seq(
            request(1, None, send("a", eps())),
            request(2, None, send("a", eps())),
        );
        let sub = |l: &str| Hist::seq(recv("a", eps()), request(3, None, send(l, eps())));
        let repo = repo(&[("s1", sub("w")), ("s2", sub("w"))]);
        let plans = enumerate_plans(&client, &repo, 8).unwrap();
        assert_eq!(plans.len(), 8);
        // No duplicates survive enumeration.
        let mut dedup = plans.clone();
        dedup.dedup();
        assert_eq!(dedup, plans);
        let err = enumerate_plans(&client, &repo, 7).unwrap_err();
        assert_eq!(err, PlanSpaceExceeded { cap: 7 });
    }

    #[test]
    fn cap_boundary_exact_fit_succeeds() {
        // 3 × 3 = 9 distinct plans: cap 9 is enough, 8 is not.
        let client = Hist::seq(
            request(1, None, send("a", eps())),
            request(2, None, send("a", eps())),
        );
        let repo = repo(&[
            ("s1", recv("a", eps())),
            ("s2", recv("a", eps())),
            ("s3", recv("a", eps())),
        ]);
        assert_eq!(enumerate_plans(&client, &repo, 9).unwrap().len(), 9);
        assert!(enumerate_plans(&client, &repo, 8).is_err());
    }

    #[test]
    fn deep_duplicate_chain_enumerates_in_linear_time() {
        // A pathological client repeating one request id thousands of
        // times: the bound-request skip loop must be O(1) per entry
        // (the old `Vec::remove(0)` made this quadratic).
        // The syntactic walk over the n-deep `Seq` spine is recursive,
        // so give the test thread a deep stack (debug frames are large).
        std::thread::Builder::new()
            .stack_size(256 * 1024 * 1024)
            .spawn(|| {
                let n = 10_000;
                let client = Hist::seq_all((0..n).map(|_| request(1, None, send("q", eps()))));
                let repo = repo(&[("s", recv("q", eps()))]);
                let start = std::time::Instant::now();
                let plans = enumerate_plans(&client, &repo, 10).unwrap();
                assert_eq!(plans.len(), 1);
                assert_eq!(plans[0].len(), 1);
                assert!(
                    start.elapsed() < std::time::Duration::from_secs(5),
                    "deep chain took {:?}",
                    start.elapsed()
                );
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn pruning_cuts_subtrees() {
        let client = Hist::seq(
            request(1, None, send("a", eps())),
            request(2, None, send("a", eps())),
        );
        let repo = repo(&[("bad", recv("a", eps())), ("good", recv("a", eps()))]);
        let mut out = Vec::new();
        let cut = search(
            SearchNode::root(&client),
            &repo,
            &mut |_, _, loc| loc == &Location::new("bad"),
            &mut |p| {
                out.push(p);
                Ok(())
            },
        )
        .unwrap();
        // `bad` is cut once for r1 (cutting 2 leaves) and once for r2
        // under r1↦good: 1 surviving plan, 2 cuts.
        assert_eq!(out, vec![Plan::new().with(1u32, "good").with(2u32, "good")]);
        assert_eq!(cut, 2);
    }

    #[test]
    fn frontier_expansion_partitions_the_space() {
        let client = Hist::seq(
            request(1, None, send("a", eps())),
            request(2, None, send("a", eps())),
        );
        let repo = repo(&[
            ("s1", recv("a", eps())),
            ("s2", recv("a", eps())),
            ("s3", recv("a", eps())),
        ]);
        let (frontier, complete, pruned) = expand_frontier(&client, &repo, 5, &mut |_, _, _| false);
        assert!(frontier.len() >= 5);
        assert!(complete.is_empty());
        assert_eq!(pruned, 0);
        // Finishing every frontier node recovers exactly the 9 plans.
        let mut all = BTreeSet::new();
        for node in frontier {
            search(node, &repo, &mut |_, _, _| false, &mut |p| {
                all.insert(p);
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn composed_requests_follow_bindings() {
        let client = request(1, None, send("q", eps()));
        let broker = Hist::seq(recv("q", eps()), request(3, None, send("w", eps())));
        let repo = repo(&[("br", broker), ("leaf", recv("w", eps()))]);
        let plan = Plan::new().with(1u32, "br").with(3u32, "leaf");
        let rs = composed_requests(&client, &plan, &repo);
        assert_eq!(rs.len(), 2);
        // An unbound nested request is reported with None.
        let partial = Plan::new().with(1u32, "br");
        let rs = composed_requests(&client, &partial, &repo);
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().any(|(i, b)| i.id.index() == 3 && b.is_none()));
    }

    #[test]
    fn empty_repository_binds_nothing() {
        let client = request(1, None, send("q", eps()));
        let plans = enumerate_plans(&client, &Repository::new(), 10).unwrap();
        assert!(plans.is_empty());
    }
}
