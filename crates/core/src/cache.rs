//! Memoisation for the verification pipeline.
//!
//! Verifying a plan space recomputes the same sub-results over and over:
//! the seed pipeline projected `Contract::from_service` and re-ran the
//! Theorem 1 product automaton for the same `(request body, service)`
//! pair once *per candidate plan*, although a repository of `s` services
//! and a client with `r` requests only ever has `r·s` distinct pairs —
//! while the plan space has up to `sʳ` candidates. [`VerifyCache`]
//! memoizes the four expensive sub-checks:
//!
//! 1. **projection** — `Contract::from_service(H)`, keyed by the
//!    structural hash of `H`;
//! 2. **compliance** — `compliant(client_side, server_side)` witnesses,
//!    keyed by the pair of contract hashes;
//! 3. **validity** — the per-`(composition, plan)` security verdict;
//! 4. **progress** — the per-`(composition, plan)` stuck search.
//!
//! Keys bucket on the *stable* structural hashes exposed by
//! `sufs_hexpr::shash` (so hit-rates are reproducible run over run) but
//! compare the full key value: a fingerprint collision costs a bucket
//! scan, never a wrong verdict. Lookups hash and compare *borrowed*
//! keys — the key value is cloned into the table only on a miss, so a
//! hit costs one fingerprint pass and no allocation. The plan-keyed
//! layers *intern* the composition (one synthesis run uses one
//! composition, while the plan space may hold 10⁵ candidates): callers
//! intern once per run via [`VerifyCache::intern`] and look up with the
//! returned [`CompositionId`], so the deep composition expression is
//! fingerprinted once per run instead of twice per candidate. All maps
//! sit behind mutexes so one cache can be shared across the worker
//! threads of [`crate::pool::WorkPool`]; hit/miss counters are atomic
//! and can be snapshotted at any point via [`VerifyCache::stats`].

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sufs_contract::{compliant, Contract, ContractError, StuckWitness};
use sufs_hexpr::shash::stable_hash_of;
use sufs_hexpr::{Hist, Location};
use sufs_net::symbolic::StuckState;
use sufs_net::Plan;
use sufs_policy::validity::{ValidityError, Verdict};

/// A fingerprint-bucketed map: the outer key is the stable structural
/// hash of the full key, the bucket holds the full `(key, value)` pairs
/// that share it. Buckets are almost always singletons; a collision
/// costs a short scan with full-value equality, never a wrong answer.
#[derive(Debug)]
struct Bucketed<K, V> {
    buckets: HashMap<u64, Vec<(K, V)>>,
}

impl<K, V> Default for Bucketed<K, V> {
    fn default() -> Self {
        Bucketed {
            buckets: HashMap::new(),
        }
    }
}

impl<K: PartialEq, V> Bucketed<K, V> {
    /// The value stored for the key matching `probe`, if any. `probe`
    /// compares a borrowed form against the owned stored keys.
    fn get(&self, fingerprint: u64, probe: impl Fn(&K) -> bool) -> Option<&V> {
        self.buckets
            .get(&fingerprint)?
            .iter()
            .find(|(k, _)| probe(k))
            .map(|(_, v)| v)
    }

    /// Inserts `(key, value)` unless an equal key is already present
    /// (first writer wins, matching `HashMap::entry().or_insert`).
    fn insert_if_absent(&mut self, fingerprint: u64, key: K, value: V) {
        let bucket = self.buckets.entry(fingerprint).or_default();
        if !bucket.iter().any(|(k, _)| *k == key) {
            bucket.push((key, value));
        }
    }

    /// Drops every entry whose key fails `keep`; returns how many fell.
    fn retain(&mut self, keep: impl Fn(&K) -> bool) -> u64 {
        let mut evicted = 0u64;
        self.buckets.retain(|_, bucket| {
            let before = bucket.len();
            bucket.retain(|(k, _)| keep(k));
            evicted += (before - bucket.len()) as u64;
            !bucket.is_empty()
        });
        evicted
    }

    fn clear(&mut self) -> u64 {
        let evicted: usize = self.buckets.values().map(Vec::len).sum();
        self.buckets.clear();
        evicted as u64
    }
}

/// Hit/miss counters for one cache layer.
#[derive(Debug, Default)]
struct Layer {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Layer {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// A point-in-time snapshot of the cache counters, layer by layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Projection lookups served from / added to the cache.
    pub contract: (u64, u64),
    /// Pairwise-compliance lookups served from / added to the cache.
    pub compliance: (u64, u64),
    /// Security-verdict lookups served from / added to the cache.
    pub validity: (u64, u64),
    /// Stuck-search lookups served from / added to the cache.
    pub progress: (u64, u64),
    /// Entries evicted by incremental invalidation (repository or
    /// registry mutations under a long-lived cache).
    pub evictions: u64,
}

impl CacheStats {
    /// Total hits across every layer.
    pub fn hits(&self) -> u64 {
        self.contract.0 + self.compliance.0 + self.validity.0 + self.progress.0
    }

    /// Total misses across every layer.
    pub fn misses(&self) -> u64 {
        self.contract.1 + self.compliance.1 + self.validity.1 + self.progress.1
    }

    /// The overall hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// The counter deltas accumulated since `earlier` was snapshotted:
    /// the per-run view of a cache shared across many synthesis calls
    /// (the broker's case).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        let d = |a: (u64, u64), b: (u64, u64)| (a.0.saturating_sub(b.0), a.1.saturating_sub(b.1));
        CacheStats {
            contract: d(self.contract, earlier.contract),
            compliance: d(self.compliance, earlier.compliance),
            validity: d(self.validity, earlier.validity),
            progress: d(self.progress, earlier.progress),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits(),
            self.misses(),
            self.hit_rate() * 100.0
        )
    }
}

/// An interned composition: the handle returned by
/// [`VerifyCache::intern`]. Cheap to copy; callers intern the
/// composition once per synthesis run and use the id for every
/// per-plan lookup, so the deep expression is fingerprinted once per
/// run rather than once per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositionId(usize);

type ContractMap = Bucketed<Hist, Result<Contract, ContractError>>;
type ComplianceMap = Bucketed<(Contract, Contract), Option<StuckWitness>>;
type ValidityMap = Bucketed<(usize, Plan), Result<Verdict, ValidityError>>;
type ProgressMap = Bucketed<(usize, Plan), Result<Option<StuckState>, usize>>;

/// The verification memo table; see the module docs for the four layers.
///
/// Cheap to create, internally synchronised, and safe to share by
/// reference across verifier threads. A cache may be reused across
/// `synthesize` calls as long as the *policy registry* is the same —
/// validity verdicts depend on it, which is why the validity layer is
/// keyed by `(composition, plan)` and a cache must not be shared across
/// registries.
#[derive(Debug, Default)]
pub struct VerifyCache {
    /// Interned compositions: `(fingerprint, expression)`, index = id.
    compositions: Mutex<Vec<(u64, Hist)>>,
    contracts: Mutex<ContractMap>,
    compliance: Mutex<ComplianceMap>,
    validity: Mutex<ValidityMap>,
    progress: Mutex<ProgressMap>,
    contract_stats: Layer,
    compliance_stats: Layer,
    validity_stats: Layer,
    progress_stats: Layer,
    evictions: AtomicU64,
}

impl VerifyCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interning id of `composition`, cloning it into the table on
    /// first sight. One verification run touches one composition (or a
    /// handful, for recovery tables), so the scan is effectively O(1)
    /// and the plan-keyed layers never store deep expression copies.
    /// Callers should intern **once per run** and reuse the id.
    pub fn intern(&self, composition: &Hist) -> CompositionId {
        let fingerprint = stable_hash_of(composition);
        let mut table = self
            .compositions
            .lock()
            .expect("composition table poisoned");
        if let Some(id) = table
            .iter()
            .position(|(fp, h)| *fp == fingerprint && h == composition)
        {
            return CompositionId(id);
        }
        table.push((fingerprint, composition.clone()));
        CompositionId(table.len() - 1)
    }

    /// The fingerprint of a plan-keyed entry: composition id + the
    /// plan's own stable hash. The composition's deep expression is
    /// *not* re-hashed here — that happened once, at [`intern`] time.
    ///
    /// [`intern`]: VerifyCache::intern
    fn plan_key_fp(comp: CompositionId, plan: &Plan) -> u64 {
        stable_hash_of(&(comp.0 as u64, plan))
    }

    /// Memoized [`Contract::from_service`].
    ///
    /// # Errors
    ///
    /// As [`Contract::from_service`] (errors are memoized too).
    pub fn contract_of(&self, service: &Hist) -> Result<Contract, ContractError> {
        let fp = stable_hash_of(service);
        {
            let map = self.contracts.lock().expect("contract cache poisoned");
            if let Some(cached) = map.get(fp, |k| k == service) {
                self.contract_stats.hit();
                return cached.clone();
            }
        }
        self.contract_stats.miss();
        let computed = Contract::from_service(service);
        let mut map = self.contracts.lock().expect("contract cache poisoned");
        map.insert_if_absent(fp, service.clone(), computed.clone());
        computed
    }

    /// Memoized pairwise compliance: the Theorem 1 witness of
    /// `client ⊢ server`, or `None` when the contracts are compliant.
    pub fn compliance_witness(&self, client: &Contract, server: &Contract) -> Option<StuckWitness> {
        let fp = stable_hash_of(&(client, server));
        {
            let map = self.compliance.lock().expect("compliance cache poisoned");
            if let Some(cached) = map.get(fp, |(c, s)| c == client && s == server) {
                self.compliance_stats.hit();
                return cached.clone();
            }
        }
        self.compliance_stats.miss();
        let computed = compliant(client, server).witness().cloned();
        let mut map = self.compliance.lock().expect("compliance cache poisoned");
        map.insert_if_absent(fp, (client.clone(), server.clone()), computed.clone());
        computed
    }

    /// Memoized security verdict for `(composition, plan)`; `compute`
    /// runs the model checker on a miss. Convenience wrapper over
    /// [`validity_interned`] for one-shot callers.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns (errors are memoized too).
    ///
    /// [`validity_interned`]: VerifyCache::validity_interned
    pub fn validity<F>(
        &self,
        composition: &Hist,
        plan: &Plan,
        compute: F,
    ) -> Result<Verdict, ValidityError>
    where
        F: FnOnce() -> Result<Verdict, ValidityError>,
    {
        self.validity_interned(self.intern(composition), plan, compute)
    }

    /// Memoized security verdict for an already-interned composition:
    /// the hot-loop entry point, which never re-hashes the composition.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns (errors are memoized too).
    pub fn validity_interned<F>(
        &self,
        comp: CompositionId,
        plan: &Plan,
        compute: F,
    ) -> Result<Verdict, ValidityError>
    where
        F: FnOnce() -> Result<Verdict, ValidityError>,
    {
        let fp = Self::plan_key_fp(comp, plan);
        {
            let map = self.validity.lock().expect("validity cache poisoned");
            if let Some(cached) = map.get(fp, |(id, p)| *id == comp.0 && p == plan) {
                self.validity_stats.hit();
                return cached.clone();
            }
        }
        self.validity_stats.miss();
        let computed = compute();
        let mut map = self.validity.lock().expect("validity cache poisoned");
        map.insert_if_absent(fp, (comp.0, plan.clone()), computed.clone());
        computed
    }

    /// Memoized stuck search for `(composition, plan)`; `compute` runs
    /// the symbolic exploration on a miss. The error carries the
    /// exceeded state bound, as in `find_stuck`. Convenience wrapper
    /// over [`progress_interned`] for one-shot callers.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns (errors are memoized too).
    ///
    /// [`progress_interned`]: VerifyCache::progress_interned
    pub fn progress<F>(
        &self,
        composition: &Hist,
        plan: &Plan,
        compute: F,
    ) -> Result<Option<StuckState>, usize>
    where
        F: FnOnce() -> Result<Option<StuckState>, usize>,
    {
        self.progress_interned(self.intern(composition), plan, compute)
    }

    /// Memoized stuck search for an already-interned composition.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns (errors are memoized too).
    pub fn progress_interned<F>(
        &self,
        comp: CompositionId,
        plan: &Plan,
        compute: F,
    ) -> Result<Option<StuckState>, usize>
    where
        F: FnOnce() -> Result<Option<StuckState>, usize>,
    {
        let fp = Self::plan_key_fp(comp, plan);
        {
            let map = self.progress.lock().expect("progress cache poisoned");
            if let Some(cached) = map.get(fp, |(id, p)| *id == comp.0 && p == plan) {
                self.progress_stats.hit();
                return cached.clone();
            }
        }
        self.progress_stats.miss();
        let computed = compute();
        let mut map = self.progress.lock().expect("progress cache poisoned");
        map.insert_if_absent(fp, (comp.0, plan.clone()), computed.clone());
        computed
    }

    /// Incremental invalidation for a repository mutation at `loc`:
    /// evicts exactly the per-plan verdicts whose plan binds a request
    /// to the touched location, and returns how many entries fell.
    ///
    /// This is what keeps a long-lived cache sound under a *dynamic*
    /// repository. The contract and compliance layers are pure
    /// functions of the expressions they are keyed by, so they can
    /// never go stale; the validity and progress layers, by contrast,
    /// consult the repository through `symbolic_successors`, but only
    /// at the locations the plan binds — a verdict for a plan that
    /// never mentions `loc` is untouched by any change there. Publish,
    /// update and retract all funnel through here: publishing a
    /// location can flip a previously `UnknownLocation`-doomed plan
    /// just as surely as retracting it can doom a valid one.
    pub fn invalidate_location(&self, loc: &Location) -> u64 {
        let keep = |key: &(usize, Plan)| !key.1.iter().any(|(_, l)| l == loc);
        let mut evicted = 0u64;
        evicted += self
            .validity
            .lock()
            .expect("validity cache poisoned")
            .retain(keep);
        evicted += self
            .progress
            .lock()
            .expect("progress cache poisoned")
            .retain(keep);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Invalidation for a policy-registry mutation: security verdicts
    /// depend on the registry through every policy the composition
    /// activates, so the whole validity layer is dropped. Progress,
    /// compliance and contract entries never consult the registry and
    /// survive. Returns the number of entries evicted.
    pub fn invalidate_registry(&self) -> u64 {
        let evicted = self
            .validity
            .lock()
            .expect("validity cache poisoned")
            .clear();
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// A snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            contract: self.contract_stats.snapshot(),
            compliance: self.compliance_stats.snapshot(),
            validity: self.validity_stats.snapshot(),
            progress: self.progress_stats.snapshot(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;

    #[test]
    fn contract_layer_memoizes_values_and_errors() {
        let cache = VerifyCache::new();
        let good = recv("q", eps());
        let c1 = cache.contract_of(&good).unwrap();
        let c2 = cache.contract_of(&good).unwrap();
        assert_eq!(c1, c2);
        let bad = Hist::mu("h", Hist::var("h"));
        assert!(cache.contract_of(&bad).is_err());
        assert!(cache.contract_of(&bad).is_err());
        let stats = cache.stats();
        assert_eq!(stats.contract, (2, 2));
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn compliance_layer_memoizes() {
        let cache = VerifyCache::new();
        let client = cache.contract_of(&send("a", eps())).unwrap();
        let server = cache.contract_of(&recv("a", eps())).unwrap();
        assert!(cache.compliance_witness(&client, &server).is_none());
        assert!(cache.compliance_witness(&client, &server).is_none());
        let mismatched = cache.contract_of(&recv("b", eps())).unwrap();
        assert!(cache.compliance_witness(&client, &mismatched).is_some());
        let stats = cache.stats();
        assert_eq!(stats.compliance, (1, 2));
    }

    #[test]
    fn plan_keyed_layers_memoize_closures() {
        let cache = VerifyCache::new();
        let h = ev0("a");
        let plan = Plan::new().with(1u32, "s");
        let mut calls = 0;
        for _ in 0..3 {
            let r = cache.validity(&h, &plan, || {
                calls += 1;
                Ok(Verdict::Valid)
            });
            assert_eq!(r, Ok(Verdict::Valid));
        }
        assert_eq!(calls, 1);
        let mut progress_calls = 0;
        for _ in 0..2 {
            let r = cache.progress(&h, &plan, || {
                progress_calls += 1;
                Err(7)
            });
            assert_eq!(r, Err(7));
        }
        assert_eq!(progress_calls, 1);
        let stats = cache.stats();
        assert_eq!(stats.validity, (2, 1));
        assert_eq!(stats.progress, (1, 1));
        assert!(stats.to_string().contains("hit rate"));
    }

    #[test]
    fn interned_lookups_agree_with_expression_lookups() {
        let cache = VerifyCache::new();
        let h = ev0("a");
        let plan = Plan::new().with(1u32, "s");
        let comp = cache.intern(&h);
        assert_eq!(comp, cache.intern(&h), "interning is idempotent");
        cache
            .validity_interned(comp, &plan, || Ok(Verdict::Valid))
            .unwrap();
        // The expression-keyed wrapper resolves to the same entry.
        let r = cache.validity(&h, &plan, || unreachable!("must hit"));
        assert_eq!(r, Ok(Verdict::Valid));
        cache.progress_interned(comp, &plan, || Ok(None)).unwrap();
        cache
            .progress(&h, &plan, || unreachable!("must hit"))
            .unwrap();
    }

    #[test]
    fn distinct_compositions_do_not_collide() {
        let cache = VerifyCache::new();
        let plan = Plan::new().with(1u32, "s");
        let r1 = cache.validity(&ev0("a"), &plan, || Ok(Verdict::Valid));
        let r2 = cache.validity(&ev0("b"), &plan, || Err(ValidityError::BoundExceeded(1)));
        assert!(r1.is_ok());
        assert!(r2.is_err());
        // Re-querying the first composition still hits.
        let r3 = cache.validity(&ev0("a"), &plan, || unreachable!());
        assert_eq!(r3, Ok(Verdict::Valid));
    }

    #[test]
    fn location_invalidation_evicts_only_mentioning_plans() {
        let cache = VerifyCache::new();
        let h = ev0("a");
        let touching = Plan::new().with(1u32, "s").with(2u32, "t");
        let unrelated = Plan::new().with(1u32, "u");
        cache
            .validity(&h, &touching, || Ok(Verdict::Valid))
            .unwrap();
        cache
            .validity(&h, &unrelated, || Ok(Verdict::Valid))
            .unwrap();
        cache.progress(&h, &touching, || Ok(None)).unwrap();
        cache.progress(&h, &unrelated, || Ok(None)).unwrap();
        // Touch `t`: only the plans binding `t` fall, in both layers.
        let evicted = cache.invalidate_location(&Location::new("t"));
        assert_eq!(evicted, 2);
        assert_eq!(cache.stats().evictions, 2);
        let mut recomputed = false;
        cache
            .validity(&h, &touching, || {
                recomputed = true;
                Ok(Verdict::Valid)
            })
            .unwrap();
        assert!(recomputed, "evicted entry must be recomputed");
        cache
            .validity(&h, &unrelated, || unreachable!("survivor must hit"))
            .unwrap();
        cache
            .progress(&h, &unrelated, || unreachable!("survivor must hit"))
            .unwrap();
        // A location no plan mentions evicts nothing.
        assert_eq!(cache.invalidate_location(&Location::new("zzz")), 0);
    }

    #[test]
    fn registry_invalidation_clears_validity_only() {
        let cache = VerifyCache::new();
        let h = ev0("a");
        let plan = Plan::new().with(1u32, "s");
        cache.validity(&h, &plan, || Ok(Verdict::Valid)).unwrap();
        cache.progress(&h, &plan, || Ok(None)).unwrap();
        assert_eq!(cache.invalidate_registry(), 1);
        let mut recomputed = false;
        cache
            .validity(&h, &plan, || {
                recomputed = true;
                Ok(Verdict::Valid)
            })
            .unwrap();
        assert!(recomputed);
        // Progress never consults the registry: still cached.
        cache
            .progress(&h, &plan, || unreachable!("progress must survive"))
            .unwrap();
    }

    #[test]
    fn stats_since_reports_the_delta() {
        let cache = VerifyCache::new();
        let h = ev0("a");
        let plan = Plan::new().with(1u32, "s");
        cache.validity(&h, &plan, || Ok(Verdict::Valid)).unwrap();
        let mark = cache.stats();
        cache.validity(&h, &plan, || unreachable!()).unwrap();
        let delta = cache.stats().since(&mark);
        assert_eq!(delta.validity, (1, 0));
        assert_eq!(delta.contract, (0, 0));
        assert_eq!(delta.evictions, 0);
    }

    #[test]
    fn distinct_plans_do_not_collide() {
        let cache = VerifyCache::new();
        let h = ev0("a");
        let p1 = Plan::new().with(1u32, "x");
        let p2 = Plan::new().with(1u32, "y");
        let r1 = cache.validity(&h, &p1, || Ok(Verdict::Valid));
        let r2 = cache.validity(&h, &p2, || Err(ValidityError::BoundExceeded(1)));
        assert!(r1.is_ok());
        assert!(r2.is_err());
    }
}
