//! A small in-tree work-stealing thread pool.
//!
//! The workspace builds offline with no external crates, so instead of
//! `rayon` this module provides the one primitive plan synthesis needs:
//! map an index range over a `Sync` function on `N` OS threads
//! ([`WorkPool::run`]). Each worker owns a deque seeded with a
//! round-robin share of the indices; it pops work from its own front
//! and, when empty, *steals* from the back of a victim chosen by a
//! seeded SplitMix64 sequence. Because the task set is fixed up front
//! (tasks never spawn tasks), a full sweep finding every deque empty is
//! a sound termination condition.
//!
//! Determinism: results are returned **in index order** regardless of
//! which worker executed what, so callers observe schedule-independent
//! output. The steal-victim sequence is a pure function of
//! `(seed, worker, attempt)`, so tests can pin a seed and rely on a
//! reproducible probing order; the interleaving of workers itself is
//! OS-scheduled, which is exactly why nothing downstream may depend on
//! it.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// SplitMix64: the workspace's standard deterministic mixing function.
fn splitmix(mut state: u64) -> u64 {
    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-size work-stealing pool; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    jobs: usize,
    seed: u64,
}

impl Default for WorkPool {
    fn default() -> Self {
        WorkPool::new(0)
    }
}

impl WorkPool {
    /// A pool with `jobs` workers; `0` means [`default_jobs`].
    pub fn new(jobs: usize) -> WorkPool {
        WorkPool::with_seed(jobs, 0)
    }

    /// A pool with `jobs` workers and an explicit steal-sequence seed.
    pub fn with_seed(jobs: usize, seed: u64) -> WorkPool {
        let jobs = if jobs == 0 { default_jobs() } else { jobs };
        WorkPool { jobs, seed }
    }

    /// The number of workers this pool runs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every index in `0..items`, returning the results
    /// in index order. Runs inline when one worker suffices.
    pub fn run<T, F>(&self, items: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(items.max(1));
        if workers <= 1 {
            return (0..items).map(f).collect();
        }

        // Round-robin seeding keeps neighbouring (often similar-cost)
        // items spread across workers.
        let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for i in 0..items {
            deques[i % workers].push_back(i);
        }
        let deques: Vec<Mutex<VecDeque<usize>>> = deques.into_iter().map(Mutex::new).collect();
        let f = &f;
        let deques = &deques;
        let seed = self.seed;

        let mut results: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        let mut attempt: u64 = 0;
                        loop {
                            // Own work first (front = FIFO locality).
                            let own = deques[w].lock().expect("deque poisoned").pop_front();
                            if let Some(i) = own {
                                out.push((i, f(i)));
                                continue;
                            }
                            // Steal: probe every other worker once, in a
                            // seeded order; give up when all are empty.
                            let offset = splitmix(seed ^ ((w as u64) << 32) ^ attempt) as usize;
                            attempt = attempt.wrapping_add(1);
                            let mut stolen = None;
                            for k in 0..workers {
                                let v = (offset + k) % workers;
                                if v == w {
                                    continue;
                                }
                                stolen = deques[v].lock().expect("deque poisoned").pop_back();
                                if stolen.is_some() {
                                    break;
                                }
                            }
                            match stolen {
                                Some(i) => out.push((i, f(i))),
                                None => break,
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        results.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(results.len(), items);
        results.into_iter().map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_index_order() {
        for jobs in [1, 2, 4, 7] {
            let pool = WorkPool::with_seed(jobs, 42);
            let out = pool.run(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkPool::with_seed(4, 7);
        let out = pool.run(1000, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn uneven_costs_are_balanced_by_stealing() {
        // One expensive item among many cheap ones: stealing must keep
        // the pool from serialising behind it.
        let pool = WorkPool::with_seed(4, 1);
        let out = pool.run(64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i + 1
        });
        assert_eq!(out[0], 1);
        assert_eq!(out[63], 64);
    }

    #[test]
    fn zero_jobs_means_auto_and_zero_items_is_fine() {
        let pool = WorkPool::new(0);
        assert!(pool.jobs() >= 1);
        let out: Vec<usize> = pool.run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn seeds_change_probe_order_not_results() {
        let a = WorkPool::with_seed(3, 1).run(50, |i| i % 7);
        let b = WorkPool::with_seed(3, 999).run(50, |i| i % 7);
        assert_eq!(a, b);
    }
}
