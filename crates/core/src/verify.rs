//! The verification pipeline (§4–§5): from a client and a repository to
//! the set of **valid plans**.
//!
//! For each candidate plan the verifier checks:
//!
//! 1. **Compliance** (§4): for every request `open_{r,φ} H₁ close_{r,φ}`
//!    of the composed service, `H₁! ⊢ H₂!` where `H₂` is the service the
//!    plan selects for `r` — decided by Theorem 1's product automaton;
//! 2. **Security** (§3.1): the symbolic state space of the client under
//!    the plan is model-checked against every policy it activates;
//! 3. **Progress**: no stuck configuration is reachable (this subsumes
//!    per-request compliance but also covers unbound requests and
//!    cross-session blocking, and produces scheduler-level witnesses).
//!
//! A plan passing all three is *valid*: "switch off any run-time
//! monitor, and live happily: nothing bad will happen" (§5).

use std::fmt;

use crate::plans::{composed_requests, enumerate_plans, PlanSpaceExceeded, DEFAULT_PLAN_CAP};
use crate::report::VerifyReport;
use sufs_contract::{compliant, Contract, ContractError, StuckWitness};
use sufs_hexpr::wf::{self, WfError};
use sufs_hexpr::{Hist, Location, RequestId};
use sufs_net::symbolic::{find_stuck, symbolic_successors, StuckState, SymState};
use sufs_net::{Plan, Repository};
use sufs_policy::validity::{check_validity, SecurityViolation, ValidityError, Verdict};
use sufs_policy::PolicyRegistry;

/// The default bound on symbolic states explored per plan.
pub const DEFAULT_STATE_BOUND: usize = 1 << 18;

/// One reason a plan is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A request has no binding in the plan (the composition is not even
    /// executable).
    UnboundRequest {
        /// The unbound request.
        request: RequestId,
    },
    /// The client side of a request and the selected service are not
    /// compliant (Definition 4 fails, with a Theorem 1 witness).
    NonCompliant {
        /// The request whose session may get stuck.
        request: RequestId,
        /// The selected service.
        service: Location,
        /// The product-automaton counterexample.
        witness: StuckWitness,
    },
    /// A reachable history violates an active security policy.
    Security(SecurityViolation),
    /// A stuck configuration is reachable in the composed execution.
    Stuck(StuckState),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnboundRequest { request } => {
                write!(f, "request {request} is not bound by the plan")
            }
            Violation::NonCompliant {
                request,
                service,
                witness,
            } => write!(f, "request {request} vs {service}: {witness}"),
            Violation::Security(v) => write!(f, "{v}"),
            Violation::Stuck(s) => write!(f, "{s}"),
        }
    }
}

/// The verdict for one candidate plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanVerdict {
    /// The plan.
    pub plan: Plan,
    /// Every violation found (empty ⟺ the plan is valid).
    pub violations: Vec<Violation>,
}

impl PlanVerdict {
    /// Returns `true` if the plan is valid.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An error preventing verification from running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The client is not a well-formed history expression.
    IllFormedClient(WfError),
    /// A projection failed to yield a contract (ill-formed service).
    Contract(ContractError),
    /// Validity checking failed (unknown policy or state explosion).
    Validity(ValidityError),
    /// Too many candidate plans.
    PlanSpace(PlanSpaceExceeded),
    /// Symbolic exploration exceeded the state bound.
    BoundExceeded(usize),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::IllFormedClient(e) => write!(f, "ill-formed client: {e}"),
            VerifyError::Contract(e) => write!(f, "{e}"),
            VerifyError::Validity(e) => write!(f, "{e}"),
            VerifyError::PlanSpace(e) => write!(f, "{e}"),
            VerifyError::BoundExceeded(b) => {
                write!(f, "symbolic exploration exceeded {b} states")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ContractError> for VerifyError {
    fn from(e: ContractError) -> Self {
        VerifyError::Contract(e)
    }
}

impl From<ValidityError> for VerifyError {
    fn from(e: ValidityError) -> Self {
        VerifyError::Validity(e)
    }
}

impl From<PlanSpaceExceeded> for VerifyError {
    fn from(e: PlanSpaceExceeded) -> Self {
        VerifyError::PlanSpace(e)
    }
}

/// Verifies one candidate plan for `client` (at the implicit location
/// `client`); see the module docs for the three checks performed.
///
/// # Errors
///
/// Returns a [`VerifyError`] if the inputs are ill-formed or a policy
/// cannot be resolved — as opposed to the plan merely being invalid,
/// which is reported in the verdict.
pub fn verify_plan(
    client: &Hist,
    plan: &Plan,
    repo: &Repository,
    registry: &PolicyRegistry,
) -> Result<PlanVerdict, VerifyError> {
    wf::check(client).map_err(VerifyError::IllFormedClient)?;
    let mut violations = Vec::new();

    // 1. Per-request compliance (client request bodies and the requests
    //    exposed by selected services alike).
    for (info, bound) in composed_requests(client, plan, repo) {
        let Some(service_loc) = bound else {
            violations.push(Violation::UnboundRequest { request: info.id });
            continue;
        };
        let Some(service) = repo.get(&service_loc) else {
            violations.push(Violation::UnboundRequest { request: info.id });
            continue;
        };
        let client_side = Contract::from_service(&info.body)?;
        let server_side = Contract::from_service(service)?;
        let result = compliant(&client_side, &server_side);
        if let Some(witness) = result.witness() {
            violations.push(Violation::NonCompliant {
                request: info.id,
                service: service_loc,
                witness: witness.clone(),
            });
        }
    }

    // 2. Security: model-check the symbolic state space.
    let initial = SymState::initial("client", client.clone());
    let verdict = check_validity(
        initial.clone(),
        |s| symbolic_successors(s, plan, repo),
        registry,
        DEFAULT_STATE_BOUND,
    )?;
    if let Verdict::Violation(v) = verdict {
        violations.push(Violation::Security(v));
    }

    // 3. Progress: no reachable stuck configuration.
    match find_stuck("client", client.clone(), plan, repo, DEFAULT_STATE_BOUND) {
        Ok(Some(stuck)) => {
            // Unbound requests already reported more precisely.
            let already = violations
                .iter()
                .any(|v| matches!(v, Violation::UnboundRequest { .. }));
            if !already {
                violations.push(Violation::Stuck(stuck));
            }
        }
        Ok(None) => {}
        Err(bound) => return Err(VerifyError::BoundExceeded(bound)),
    }

    Ok(PlanVerdict {
        plan: plan.clone(),
        violations,
    })
}

/// Verifies every candidate plan for `client` over `repo`: the paper's
/// §5 procedure. The resulting report lists the valid plans and, for
/// each rejected plan, why it was rejected.
///
/// # Errors
///
/// Returns a [`VerifyError`] on ill-formed inputs, unresolvable
/// policies, or state/plan-space explosion.
///
/// # Examples
///
/// ```
/// use sufs_core::verify::verify;
/// use sufs_hexpr::builder::*;
/// use sufs_net::Repository;
/// use sufs_policy::PolicyRegistry;
///
/// let client = request(1, None, seq([
///     send("req", eps()),
///     offer([("ok", eps()), ("no", eps())]),
/// ]));
/// let mut repo = Repository::new();
/// repo.publish("good", recv("req", choose([("ok", eps()), ("no", eps())])));
/// repo.publish("bad", recv("req", choose([("later", eps())])));
///
/// let report = verify(&client, &repo, &PolicyRegistry::new()).unwrap();
/// let valid: Vec<_> = report.valid_plans().collect();
/// assert_eq!(valid.len(), 1);
/// ```
pub fn verify(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
) -> Result<VerifyReport, VerifyError> {
    verify_with_cap(client, repo, registry, DEFAULT_PLAN_CAP)
}

/// [`verify`] with an explicit cap on the number of candidate plans.
///
/// # Errors
///
/// As [`verify`], plus [`VerifyError::PlanSpace`] past the cap.
pub fn verify_with_cap(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    plan_cap: usize,
) -> Result<VerifyReport, VerifyError> {
    wf::check(client).map_err(VerifyError::IllFormedClient)?;
    let plans = enumerate_plans(client, repo, plan_cap)?;
    let mut verdicts = Vec::with_capacity(plans.len());
    for plan in plans {
        verdicts.push(verify_plan(client, &plan, repo, registry)?);
    }
    Ok(VerifyReport::new(verdicts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::ParamValue;
    use sufs_hexpr::PolicyRef;
    use sufs_policy::catalog;

    fn booking_client(policy: Option<PolicyRef>) -> Hist {
        request(
            1,
            policy,
            seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
        )
    }

    #[test]
    fn valid_and_invalid_plans_separated() {
        let mut repo = Repository::new();
        repo.publish("good", recv("req", choose([("ok", eps()), ("no", eps())])));
        repo.publish(
            "bad",
            recv("req", choose([("ok", eps()), ("later", eps())])),
        );
        let report = verify(&booking_client(None), &repo, &PolicyRegistry::new()).unwrap();
        assert_eq!(report.len(), 2);
        let valid: Vec<&Plan> = report.valid_plans().collect();
        assert_eq!(valid.len(), 1);
        assert_eq!(
            valid[0].service_for(RequestId::new(1)),
            Some(&Location::new("good"))
        );
        let rejected: Vec<&PlanVerdict> = report.rejected().collect();
        assert_eq!(rejected.len(), 1);
        assert!(matches!(
            rejected[0].violations[0],
            Violation::NonCompliant { .. }
        ));
        // The angelic symbolic exploration alone would *not* catch this
        // (the bad `later` send is simply never scheduled): the product
        // automaton is the decisive check, exactly the paper's point
        // about its semantics being angelic.
        assert!(!rejected[0]
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Stuck(_))));
    }

    #[test]
    fn security_violation_rejects_plan() {
        let mut registry = PolicyRegistry::new();
        registry.register(catalog::blacklist("access"));
        let phi = PolicyRef::new("blacklist_access", [ParamValue::set(["evil"])]);
        let client = booking_client(Some(phi));
        let mut repo = Repository::new();
        // This service touches the black-listed resource before replying.
        repo.publish(
            "shady",
            recv(
                "req",
                seq([
                    ev("access", ["evil"]),
                    choose([("ok", eps()), ("no", eps())]),
                ]),
            ),
        );
        repo.publish(
            "clean",
            recv(
                "req",
                seq([
                    ev("access", ["fine"]),
                    choose([("ok", eps()), ("no", eps())]),
                ]),
            ),
        );
        let report = verify(&client, &repo, &registry).unwrap();
        let valid: Vec<&Plan> = report.valid_plans().collect();
        assert_eq!(valid.len(), 1);
        assert_eq!(
            valid[0].service_for(RequestId::new(1)),
            Some(&Location::new("clean"))
        );
        let shady_verdict = report
            .verdicts()
            .iter()
            .find(|v| v.plan.service_for(RequestId::new(1)) == Some(&Location::new("shady")))
            .unwrap();
        assert!(shady_verdict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Security(_))));
    }

    #[test]
    fn unbound_request_reported() {
        let client = booking_client(None);
        let verdict = verify_plan(
            &client,
            &Plan::new(),
            &Repository::new(),
            &PolicyRegistry::new(),
        )
        .unwrap();
        assert!(!verdict.is_valid());
        assert_eq!(
            verdict.violations,
            vec![Violation::UnboundRequest {
                request: RequestId::new(1)
            }]
        );
        assert!(verdict.violations[0].to_string().contains("r1"));
    }

    #[test]
    fn nested_request_compliance_checked() {
        // client → broker → leaf; the broker's own conversation with the
        // leaf must be compliant too.
        let client = request(1, None, seq([send("q", eps()), offer([("a", eps())])]));
        let broker = recv(
            "q",
            seq([request(3, None, send("w", eps())), choose([("a", eps())])]),
        );
        let mut repo = Repository::new();
        repo.publish("br", broker);
        repo.publish("goodleaf", recv("w", eps()));
        repo.publish("badleaf", recv("zzz", eps()));
        let report = verify(&client, &repo, &PolicyRegistry::new()).unwrap();
        let valid: Vec<&Plan> = report.valid_plans().collect();
        assert_eq!(valid.len(), 1);
        assert_eq!(
            valid[0].service_for(RequestId::new(3)),
            Some(&Location::new("goodleaf"))
        );
    }

    #[test]
    fn ill_formed_client_is_an_error() {
        let err = verify(
            &Hist::mu("h", Hist::var("h")),
            &Repository::new(),
            &PolicyRegistry::new(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::IllFormedClient(_)));
        assert!(err.to_string().contains("ill-formed client"));
    }

    #[test]
    fn verdict_display() {
        let v = Violation::UnboundRequest {
            request: RequestId::new(7),
        };
        assert_eq!(v.to_string(), "request r7 is not bound by the plan");
    }
}
