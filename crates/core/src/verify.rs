//! The verification pipeline (§4–§5): from a client and a repository to
//! the set of **valid plans**.
//!
//! For each candidate plan the verifier checks:
//!
//! 1. **Compliance** (§4): for every request `open_{r,φ} H₁ close_{r,φ}`
//!    of the composed service, `H₁! ⊢ H₂!` where `H₂` is the service the
//!    plan selects for `r` — decided by Theorem 1's product automaton;
//! 2. **Security** (§3.1): the symbolic state space of the client under
//!    the plan is model-checked against every policy it activates;
//! 3. **Progress**: no stuck configuration is reachable (this subsumes
//!    per-request compliance but also covers unbound requests and
//!    cross-session blocking, and produces scheduler-level witnesses).
//!
//! A plan passing all three is *valid*: "switch off any run-time
//! monitor, and live happily: nothing bad will happen" (§5).
//!
//! # Synthesis modes
//!
//! [`synthesize`] is the engine behind [`verify`] / [`verify_with_cap`]
//! and adds three orthogonal accelerations over the naive
//! enumerate-then-verify loop, controlled by [`SynthesisOptions`]:
//!
//! * **caching** — a [`VerifyCache`] memoizes contract projection,
//!   pairwise compliance, and the per-plan security/progress checks, so
//!   an `r`-request, `s`-service plan space pays for `O(r·s)` product
//!   automata instead of `O(r·sʳ)`;
//! * **pruning** — enumeration and verification interleave: the moment a
//!   binding `r ↦ ℓ` fails its pairwise compliance check, the whole
//!   subtree of plans extending it is cut. Pruning on compliance alone
//!   is *sound* (the failing pair is re-checked in every completion, so
//!   every plan in the subtree would be rejected anyway); pruning on
//!   policy verdicts would not be, because policies are history-dependent
//!   and a violating session may be unreachable in a larger composition.
//!   Pruning is automatically disabled when the same request identifier
//!   occurs with two structurally different bodies (the composed body
//!   would then be ambiguous at cut time);
//! * **parallelism** — independent subtrees run on the in-tree
//!   work-stealing [`WorkPool`], with results merged in a deterministic
//!   (plan-sorted) order regardless of schedule.
//!
//! With pruning off, the report is **identical** to the sequential seed
//! pipeline's. With pruning on, the *valid* plan set is identical, while
//! compliance-rejected plans may be cut before they reach the report
//! (their verdicts are exactly the ones the pruned pairwise check
//! already decided).

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::cache::{CacheStats, CompositionId, VerifyCache};
use crate::plans::{
    composed_requests, enumerate_plans, expand_frontier, search, PlanSpaceExceeded, SearchNode,
    DEFAULT_PLAN_CAP,
};
use crate::pool::WorkPool;
use crate::product::ProductInfo;
use crate::report::VerifyReport;
use sufs_contract::{compliant, Contract, ContractError, StuckWitness};
use sufs_hexpr::requests::requests;
use sufs_hexpr::wf::{self, WfError};
use sufs_hexpr::{Hist, Location, RequestId};
use sufs_net::symbolic::{find_stuck, symbolic_successors, StuckState, SymState};
use sufs_net::{Plan, Repository};
use sufs_policy::validity::{check_validity, SecurityViolation, ValidityError, Verdict};
use sufs_policy::PolicyRegistry;

/// The default bound on symbolic states explored per plan.
pub const DEFAULT_STATE_BOUND: usize = 1 << 18;

/// One reason a plan is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A request has no binding in the plan (the composition is not even
    /// executable).
    UnboundRequest {
        /// The unbound request.
        request: RequestId,
    },
    /// A request is bound to a location the repository does not publish,
    /// so the plan can never be executed against this repository.
    UnknownLocation {
        /// The request bound to a missing service.
        request: RequestId,
        /// The location the plan names but the repository lacks.
        location: Location,
    },
    /// The client side of a request and the selected service are not
    /// compliant (Definition 4 fails, with a Theorem 1 witness).
    NonCompliant {
        /// The request whose session may get stuck.
        request: RequestId,
        /// The selected service.
        service: Location,
        /// The product-automaton counterexample.
        witness: StuckWitness,
    },
    /// A reachable history violates an active security policy.
    Security(SecurityViolation),
    /// A stuck configuration is reachable in the composed execution.
    Stuck(StuckState),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnboundRequest { request } => {
                write!(f, "request {request} is not bound by the plan")
            }
            Violation::UnknownLocation { request, location } => {
                write!(
                    f,
                    "request {request} is bound to {location}, which is not in the repository"
                )
            }
            Violation::NonCompliant {
                request,
                service,
                witness,
            } => write!(f, "request {request} vs {service}: {witness}"),
            Violation::Security(v) => write!(f, "{v}"),
            Violation::Stuck(s) => write!(f, "{s}"),
        }
    }
}

impl Violation {
    /// Returns `true` for the two "the plan does not even name a real
    /// service" violations, which make a reported stuck state redundant.
    fn is_binding_failure(&self) -> bool {
        matches!(
            self,
            Violation::UnboundRequest { .. } | Violation::UnknownLocation { .. }
        )
    }
}

/// The verdict for one candidate plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanVerdict {
    /// The plan.
    pub plan: Plan,
    /// Every violation found (empty ⟺ the plan is valid).
    pub violations: Vec<Violation>,
}

impl PlanVerdict {
    /// Returns `true` if the plan is valid.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An error preventing verification from running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The client is not a well-formed history expression.
    IllFormedClient(WfError),
    /// A projection failed to yield a contract (ill-formed service).
    Contract(ContractError),
    /// Validity checking failed (unknown policy or state explosion).
    Validity(ValidityError),
    /// Too many candidate plans.
    PlanSpace(PlanSpaceExceeded),
    /// Symbolic exploration exceeded the state bound.
    BoundExceeded(usize),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::IllFormedClient(e) => write!(f, "ill-formed client: {e}"),
            VerifyError::Contract(e) => write!(f, "{e}"),
            VerifyError::Validity(e) => write!(f, "{e}"),
            VerifyError::PlanSpace(e) => write!(f, "{e}"),
            VerifyError::BoundExceeded(b) => {
                write!(f, "symbolic exploration exceeded {b} states")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ContractError> for VerifyError {
    fn from(e: ContractError) -> Self {
        VerifyError::Contract(e)
    }
}

impl From<ValidityError> for VerifyError {
    fn from(e: ValidityError) -> Self {
        VerifyError::Validity(e)
    }
}

impl From<PlanSpaceExceeded> for VerifyError {
    fn from(e: PlanSpaceExceeded) -> Self {
        VerifyError::PlanSpace(e)
    }
}

/// Memoized-or-direct contract projection.
pub(crate) fn contract_of(
    cache: Option<&VerifyCache>,
    h: &Hist,
) -> Result<Contract, ContractError> {
    match cache {
        Some(c) => c.contract_of(h),
        None => Contract::from_service(h),
    }
}

/// Memoized-or-direct pairwise compliance witness.
pub(crate) fn witness_of(
    cache: Option<&VerifyCache>,
    client: &Contract,
    server: &Contract,
) -> Option<StuckWitness> {
    match cache {
        Some(c) => c.compliance_witness(client, server),
        None => compliant(client, server).witness().cloned(),
    }
}

/// A per-run memo of compliance witnesses keyed by `(request,
/// location)`. Within one synthesis run a request's body and a
/// location's service are fixed, so the witness for a binding can be
/// computed once and shared by every candidate plan that repeats it —
/// an `O(1)` integer-and-location lookup per binding instead of
/// re-hashing the full histories and contracts per candidate, which at
/// small contract sizes costs as much as recomputing the product.
///
/// Keying by request *id* matches the semantics the rest of the
/// pipeline already commits to: [`Plan`] binds ids to locations and
/// [`composed_requests`] deduplicates by id, so a run never attributes
/// two bodies to one id. Deliberately run-scoped (never stored in the
/// long-lived [`VerifyCache`]): an entry's validity depends on the body
/// of a possibly *brokered* request, which lives at a different
/// location than the one in the key, so location-keyed invalidation
/// could not evict it soundly across repository mutations.
pub(crate) struct ComplianceMemo {
    map: std::sync::Mutex<HashMap<(RequestId, Location), Option<StuckWitness>>>,
}

impl ComplianceMemo {
    pub(crate) fn new() -> Self {
        ComplianceMemo {
            map: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// The memoized witness for `key`, computing (outside the lock —
    /// parallel workers may race to duplicate work, never to block) on
    /// first sight.
    fn witness<F>(
        &self,
        key: (RequestId, Location),
        compute: F,
    ) -> Result<Option<StuckWitness>, VerifyError>
    where
        F: FnOnce() -> Result<Option<StuckWitness>, VerifyError>,
    {
        if let Some(w) = self.map.lock().unwrap().get(&key) {
            return Ok(w.clone());
        }
        let w = compute()?;
        self.map.lock().unwrap().insert(key, w.clone());
        Ok(w)
    }
}

/// The three per-plan checks, optionally served from `cache`. The
/// caller is responsible for the (per-client, not per-plan)
/// well-formedness check. `comp` is the composition interned once per
/// run (hot loops pass it so the deep client expression is never
/// re-hashed per candidate), `memo` the run's compliance memo (same
/// idea, for the pairwise witnesses); one-shot callers pass `None`.
///
/// `per_plan` gates the plan-keyed validity/progress memo layers: a
/// bulk run over a *run-local* cache enumerates each plan exactly
/// once, so those layers could never hit and their insertions would be
/// pure overhead — callers with a caller-owned long-lived cache pass
/// `true`, bulk runs over a local cache pass `false`.
#[allow(clippy::too_many_arguments)] // run-scoped context, all call sites are crate-internal
pub(crate) fn check_plan(
    client: &Hist,
    comp: Option<CompositionId>,
    plan: &Plan,
    repo: &Repository,
    registry: &PolicyRegistry,
    cache: Option<&VerifyCache>,
    memo: Option<&ComplianceMemo>,
    per_plan: bool,
) -> Result<PlanVerdict, VerifyError> {
    let mut violations = Vec::new();

    // 1. Per-request compliance (client request bodies and the requests
    //    exposed by selected services alike).
    for (info, bound) in composed_requests(client, plan, repo) {
        let Some(service_loc) = bound else {
            violations.push(Violation::UnboundRequest { request: info.id });
            continue;
        };
        let Some(service) = repo.get(&service_loc) else {
            violations.push(Violation::UnknownLocation {
                request: info.id,
                location: service_loc,
            });
            continue;
        };
        let pair = || -> Result<Option<StuckWitness>, VerifyError> {
            let client_side = contract_of(cache, &info.body)?;
            let server_side = contract_of(cache, service)?;
            Ok(witness_of(cache, &client_side, &server_side))
        };
        let witness = match memo {
            Some(m) => m.witness((info.id, service_loc.clone()), pair)?,
            None => pair()?,
        };
        if let Some(witness) = witness {
            violations.push(Violation::NonCompliant {
                request: info.id,
                service: service_loc,
                witness,
            });
        }
    }

    // 2. Security: model-check the symbolic state space.
    let run_validity = || {
        check_validity(
            SymState::initial("client", client.clone()),
            |s| symbolic_successors(s, plan, repo),
            registry,
            DEFAULT_STATE_BOUND,
        )
    };
    let verdict = match (cache.filter(|_| per_plan), comp) {
        (Some(c), Some(id)) => c.validity_interned(id, plan, run_validity)?,
        (Some(c), None) => c.validity(client, plan, run_validity)?,
        (None, _) => run_validity()?,
    };
    if let Verdict::Violation(v) = verdict {
        violations.push(Violation::Security(v));
    }

    // 3. Progress: no reachable stuck configuration.
    let run_progress = || find_stuck("client", client.clone(), plan, repo, DEFAULT_STATE_BOUND);
    let progress = match (cache.filter(|_| per_plan), comp) {
        (Some(c), Some(id)) => c.progress_interned(id, plan, run_progress),
        (Some(c), None) => c.progress(client, plan, run_progress),
        (None, _) => run_progress(),
    };
    match progress {
        Ok(Some(stuck)) => {
            // Missing bindings already reported more precisely.
            let already = violations.iter().any(Violation::is_binding_failure);
            if !already {
                violations.push(Violation::Stuck(stuck));
            }
        }
        Ok(None) => {}
        Err(bound) => return Err(VerifyError::BoundExceeded(bound)),
    }

    Ok(PlanVerdict {
        plan: plan.clone(),
        violations,
    })
}

/// Verifies one candidate plan for `client` (at the implicit location
/// `client`); see the module docs for the three checks performed.
///
/// # Errors
///
/// Returns a [`VerifyError`] if the inputs are ill-formed or a policy
/// cannot be resolved — as opposed to the plan merely being invalid,
/// which is reported in the verdict.
pub fn verify_plan(
    client: &Hist,
    plan: &Plan,
    repo: &Repository,
    registry: &PolicyRegistry,
) -> Result<PlanVerdict, VerifyError> {
    verify_plan_with(client, plan, repo, registry, None)
}

/// [`verify_plan`] against a caller-owned [`VerifyCache`]: the per-plan
/// entry point behind the incremental lint engine, which splices
/// memoized verdicts and re-verifies only the plans whose bound
/// locations changed. Verdict-identical to routing the plan through
/// [`synthesize_with`] under the same cache.
///
/// # Errors
///
/// As [`verify_plan`].
pub fn verify_plan_with(
    client: &Hist,
    plan: &Plan,
    repo: &Repository,
    registry: &PolicyRegistry,
    cache: Option<&VerifyCache>,
) -> Result<PlanVerdict, VerifyError> {
    wf::check(client).map_err(VerifyError::IllFormedClient)?;
    check_plan(client, None, plan, repo, registry, cache, None, true)
}

/// Which synthesis engine answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Walk the candidate plan space and verify each plan: the paper's
    /// literal §5 procedure, kept as the differential oracle.
    #[default]
    Enumerative,
    /// Read plans off the composed product ([`crate::product`]),
    /// building or incrementally patching it first if the repository
    /// or registry state moved.
    Compositional,
}

impl Engine {
    /// Parses the CLI/wire spelling (`enumerative` / `compositional`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "enumerative" => Some(Engine::Enumerative),
            "compositional" => Some(Engine::Compositional),
            _ => None,
        }
    }

    /// The CLI/wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Enumerative => "enumerative",
            Engine::Compositional => "compositional",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Tuning knobs for [`synthesize`]; the default configuration matches
/// the behaviour of [`verify`] exactly (sequential, cached, no pruning,
/// enumerative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisOptions {
    /// Cap on candidate plans (distinct plans in unpruned mode,
    /// surviving candidates in pruned and compositional modes).
    pub plan_cap: usize,
    /// Worker threads; `0` means the machine's available parallelism,
    /// `1` (the default) runs inline.
    pub jobs: usize,
    /// Memoize contract projection, compliance, and per-plan checks.
    pub cache: bool,
    /// Cut subtrees on pairwise compliance failures (see module docs for
    /// when this is sound and when it auto-disables).
    pub prune: bool,
    /// Seed for the pool's steal sequence (reproducibility knob; never
    /// affects results).
    pub seed: u64,
    /// The engine answering the query (see [`Engine`]).
    pub engine: Engine,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            plan_cap: DEFAULT_PLAN_CAP,
            jobs: 1,
            cache: true,
            prune: false,
            seed: 0,
            engine: Engine::Enumerative,
        }
    }
}

/// Instrumentation from one [`synthesize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthStats {
    /// Candidate plans actually verified.
    pub candidates: usize,
    /// Subtrees cut by the compliance prune.
    pub pruned_subtrees: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Whether pruning was requested *and* sound for these inputs.
    pub prune_active: bool,
    /// Cache counters, if caching was enabled.
    pub cache: Option<CacheStats>,
    /// The engine that answered the query.
    pub engine: Engine,
    /// Product instrumentation, when the compositional engine answered.
    pub product: Option<ProductInfo>,
    /// Wall-clock time of the whole synthesis.
    pub elapsed: Duration,
}

impl fmt::Display for SynthStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} candidates in {:?} ({} jobs, {} subtrees pruned",
            self.candidates, self.elapsed, self.jobs, self.pruned_subtrees
        )?;
        match &self.cache {
            Some(stats) => write!(f, ", cache: {stats})"),
            None => write!(f, ", cache off)"),
        }
    }
}

/// A verification report plus the instrumentation of the run.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The per-plan verdicts (sorted by plan).
    pub report: VerifyReport,
    /// Run instrumentation.
    pub stats: SynthStats,
}

/// The per-request body map used by the prune predicate, or `None` when
/// pruning would be unsound: compliance pruning commits to *the* body of
/// request `r` at cut time, so every occurrence of an identifier (in the
/// client or any published service) must carry a structurally identical
/// body.
pub(crate) fn prune_safe_bodies(
    client: &Hist,
    repo: &Repository,
) -> Option<HashMap<RequestId, Hist>> {
    let mut map: HashMap<RequestId, Hist> = HashMap::new();
    let all = requests(client).into_iter().chain(
        repo.iter()
            .flat_map(|(_, service)| requests(service).into_iter()),
    );
    for info in all {
        match map.entry(info.id) {
            Entry::Vacant(e) => {
                e.insert(info.body);
            }
            Entry::Occupied(e) => {
                if e.get() != &info.body {
                    return None;
                }
            }
        }
    }
    Some(map)
}

/// Interleaved enumerate-and-verify over pool workers; see module docs.
fn synth_pruned(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    cache: Option<&VerifyCache>,
    pool: &WorkPool,
    cap: usize,
    per_plan: bool,
) -> Result<(Vec<PlanVerdict>, usize, bool), VerifyError> {
    let bodies = prune_safe_bodies(client, repo);
    let prune_active = bodies.is_some();
    let comp = cache.map(|c| c.intern(client));
    let memo = cache.map(|_| ComplianceMemo::new());
    let prune = |_plan: &Plan, r: RequestId, loc: &Location| -> bool {
        let Some(bodies) = &bodies else { return false };
        let Some(body) = bodies.get(&r) else {
            return false;
        };
        let Some(service) = repo.get(loc) else {
            return false;
        };
        // A projection error must surface through full verification, so
        // it never prunes.
        let Ok(client_side) = contract_of(cache, body) else {
            return false;
        };
        let Ok(server_side) = contract_of(cache, service) else {
            return false;
        };
        witness_of(cache, &client_side, &server_side).is_some()
    };

    // Seed enough independent subtrees to keep every worker busy.
    let (frontier, complete, mut pruned) = expand_frontier(
        client,
        repo,
        pool.jobs().saturating_mul(4),
        &mut |p, r, l| prune(p, r, l),
    );

    enum Unit {
        Done(Plan),
        Subtree(SearchNode),
    }
    let units: Vec<Unit> = complete
        .into_iter()
        .map(Unit::Done)
        .chain(frontier.into_iter().map(Unit::Subtree))
        .collect();

    // Surviving candidates across all workers count toward the cap; the
    // counter makes "over cap" deterministic even though *which* worker
    // observes the overflow is not.
    let emitted = AtomicUsize::new(0);
    let results = pool.run(
        units.len(),
        |i| -> Result<(Vec<PlanVerdict>, usize), VerifyError> {
            match &units[i] {
                Unit::Done(plan) => {
                    if emitted.fetch_add(1, Ordering::Relaxed) >= cap {
                        return Err(VerifyError::PlanSpace(PlanSpaceExceeded { cap }));
                    }
                    check_plan(
                        client,
                        comp,
                        plan,
                        repo,
                        registry,
                        cache,
                        memo.as_ref(),
                        per_plan,
                    )
                    .map(|v| (vec![v], 0))
                }
                Unit::Subtree(node) => {
                    let mut verdicts = Vec::new();
                    let mut error: Option<VerifyError> = None;
                    let cut = search(
                        node.clone(),
                        repo,
                        &mut |p, r, l| prune(p, r, l),
                        &mut |plan| {
                            if emitted.fetch_add(1, Ordering::Relaxed) >= cap {
                                return Err(PlanSpaceExceeded { cap });
                            }
                            match check_plan(
                                client,
                                comp,
                                &plan,
                                repo,
                                registry,
                                cache,
                                memo.as_ref(),
                                per_plan,
                            ) {
                                Ok(v) => {
                                    verdicts.push(v);
                                    Ok(())
                                }
                                Err(e) => {
                                    // Abort this subtree; the real error is
                                    // restored below.
                                    error = Some(e);
                                    Err(PlanSpaceExceeded { cap })
                                }
                            }
                        },
                    );
                    match (cut, error) {
                        (_, Some(e)) => Err(e),
                        (Err(e), None) => Err(VerifyError::PlanSpace(e)),
                        (Ok(c), None) => Ok((verdicts, c)),
                    }
                }
            }
        },
    );

    // A cap overflow mirrors the sequential pipeline (which fails during
    // enumeration, before any other error can surface), so it wins over
    // per-plan errors; ties otherwise break by unit index.
    if results
        .iter()
        .any(|r| matches!(r, Err(VerifyError::PlanSpace(_))))
    {
        return Err(VerifyError::PlanSpace(PlanSpaceExceeded { cap }));
    }
    let mut merged: BTreeMap<Plan, PlanVerdict> = BTreeMap::new();
    for result in results {
        let (verdicts, cut) = result?;
        pruned += cut;
        for v in verdicts {
            merged.insert(v.plan.clone(), v);
        }
    }
    Ok((merged.into_values().collect(), pruned, prune_active))
}

/// Plan synthesis with pruning, caching, and parallelism per `opts`;
/// the engine behind [`verify`] and `sufs verify`.
///
/// Determinism: for fixed inputs and options the returned report is
/// identical run over run, whatever the thread schedule — verdicts are
/// merged in plan-sorted order and the cache only memoizes pure
/// functions of its keys.
///
/// # Errors
///
/// As [`verify`]; see the module docs for how pruned mode reports the
/// plan cap.
pub fn synthesize(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    opts: &SynthesisOptions,
) -> Result<Synthesis, VerifyError> {
    synthesize_with(client, repo, registry, opts, None)
}

/// [`synthesize`] against a caller-owned, long-lived [`VerifyCache`]:
/// the broker's re-synthesis path. With `opts.cache` set and a `shared`
/// cache supplied, memo entries survive across calls — the caller is
/// responsible for soundness by invalidating on every repository
/// mutation ([`VerifyCache::invalidate_location`]) and registry
/// mutation ([`VerifyCache::invalidate_registry`]), and for never
/// sharing one cache across unrelated registries. The reported cache
/// stats are the *delta* attributable to this call, so hit rates stay
/// meaningful run over run.
///
/// # Errors
///
/// As [`synthesize`].
pub fn synthesize_with(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    opts: &SynthesisOptions,
    shared: Option<&VerifyCache>,
) -> Result<Synthesis, VerifyError> {
    if opts.engine == Engine::Compositional {
        // One-shot product build; long-lived callers (the broker) keep
        // a `ProductStore` of their own and query it directly.
        return crate::product::synthesize_one_shot(client, repo, registry, opts, shared);
    }
    let start = Instant::now();
    wf::check(client).map_err(VerifyError::IllFormedClient)?;
    let local;
    let (cache, mark) = if !opts.cache {
        (None, None)
    } else if let Some(shared) = shared {
        (Some(shared), Some(shared.stats()))
    } else {
        local = VerifyCache::new();
        (Some(&local), None)
    };
    let pool = WorkPool::with_seed(opts.jobs, opts.seed);

    // A run-local cache dies with this call, and a bulk run checks
    // each enumerated plan exactly once — its plan-keyed layers could
    // never hit, so they are only maintained for caller-owned caches.
    let per_plan = shared.is_some();
    let (verdicts, pruned_subtrees, prune_active) = if opts.prune {
        synth_pruned(
            client,
            repo,
            registry,
            cache,
            &pool,
            opts.plan_cap,
            per_plan,
        )?
    } else {
        let comp = cache.map(|c| c.intern(client));
        let memo = cache.map(|_| ComplianceMemo::new());
        let plans = enumerate_plans(client, repo, opts.plan_cap)?;
        let results = pool.run(plans.len(), |i| {
            check_plan(
                client,
                comp,
                &plans[i],
                repo,
                registry,
                cache,
                memo.as_ref(),
                per_plan,
            )
        });
        let mut verdicts = Vec::with_capacity(results.len());
        for result in results {
            verdicts.push(result?);
        }
        (verdicts, 0, false)
    };

    let stats = SynthStats {
        candidates: verdicts.len(),
        pruned_subtrees,
        jobs: pool.jobs(),
        prune_active,
        cache: cache.map(|c| match &mark {
            Some(mark) => c.stats().since(mark),
            None => c.stats(),
        }),
        engine: Engine::Enumerative,
        product: None,
        elapsed: start.elapsed(),
    };
    Ok(Synthesis {
        report: VerifyReport::new(verdicts),
        stats,
    })
}

/// Verifies every candidate plan for `client` over `repo`: the paper's
/// §5 procedure. The resulting report lists the valid plans and, for
/// each rejected plan, why it was rejected.
///
/// # Errors
///
/// Returns a [`VerifyError`] on ill-formed inputs, unresolvable
/// policies, or state/plan-space explosion.
///
/// # Examples
///
/// ```
/// use sufs_core::verify::verify;
/// use sufs_hexpr::builder::*;
/// use sufs_net::Repository;
/// use sufs_policy::PolicyRegistry;
///
/// let client = request(1, None, seq([
///     send("req", eps()),
///     offer([("ok", eps()), ("no", eps())]),
/// ]));
/// let mut repo = Repository::new();
/// repo.publish("good", recv("req", choose([("ok", eps()), ("no", eps())])));
/// repo.publish("bad", recv("req", choose([("later", eps())])));
///
/// let report = verify(&client, &repo, &PolicyRegistry::new()).unwrap();
/// let valid: Vec<_> = report.valid_plans().collect();
/// assert_eq!(valid.len(), 1);
/// ```
pub fn verify(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
) -> Result<VerifyReport, VerifyError> {
    verify_with_cap(client, repo, registry, DEFAULT_PLAN_CAP)
}

/// [`verify`] with an explicit cap on the number of candidate plans.
///
/// # Errors
///
/// As [`verify`], plus [`VerifyError::PlanSpace`] past the cap.
pub fn verify_with_cap(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    plan_cap: usize,
) -> Result<VerifyReport, VerifyError> {
    let opts = SynthesisOptions {
        plan_cap,
        ..SynthesisOptions::default()
    };
    Ok(synthesize(client, repo, registry, &opts)?.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::ParamValue;
    use sufs_hexpr::PolicyRef;
    use sufs_policy::catalog;

    fn booking_client(policy: Option<PolicyRef>) -> Hist {
        request(
            1,
            policy,
            seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
        )
    }

    #[test]
    fn valid_and_invalid_plans_separated() {
        let mut repo = Repository::new();
        repo.publish("good", recv("req", choose([("ok", eps()), ("no", eps())])));
        repo.publish(
            "bad",
            recv("req", choose([("ok", eps()), ("later", eps())])),
        );
        let report = verify(&booking_client(None), &repo, &PolicyRegistry::new()).unwrap();
        assert_eq!(report.len(), 2);
        let valid: Vec<&Plan> = report.valid_plans().collect();
        assert_eq!(valid.len(), 1);
        assert_eq!(
            valid[0].service_for(RequestId::new(1)),
            Some(&Location::new("good"))
        );
        let rejected: Vec<&PlanVerdict> = report.rejected().collect();
        assert_eq!(rejected.len(), 1);
        assert!(matches!(
            rejected[0].violations[0],
            Violation::NonCompliant { .. }
        ));
        // The angelic symbolic exploration alone would *not* catch this
        // (the bad `later` send is simply never scheduled): the product
        // automaton is the decisive check, exactly the paper's point
        // about its semantics being angelic.
        assert!(!rejected[0]
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Stuck(_))));
    }

    #[test]
    fn security_violation_rejects_plan() {
        let mut registry = PolicyRegistry::new();
        registry.register(catalog::blacklist("access"));
        let phi = PolicyRef::new("blacklist_access", [ParamValue::set(["evil"])]);
        let client = booking_client(Some(phi));
        let mut repo = Repository::new();
        // This service touches the black-listed resource before replying.
        repo.publish(
            "shady",
            recv(
                "req",
                seq([
                    ev("access", ["evil"]),
                    choose([("ok", eps()), ("no", eps())]),
                ]),
            ),
        );
        repo.publish(
            "clean",
            recv(
                "req",
                seq([
                    ev("access", ["fine"]),
                    choose([("ok", eps()), ("no", eps())]),
                ]),
            ),
        );
        let report = verify(&client, &repo, &registry).unwrap();
        let valid: Vec<&Plan> = report.valid_plans().collect();
        assert_eq!(valid.len(), 1);
        assert_eq!(
            valid[0].service_for(RequestId::new(1)),
            Some(&Location::new("clean"))
        );
        let shady_verdict = report
            .verdicts()
            .iter()
            .find(|v| v.plan.service_for(RequestId::new(1)) == Some(&Location::new("shady")))
            .unwrap();
        assert!(shady_verdict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Security(_))));
    }

    #[test]
    fn unbound_request_reported() {
        let client = booking_client(None);
        let verdict = verify_plan(
            &client,
            &Plan::new(),
            &Repository::new(),
            &PolicyRegistry::new(),
        )
        .unwrap();
        assert!(!verdict.is_valid());
        assert_eq!(
            verdict.violations,
            vec![Violation::UnboundRequest {
                request: RequestId::new(1)
            }]
        );
        assert!(verdict.violations[0].to_string().contains("r1"));
    }

    #[test]
    fn unknown_location_distinguished_from_unbound() {
        // The plan names a location, but nobody publishes it: that is a
        // different defect from not binding the request at all, and the
        // report must say so.
        let client = booking_client(None);
        let plan = Plan::new().with(1u32, "ghost");
        let verdict =
            verify_plan(&client, &plan, &Repository::new(), &PolicyRegistry::new()).unwrap();
        assert!(!verdict.is_valid());
        assert_eq!(
            verdict.violations,
            vec![Violation::UnknownLocation {
                request: RequestId::new(1),
                location: Location::new("ghost"),
            }]
        );
        let msg = verdict.violations[0].to_string();
        assert!(msg.contains("ghost"), "message was: {msg}");
        assert!(msg.contains("not in the repository"), "message was: {msg}");
        // The unbound message is unchanged and distinct.
        let unbound = verify_plan(
            &client,
            &Plan::new(),
            &Repository::new(),
            &PolicyRegistry::new(),
        )
        .unwrap();
        assert_ne!(unbound.violations, verdict.violations);
    }

    #[test]
    fn unknown_location_suppresses_redundant_stuck() {
        // Like UnboundRequest, an UnknownLocation explains the stuck
        // composition on its own: no Stuck violation is piled on top.
        let client = booking_client(None);
        let plan = Plan::new().with(1u32, "ghost");
        let verdict =
            verify_plan(&client, &plan, &Repository::new(), &PolicyRegistry::new()).unwrap();
        assert!(!verdict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Stuck(_))));
    }

    #[test]
    fn nested_request_compliance_checked() {
        // client → broker → leaf; the broker's own conversation with the
        // leaf must be compliant too.
        let client = request(1, None, seq([send("q", eps()), offer([("a", eps())])]));
        let broker = recv(
            "q",
            seq([request(3, None, send("w", eps())), choose([("a", eps())])]),
        );
        let mut repo = Repository::new();
        repo.publish("br", broker);
        repo.publish("goodleaf", recv("w", eps()));
        repo.publish("badleaf", recv("zzz", eps()));
        let report = verify(&client, &repo, &PolicyRegistry::new()).unwrap();
        let valid: Vec<&Plan> = report.valid_plans().collect();
        assert_eq!(valid.len(), 1);
        assert_eq!(
            valid[0].service_for(RequestId::new(3)),
            Some(&Location::new("goodleaf"))
        );
    }

    #[test]
    fn ill_formed_client_is_an_error() {
        let err = verify(
            &Hist::mu("h", Hist::var("h")),
            &Repository::new(),
            &PolicyRegistry::new(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::IllFormedClient(_)));
        assert!(err.to_string().contains("ill-formed client"));
    }

    #[test]
    fn verdict_display() {
        let v = Violation::UnboundRequest {
            request: RequestId::new(7),
        };
        assert_eq!(v.to_string(), "request r7 is not bound by the plan");
        let v = Violation::UnknownLocation {
            request: RequestId::new(7),
            location: Location::new("ghost"),
        };
        assert_eq!(
            v.to_string(),
            "request r7 is bound to ghost, which is not in the repository"
        );
    }

    fn mixed_repo() -> (Hist, Repository) {
        let client = Hist::seq(
            booking_client(None),
            request(
                2,
                None,
                seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
            ),
        );
        let mut repo = Repository::new();
        repo.publish("good1", recv("req", choose([("ok", eps()), ("no", eps())])));
        repo.publish("good2", recv("req", choose([("ok", eps())])));
        repo.publish(
            "bad1",
            recv("req", choose([("ok", eps()), ("later", eps())])),
        );
        repo.publish("bad2", recv("zzz", eps()));
        (client, repo)
    }

    #[test]
    fn synthesize_modes_agree_with_sequential_verify() {
        let (client, repo) = mixed_repo();
        let registry = PolicyRegistry::new();
        let baseline = verify(&client, &repo, &registry).unwrap();
        for (jobs, cache, prune) in [
            (1, false, false),
            (1, true, false),
            (4, true, false),
            (4, false, false),
        ] {
            let opts = SynthesisOptions {
                jobs,
                cache,
                prune,
                ..SynthesisOptions::default()
            };
            let synth = synthesize(&client, &repo, &registry, &opts).unwrap();
            assert_eq!(
                synth.report.verdicts(),
                baseline.verdicts(),
                "mode (jobs={jobs}, cache={cache}, prune={prune}) diverged"
            );
        }
        // Pruned modes agree on the *valid* set (rejected plans may be
        // cut before verification).
        for jobs in [1, 4] {
            let opts = SynthesisOptions {
                jobs,
                prune: true,
                ..SynthesisOptions::default()
            };
            let synth = synthesize(&client, &repo, &registry, &opts).unwrap();
            assert!(synth.stats.prune_active);
            assert!(synth.stats.pruned_subtrees > 0);
            let pruned_valid: Vec<&Plan> = synth.report.valid_plans().collect();
            let baseline_valid: Vec<&Plan> = baseline.valid_plans().collect();
            assert_eq!(
                pruned_valid, baseline_valid,
                "pruned (jobs={jobs}) diverged"
            );
        }
    }

    #[test]
    fn shared_cache_with_invalidation_tracks_repo_mutations() {
        use crate::cache::VerifyCache;
        // A long-lived cache over a mutating repository must keep
        // agreeing with a fresh-cache run, provided every mutation is
        // followed by the matching invalidation — the broker's loop.
        let (client, mut repo) = mixed_repo();
        let registry = PolicyRegistry::new();
        let shared = VerifyCache::new();
        let opts = SynthesisOptions::default();
        let first = synthesize_with(&client, &repo, &registry, &opts, Some(&shared)).unwrap();
        assert_eq!(
            first.report.verdicts(),
            verify(&client, &repo, &registry).unwrap().verdicts()
        );
        // Retract a load-bearing service; evict its verdicts.
        let ev = repo.retract(&Location::new("good1"));
        assert!(ev.changed());
        shared.invalidate_location(&Location::new("good1"));
        let second = synthesize_with(&client, &repo, &registry, &opts, Some(&shared)).unwrap();
        assert_eq!(
            second.report.verdicts(),
            verify(&client, &repo, &registry).unwrap().verdicts()
        );
        // Republish it (update path) and invalidate again: back to the
        // original verdict set, still via the same cache.
        repo.publish("good1", recv("req", choose([("ok", eps()), ("no", eps())])));
        shared.invalidate_location(&Location::new("good1"));
        let third = synthesize_with(&client, &repo, &registry, &opts, Some(&shared)).unwrap();
        assert_eq!(third.report.verdicts(), first.report.verdicts());
        // The per-call stats are deltas: the third run re-verifies only
        // what the invalidation dropped, so it sees hits too.
        let stats = third.stats.cache.unwrap();
        assert!(stats.hits() > 0, "shared cache produced no hits");
        assert!(shared.stats().evictions > 0);
    }

    #[test]
    fn cache_hits_accumulate_across_plans() {
        let (client, repo) = mixed_repo();
        let registry = PolicyRegistry::new();
        let opts = SynthesisOptions::default();
        let shared = VerifyCache::new();
        let synth = synthesize_with(&client, &repo, &registry, &opts, Some(&shared)).unwrap();
        let stats = synth.stats.cache.expect("cache enabled by default");
        // The run-level compliance memo shares witnesses across the 16
        // candidate plans, so the cache sees each of the 2×4 bindings at
        // most once: O(r·s) lookups, not O(r·sʳ).
        let contract_lookups = stats.contract.0 + stats.contract.1;
        assert!(
            contract_lookups <= 16,
            "per-candidate contract lookups are back: {contract_lookups}"
        );
        assert!(synth.stats.to_string().contains("cache"));
        // Across runs the shared cache is the carrier: a rerun hits on
        // every memoized validity/progress verdict.
        let rerun = synthesize_with(&client, &repo, &registry, &opts, Some(&shared)).unwrap();
        let stats = rerun.stats.cache.expect("cache enabled by default");
        assert!(stats.hit_rate() > 0.5, "hit rate was {}", stats.hit_rate());
    }

    #[test]
    fn pruning_disabled_when_bodies_ambiguous() {
        // The same request id appears with two different bodies: pruning
        // must auto-disable and fall back to full verification.
        let client = request(1, None, send("q", eps()));
        let mut repo = Repository::new();
        repo.publish(
            "br",
            Hist::seq(recv("q", eps()), request(1, None, send("w", eps()))),
        );
        assert!(prune_safe_bodies(&client, &repo).is_none());
        let opts = SynthesisOptions {
            prune: true,
            ..SynthesisOptions::default()
        };
        let synth = synthesize(&client, &repo, &PolicyRegistry::new(), &opts).unwrap();
        assert!(!synth.stats.prune_active);
        assert_eq!(synth.stats.pruned_subtrees, 0);
        let baseline = verify(&client, &repo, &PolicyRegistry::new()).unwrap();
        assert_eq!(synth.report.verdicts(), baseline.verdicts());
    }

    #[test]
    fn pruned_mode_still_enforces_the_cap() {
        let (client, repo) = mixed_repo();
        // All 16 candidates survive enumeration; only 4 survive pruning
        // (2 compliant choices per request), so a cap of 4 passes in
        // pruned mode while 3 fails.
        let registry = PolicyRegistry::new();
        let ok = synthesize(
            &client,
            &repo,
            &registry,
            &SynthesisOptions {
                prune: true,
                plan_cap: 4,
                ..SynthesisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(ok.report.len(), 4);
        let err = synthesize(
            &client,
            &repo,
            &registry,
            &SynthesisOptions {
                prune: true,
                plan_cap: 3,
                ..SynthesisOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::PlanSpace(_)));
    }
}
