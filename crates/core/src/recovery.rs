//! Plan failover: precomputed chains of statically valid fallback
//! plans.
//!
//! §5 guarantees that *any* statically valid plan runs securely with
//! the monitor off — so when a bound service dies mid-run, the
//! component may re-bind to *another* valid plan and restart without
//! re-verifying anything at run time. This module computes those
//! fallback chains once, up front, from the same [`verify`] pass that
//! certified the primary plan, and packages them as the
//! [`RecoveryTable`] consumed by `sufs_net`'s scheduler.
//!
//! The recovery point is well-defined: the failed component's history
//! is Φ-closed (each dangling policy frame gets its `⌟φ`, so every
//! policy window is checked separately and the restart cannot smuggle
//! a violation across windows), its session tree is reset to the
//! original client leaf, and execution resumes under the next plan in
//! the chain that binds no dead location.

use crate::verify::{verify_with_cap, VerifyError};
use sufs_hexpr::Hist;
use sufs_net::faults::RecoveryTable;
use sufs_net::{Plan, Repository};
use sufs_policy::PolicyRegistry;

/// The default candidate-plan cap, mirroring [`crate::verify::verify`].
const DEFAULT_PLAN_CAP: usize = 10_000;

/// All statically valid plans for `client`, in the deterministic order
/// the verifier enumerates them: the head is the primary plan, the tail
/// the fallbacks.
///
/// # Errors
///
/// Returns a [`VerifyError`] if the client is ill-formed, a policy
/// cannot be resolved, or the plan space exceeds the default cap.
pub fn fallback_chain(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
) -> Result<Vec<Plan>, VerifyError> {
    fallback_chain_with_cap(client, repo, registry, DEFAULT_PLAN_CAP)
}

/// [`fallback_chain`] with an explicit cap on the candidate-plan space.
///
/// # Errors
///
/// As [`fallback_chain`].
pub fn fallback_chain_with_cap(
    client: &Hist,
    repo: &Repository,
    registry: &PolicyRegistry,
    plan_cap: usize,
) -> Result<Vec<Plan>, VerifyError> {
    let report = verify_with_cap(client, repo, registry, plan_cap)?;
    Ok(report.valid_plans().cloned().collect())
}

/// Builds the per-component [`RecoveryTable`] for a network of
/// `clients`: component `i` gets the full chain of valid plans for
/// `clients[i]`. A client with no valid plan gets an empty chain — it
/// can time out but never fail over.
///
/// # Errors
///
/// Returns the first [`VerifyError`] hit while verifying any client.
pub fn recovery_table(
    clients: &[Hist],
    repo: &Repository,
    registry: &PolicyRegistry,
) -> Result<RecoveryTable, VerifyError> {
    recovery_table_with_cap(clients, repo, registry, DEFAULT_PLAN_CAP)
}

/// [`recovery_table`] with an explicit cap on each client's plan space.
///
/// # Errors
///
/// As [`recovery_table`].
pub fn recovery_table_with_cap(
    clients: &[Hist],
    repo: &Repository,
    registry: &PolicyRegistry,
    plan_cap: usize,
) -> Result<RecoveryTable, VerifyError> {
    let mut table = RecoveryTable::new();
    for client in clients {
        table.push_chain(fallback_chain_with_cap(client, repo, registry, plan_cap)?);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;
    use sufs_hexpr::{Location, RequestId};

    fn booking_client() -> Hist {
        request(
            1,
            None,
            seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
        )
    }

    fn compliant_service() -> Hist {
        recv("req", choose([("ok", eps()), ("no", eps())]))
    }

    #[test]
    fn chain_lists_every_valid_plan_in_order() {
        let mut repo = Repository::new();
        repo.publish("s1", compliant_service());
        repo.publish("s2", compliant_service());
        repo.publish("bad", recv("req", choose([("later", eps())])));
        let chain = fallback_chain(&booking_client(), &repo, &PolicyRegistry::new()).unwrap();
        assert_eq!(chain.len(), 2);
        let bound: Vec<&Location> = chain
            .iter()
            .map(|p| p.service_for(RequestId::new(1)).unwrap())
            .collect();
        assert!(bound.contains(&&Location::new("s1")));
        assert!(bound.contains(&&Location::new("s2")));
        // Deterministic: same inputs, same order.
        let again = fallback_chain(&booking_client(), &repo, &PolicyRegistry::new()).unwrap();
        assert_eq!(chain, again);
    }

    #[test]
    fn table_has_one_chain_per_client() {
        let mut repo = Repository::new();
        repo.publish("s1", compliant_service());
        repo.publish("s2", compliant_service());
        let clients = [booking_client(), booking_client()];
        let table = recovery_table(&clients, &repo, &PolicyRegistry::new()).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.chain(0).len(), 2);
        assert_eq!(table.chain(1).len(), 2);
        // Out-of-range component: empty chain, no panic.
        assert!(table.chain(7).is_empty());
    }

    #[test]
    fn unsatisfiable_client_gets_an_empty_chain() {
        let repo = Repository::new();
        let clients = [booking_client()];
        let table = recovery_table(&clients, &repo, &PolicyRegistry::new()).unwrap();
        assert_eq!(table.len(), 1);
        assert!(table.chain(0).is_empty());
    }
}
