//! Joint verification of multi-client networks.
//!
//! Plans are verified per client (§5 considers "one of them at a time"),
//! which is sound for security — histories are per component — and for
//! compliance of unbounded services. With the §5 *bounded availability*
//! extension, however, two individually valid plans can deadlock
//! **jointly**: if client A holds the last replica of `s₁` while waiting
//! for `s₂`, and client B holds `s₂` while waiting for `s₁`, neither can
//! proceed (a classic circular wait that no single-client analysis can
//! see). [`verify_network`] therefore explores the *joint* symbolic
//! state space — the product of the components' session trees under the
//! shared load — and reports reachable global deadlocks.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use crate::verify::{verify_plan, PlanVerdict, VerifyError};
use sufs_hexpr::{Hist, Label, Location};
use sufs_net::semantics::active_services;
use sufs_net::symbolic::{symbolic_successors_with_load, SymState};
use sufs_net::{Plan, Repository};
use sufs_policy::PolicyRegistry;

/// One client of a multi-client network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSpec {
    /// The client's location (must not collide with repository names).
    pub name: Location,
    /// The client's behaviour.
    pub client: Hist,
    /// The plan orchestrating its requests.
    pub plan: Plan,
}

impl ClientSpec {
    /// Creates a client specification.
    pub fn new(name: impl Into<Location>, client: Hist, plan: Plan) -> Self {
        ClientSpec {
            name: name.into(),
            client,
            plan,
        }
    }
}

/// A reachable global deadlock of the joint exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointDeadlock {
    /// A shortest schedule to the deadlock: which component moved, with
    /// what label.
    pub path: Vec<(usize, Label)>,
    /// The indices of the components that are stuck (not terminated) at
    /// the deadlocked state.
    pub stuck_components: Vec<usize>,
}

impl fmt::Display for JointDeadlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "joint deadlock of components {:?} after [",
            self.stuck_components
        )?;
        for (i, (c, l)) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}:{l}")?;
        }
        write!(f, "]")
    }
}

/// The outcome of verifying a whole network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkReport {
    /// The per-client verdicts (security, compliance, progress).
    pub per_client: Vec<PlanVerdict>,
    /// A reachable joint deadlock, if any (capacity contention).
    pub joint_deadlock: Option<JointDeadlock>,
}

impl NetworkReport {
    /// Returns `true` when every client's plan is valid *and* no joint
    /// deadlock is reachable: the whole network may run monitor-free.
    pub fn is_valid(&self) -> bool {
        self.per_client.iter().all(PlanVerdict::is_valid) && self.joint_deadlock.is_none()
    }
}

/// Verifies a multi-client network: every client's plan individually
/// (as [`verify_plan`]) plus joint deadlock-freedom under shared
/// capacities.
///
/// # Errors
///
/// Returns a [`VerifyError`] on ill-formed inputs, unresolvable
/// policies, or when the joint product exceeds `bound` states.
pub fn verify_network(
    clients: &[ClientSpec],
    repo: &Repository,
    registry: &PolicyRegistry,
    bound: usize,
) -> Result<NetworkReport, VerifyError> {
    let mut per_client = Vec::with_capacity(clients.len());
    for spec in clients {
        per_client.push(verify_plan(&spec.client, &spec.plan, repo, registry)?);
    }
    let joint_deadlock = find_joint_deadlock(clients, repo, bound)?;
    Ok(NetworkReport {
        per_client,
        joint_deadlock,
    })
}

/// Searches the joint symbolic state space for a global deadlock.
///
/// A *global* deadlock is a reachable joint state where no component
/// can move yet not all have terminated. A component that is stuck
/// forever while another loops endlessly (partial starvation under a
/// divergent peer) is not a global deadlock and is not reported; for
/// terminating clients — the common case — the two notions coincide,
/// because the live components eventually finish and expose the stuck
/// one.
///
/// # Errors
///
/// Returns [`VerifyError::BoundExceeded`] past `bound` joint states.
pub fn find_joint_deadlock(
    clients: &[ClientSpec],
    repo: &Repository,
    bound: usize,
) -> Result<Option<JointDeadlock>, VerifyError> {
    let initial: Vec<SymState> = clients
        .iter()
        .map(|s| SymState::initial(s.name.clone(), s.client.clone()))
        .collect();
    let mut states: Vec<Vec<SymState>> = vec![initial.clone()];
    let mut index: HashMap<Vec<SymState>, usize> = HashMap::from([(initial, 0)]);
    let mut parents: Vec<Option<(usize, usize, Label)>> = vec![None];
    let mut queue = VecDeque::from([0usize]);
    while let Some(id) = queue.pop_front() {
        let joint = states[id].clone();
        // Shared load across every component.
        let mut load: BTreeMap<Location, usize> = BTreeMap::new();
        for comp in &joint {
            for (loc, n) in active_services(&comp.sess, repo) {
                *load.entry(loc).or_insert(0) += n;
            }
        }
        let mut any = false;
        for (i, comp) in joint.iter().enumerate() {
            for (label, next) in symbolic_successors_with_load(comp, &clients[i].plan, repo, &load)
            {
                any = true;
                let mut njoint = joint.clone();
                njoint[i] = next;
                if !index.contains_key(&njoint) {
                    let nid = states.len();
                    if nid >= bound {
                        return Err(VerifyError::BoundExceeded(bound));
                    }
                    index.insert(njoint.clone(), nid);
                    states.push(njoint);
                    parents.push(Some((id, i, label.clone())));
                    queue.push_back(nid);
                }
            }
        }
        if !any && !joint.iter().all(SymState::is_terminated) {
            let mut path = Vec::new();
            let mut cur = id;
            while let Some((p, c, l)) = &parents[cur] {
                path.push((*c, l.clone()));
                cur = *p;
            }
            path.reverse();
            let stuck_components = joint
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_terminated())
                .map(|(i, _)| i)
                .collect();
            return Ok(Some(JointDeadlock {
                path,
                stuck_components,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufs_hexpr::builder::*;

    fn two_step_client(first: &str, second: &str, r1: u32, r2: u32) -> Hist {
        // Holds a session with `first` open while also opening `second`
        // (nested), then closes both.
        let _ = (first, second);
        request(
            r1,
            None,
            seq([
                send("a", eps()),
                request(r2, None, send("b", eps())),
                send("done", eps()),
            ]),
        )
    }

    #[test]
    fn circular_capacity_wait_is_detected() {
        // srv1 and srv2 each have one replica. Client A: holds srv1,
        // needs srv2. Client B: holds srv2, needs srv1.
        let mut repo = Repository::new();
        repo.publish_bounded("srv1", holder_and_inner(), 1);
        repo.publish_bounded("srv2", holder_and_inner(), 1);
        let a = ClientSpec::new(
            "a",
            two_step_client("srv1", "srv2", 1, 2),
            Plan::new().with(1u32, "srv1").with(2u32, "srv2"),
        );
        let b = ClientSpec::new(
            "b",
            two_step_client("srv2", "srv1", 3, 4),
            Plan::new().with(3u32, "srv2").with(4u32, "srv1"),
        );
        // Each plan is individually fine…
        let reg = PolicyRegistry::new();
        let report = verify_network(&[a.clone(), b.clone()], &repo, &reg, 1 << 18).unwrap();
        for v in &report.per_client {
            assert!(v.is_valid(), "individual plan rejected: {v:?}");
        }
        // …but jointly they can deadlock.
        assert!(!report.is_valid());
        let dl = report.joint_deadlock.expect("circular wait must be found");
        assert_eq!(dl.stuck_components, vec![0, 1]);
        assert!(dl.to_string().contains("joint deadlock"));
    }

    /// A service usable both as the outer "holder" and the inner one.
    fn holder_and_inner() -> Hist {
        offer([("a", offer([("done", eps())]).clone()), ("b", eps())])
    }

    #[test]
    fn capacity_two_resolves_the_contention() {
        let mut repo = Repository::new();
        repo.publish_bounded("srv1", holder_and_inner(), 2);
        repo.publish_bounded("srv2", holder_and_inner(), 2);
        let a = ClientSpec::new(
            "a",
            two_step_client("srv1", "srv2", 1, 2),
            Plan::new().with(1u32, "srv1").with(2u32, "srv2"),
        );
        let b = ClientSpec::new(
            "b",
            two_step_client("srv2", "srv1", 3, 4),
            Plan::new().with(3u32, "srv2").with(4u32, "srv1"),
        );
        let reg = PolicyRegistry::new();
        let report = verify_network(&[a, b], &repo, &reg, 1 << 18).unwrap();
        assert!(report.joint_deadlock.is_none());
        assert!(report.is_valid());
    }

    #[test]
    fn independent_clients_have_no_joint_deadlock() {
        let mut repo = Repository::new();
        repo.publish("srv", recv("q", choose([("ok", eps())])));
        let client = request(1, None, seq([send("q", eps()), offer([("ok", eps())])]));
        let reg = PolicyRegistry::new();
        let specs: Vec<ClientSpec> = (0..3)
            .map(|i| {
                ClientSpec::new(
                    format!("c{i}"),
                    client.clone(),
                    Plan::new().with(1u32, "srv"),
                )
            })
            .collect();
        let report = verify_network(&specs, &repo, &reg, 1 << 18).unwrap();
        assert!(report.is_valid());
    }

    #[test]
    fn bound_is_reported() {
        let mut repo = Repository::new();
        repo.publish("srv", recv("q", choose([("ok", eps())])));
        let client = request(1, None, seq([send("q", eps()), offer([("ok", eps())])]));
        let specs: Vec<ClientSpec> = (0..3)
            .map(|i| {
                ClientSpec::new(
                    format!("c{i}"),
                    client.clone(),
                    Plan::new().with(1u32, "srv"),
                )
            })
            .collect();
        let err = find_joint_deadlock(&specs, &repo, 2).unwrap_err();
        assert!(matches!(err, VerifyError::BoundExceeded(2)));
    }
}
