//! Deterministic pseudo-random number generation for `sufs`.
//!
//! The whole workspace must build and test with **no network access**,
//! so randomness comes from this small in-tree module instead of an
//! external crate. The API mirrors the subset of `rand` the workspace
//! uses — [`Rng`], [`SeedableRng`], [`StdRng`], `gen_range`,
//! `gen_bool` — so call sites read the same.
//!
//! [`StdRng`] is a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! generator: a 64-bit state advanced by a Weyl sequence and finalised
//! with an avalanche mix. It is fast, passes BigCrush in its output
//! mixing, and — decisive for the experiments of `EXPERIMENTS.md` — is
//! *fully deterministic in its seed*, so every random schedule, fault
//! injection and workload in the repository replays exactly.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random numbers.
///
/// Only [`Rng::next_u64`] is required; the sampling helpers are
/// provided methods, so schedulers and generators can be written
/// against `R: Rng` exactly as against the `rand` trait of the same
/// name.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Picks a uniformly random element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T
    where
        Self: Sized,
    {
        &xs[self.gen_range(0..xs.len())]
    }

    /// A random subsequence of `xs` (order preserved) with between
    /// `min` and `max` elements; used by the test generators to draw
    /// distinct choice guards.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `max > xs.len()`.
    fn subsequence<T: Clone>(&mut self, xs: &[T], min: usize, max: usize) -> Vec<T>
    where
        Self: Sized,
    {
        assert!(min <= max && max <= xs.len());
        let k = self.gen_range(min..=max);
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx.sort_unstable();
        idx.into_iter().map(|i| xs[i].clone()).collect()
    }

    /// Shuffles `xs` in place (Fisher–Yates).
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard deterministic generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample using `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, n)` by rejection sampling (no modulo bias), so
/// the same seed yields the same schedule on every platform.
fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let z = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(5usize..5);
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw<R: Rng>(r: &mut R) -> u64 {
            r.next_u64()
        }
        let mut r = StdRng::seed_from_u64(4);
        let via_ref = draw(&mut &mut r);
        let _ = via_ref;
    }
}
