//! The §5 extensions in action: *bounded availability* and *joint*
//! multi-client verification.
//!
//! Two desks each have a single replica. Each clerk (client) holds a
//! session with one desk while opening a nested session with the other
//! — in opposite orders. Each clerk's plan is individually valid, yet a
//! circular capacity wait can deadlock them jointly; doubling the desk
//! capacity removes the hazard. The static verdicts are then confirmed
//! by thousands of random executions.
//!
//! ```sh
//! cargo run --example bounded_brokers
//! ```

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs::prelude::*;
use sufs_core::multi::{verify_network, ClientSpec};
use sufs_net::{ChoiceMode, MonitorMode, Network, Outcome, Scheduler};

fn clerk(r_hold: u32, r_inner: u32) -> Hist {
    request(
        r_hold,
        None,
        seq([
            send("a", eps()),
            request(r_inner, None, send("b", eps())),
            send("done", eps()),
        ]),
    )
}

fn desk() -> Hist {
    offer([("a", offer([("done", eps())])), ("b", eps())])
}

fn build_repo(capacity: usize) -> Repository {
    let mut repo = Repository::new();
    repo.publish_bounded("desk1", desk(), capacity);
    repo.publish_bounded("desk2", desk(), capacity);
    repo
}

fn specs() -> Vec<ClientSpec> {
    vec![
        ClientSpec::new(
            "alice",
            clerk(1, 2),
            Plan::new().with(1u32, "desk1").with(2u32, "desk2"),
        ),
        ClientSpec::new(
            "bob",
            clerk(3, 4),
            Plan::new().with(3u32, "desk2").with(4u32, "desk1"),
        ),
    ]
}

fn simulate(repo: &Repository, runs: usize) -> (usize, usize) {
    let registry = PolicyRegistry::new();
    let scheduler = Scheduler::new(repo, &registry, MonitorMode::Off, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(99);
    let mut completed = 0;
    let mut deadlocked = 0;
    for _ in 0..runs {
        let mut network = Network::new();
        for s in specs() {
            network.add_client(s.name.clone(), s.client.clone(), s.plan.clone());
        }
        match scheduler
            .run(network, &mut rng, 10_000)
            .expect("run")
            .outcome
        {
            Outcome::Completed => completed += 1,
            Outcome::Deadlock { .. } => deadlocked += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    (completed, deadlocked)
}

fn main() {
    let registry = PolicyRegistry::new();

    for capacity in [1usize, 2] {
        let repo = build_repo(capacity);
        println!("== desks at capacity {capacity} ==");
        let report =
            verify_network(&specs(), &repo, &registry, 1 << 18).expect("verification runs");
        for (spec, verdict) in specs().iter().zip(&report.per_client) {
            println!(
                "  {}: plan {} individually {}",
                spec.name,
                spec.plan,
                if verdict.is_valid() {
                    "valid"
                } else {
                    "INVALID"
                }
            );
        }
        match &report.joint_deadlock {
            Some(dl) => println!("  joint analysis: {dl}"),
            None => println!("  joint analysis: no reachable deadlock"),
        }
        let (completed, deadlocked) = simulate(&repo, 2000);
        println!("  simulation: {completed} completed, {deadlocked} deadlocked\n");
        if capacity == 1 {
            assert!(report.joint_deadlock.is_some());
            assert!(deadlocked > 0, "the predicted deadlock must materialise");
        } else {
            assert!(report.is_valid());
            assert_eq!(deadlocked, 0, "no deadlock may survive capacity 2");
        }
    }
    println!("static joint verdicts confirmed by 2000 random schedules each.");
}
