//! Services written as λ-calculus **programs**: the type-and-effect
//! system extracts their history expressions, which are then published,
//! verified and executed — the full §3 programming model.
//!
//! ```sh
//! cargo run --example lambda_services
//! ```

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs::prelude::*;
use sufs_lang::{eval, infer, parse_expr, trace_conforms};
use sufs_net::{ChoiceMode, MonitorMode, Network, Scheduler};
use sufs_policy::catalog;

fn main() {
    // A news-feed client: subscribe, then loop fetching items until the
    // server closes the stream. Written as a program.
    let client_src = "
        open 1 phi at_most_3_fetch {
            send subscribe;
            rec pump(x: unit) -> unit {
                offer[item -> send fetch; pump(x) | end -> ()]
            }(())
        }";
    let client_prog = parse_expr(client_src).expect("client parses");
    let client = infer(&client_prog).expect("client type-checks").effect;
    println!("client effect:\n  {client}\n");

    // Two feed servers as programs: one serves two items, one serves
    // four (fetching more than three times violates the quota policy).
    let short_feed_src = "
        offer[subscribe ->
            choose[item -> offer[fetch ->
            choose[item -> offer[fetch ->
            choose[end -> ()]]]]]]";
    let long_feed_src = "
        offer[subscribe ->
            choose[item -> offer[fetch ->
            choose[item -> offer[fetch ->
            choose[item -> offer[fetch ->
            choose[item -> offer[fetch ->
            choose[end -> ()]]]]]]]]]]";
    let mut repo = Repository::new();
    for (loc, src) in [("short_feed", short_feed_src), ("long_feed", long_feed_src)] {
        let prog = parse_expr(src).expect("server parses");
        let te = infer(&prog).expect("server type-checks");
        println!("{loc} effect:\n  {}\n", te.effect);
        repo.publish(loc, te.effect);
    }

    // Quota policy: at most 3 fetches per session. The client program
    // counts nothing — the *verifier* decides which feed stays in budget.
    let mut registry = PolicyRegistry::new();
    registry.register(catalog::at_most("fetch", 3));

    // `fetch` must be an *event* to be policed; instrument the repo
    // services by pairing each fetch message with an access event. In
    // this calculus communications are not access events, so the feeds
    // log one explicitly:
    let mut repo2 = Repository::new();
    for (loc, h) in repo.iter() {
        repo2.publish(loc.clone(), instrument_fetch(h));
    }

    let report = verify(&client, &repo2, &registry).expect("verification runs");
    println!("{report}");
    let valid: Vec<&Plan> = report.valid_plans().collect();
    assert_eq!(valid.len(), 1);
    assert_eq!(
        valid[0].service_for(RequestId::new(1)).unwrap().as_str(),
        "short_feed"
    );

    // Effect soundness, live: run the client program standalone and
    // check its traces against its inferred effect.
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..50 {
        let run = eval(&client_prog, &mut rng, 100_000).expect("evaluation");
        assert!(trace_conforms(&client, &run.trace), "effect soundness");
    }
    println!("50/50 standalone traces conform to the inferred effect.");

    // And execute the verified orchestration.
    let scheduler = Scheduler::new(&repo2, &registry, MonitorMode::Audit, ChoiceMode::Committed);
    let mut network = Network::new();
    network.add_client("reader", client, valid[0].clone());
    let r = scheduler.run(network, &mut rng, 10_000).expect("run");
    println!("verified orchestration: {:?}", r.outcome);
    assert!(r.outcome.is_success() && r.violations.is_empty());
}

/// Pairs every `fetch` input a service offers with a logged
/// `#fetch` access event, so the quota policy can see it.
fn instrument_fetch(h: &Hist) -> Hist {
    match h {
        Hist::Ext(bs) => Hist::Ext(
            bs.iter()
                .map(|(c, cont)| {
                    let cont = instrument_fetch(cont);
                    if c.as_str() == "fetch" {
                        (
                            c.clone(),
                            Hist::seq(sufs_hexpr::builder::ev0("fetch"), cont),
                        )
                    } else {
                        (c.clone(), cont)
                    }
                })
                .collect(),
        ),
        Hist::Int(bs) => Hist::Int(
            bs.iter()
                .map(|(c, cont)| (c.clone(), instrument_fetch(cont)))
                .collect(),
        ),
        Hist::Seq(a, b) => Hist::seq(instrument_fetch(a), instrument_fetch(b)),
        Hist::Mu(v, body) => Hist::Mu(v.clone(), Box::new(instrument_fetch(body))),
        Hist::Framed(p, body) => Hist::framed(p.clone(), instrument_fetch(body)),
        Hist::Req { id, policy, body } => Hist::Req {
            id: *id,
            policy: policy.clone(),
            body: Box::new(instrument_fetch(body)),
        },
        other => other.clone(),
    }
}
