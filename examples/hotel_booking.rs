//! The paper's motivating example (§2, Figs. 1–3): two clients, a
//! broker and four hotels.
//!
//! Prints the compliance matrix, the per-plan verdicts for both clients,
//! and a Fig. 3-style rendering of an execution under the valid plan π₁.
//!
//! ```sh
//! cargo run --example hotel_booking
//! ```

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs::paper;
use sufs_contract::{compliant, Contract};
use sufs_core::verify::verify;
use sufs_hexpr::Location;
use sufs_net::{ChoiceMode, MonitorMode, Network, Scheduler};

fn main() {
    let repo = paper::repository();
    let registry = paper::registry();

    println!("== Repository (Fig. 2) ==\n{repo}");

    // Compliance matrix: the broker-side conversation of request 3
    // against each hotel.
    println!("== Compliance with the broker (Def. 4 / Thm. 1) ==");
    let broker_body = sufs_hexpr::requests::requests(&paper::broker())[0]
        .body
        .clone();
    let broker_side = Contract::from_service(&broker_body).expect("broker projects");
    for loc in ["s1", "s2", "s3", "s4"] {
        let hotel =
            Contract::from_service(repo.get(&Location::new(loc)).unwrap()).expect("hotel projects");
        let r = compliant(&broker_side, &hotel);
        println!("  Br ⊢ {loc}: {r}");
    }
    println!();

    // Plan synthesis for both clients.
    for (name, client) in [("C1", paper::client_c1()), ("C2", paper::client_c2())] {
        println!("== Valid plans for {name} ==");
        let report = verify(&client, &repo, &registry).expect("verification runs");
        print!("{report}");
        println!();
    }

    // A Fig. 3-style computation: C1 under π₁ and C2 under its valid
    // plan, interleaved.
    println!("== A computation under π₁ (cf. Fig. 3) ==");
    let mut network = Network::new();
    network.add_client("c1", paper::client_c1(), paper::plan_pi1());
    network.add_client("c2", paper::client_c2(), paper::plan_c2_s4());
    let scheduler = Scheduler::new(&repo, &registry, MonitorMode::Audit, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(2013);
    let result = scheduler
        .run(network.clone(), &mut rng, 10_000)
        .expect("run succeeds");
    let rendered =
        sufs_net::trace::render_trace(&network, &result.trace, &repo).expect("trace replays");
    println!("{rendered}");
    println!("outcome: {:?}", result.outcome);
    assert!(result.outcome.is_success());
    assert!(result.violations.is_empty());
    println!("no security violations, no deadlocks — no monitor was needed.");
}
