//! Quickstart: verify a tiny client against two candidate services,
//! print the report, and execute the valid plan monitor-free.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs::prelude::*;
use sufs_net::{ChoiceMode, MonitorMode, Network, Scheduler};

fn main() {
    // A client: open a session, send a request, await `ok` or `no`.
    let client = request(
        1,
        None,
        seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
    );

    // Two published services: one answers ok/no, the other may answer
    // `later`, which the client cannot handle.
    let mut repo = Repository::new();
    repo.publish(
        "reliable",
        recv("req", choose([("ok", eps()), ("no", eps())])),
    );
    repo.publish(
        "flaky",
        recv("req", choose([("ok", eps()), ("later", eps())])),
    );

    // Statically verify every candidate plan.
    let registry = PolicyRegistry::new();
    let report = verify(&client, &repo, &registry).expect("verification runs");
    println!("{report}");

    // Execute the valid plan with the run-time monitor OFF: §5's point
    // is that nothing bad can happen.
    let plan = report
        .valid_plans()
        .next()
        .expect("a valid plan exists")
        .clone();
    let scheduler = Scheduler::new(&repo, &registry, MonitorMode::Audit, ChoiceMode::Committed);
    let mut rng = StdRng::seed_from_u64(1);
    let mut network = Network::new();
    network.add_client("client", client, plan);
    let result = scheduler
        .run(network, &mut rng, 1000)
        .expect("run succeeds");
    println!("execution: {:?}", result.outcome);
    println!("{}", sufs_net::trace::render_actions(&result.trace));
    assert!(result.outcome.is_success());
    assert!(result.violations.is_empty());
}
