//! Cloud storage with an information-flow flavoured policy: *never
//! write after read* (§3's example policy), checked history-dependently.
//!
//! A client syncs a folder through a storage façade that may delegate to
//! caching backends. Because validity is **history dependent**, a
//! backend that reads before the policy's framing even opens still
//! poisons the session — this example shows a plan rejected for exactly
//! that reason, and contrasts monitor-on and monitor-off executions.
//!
//! ```sh
//! cargo run --example cloud_storage
//! ```

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs::prelude::*;
use sufs_net::{ChoiceMode, MonitorMode, Network, Outcome, Scheduler};
use sufs_policy::catalog;

fn main() {
    let mut registry = PolicyRegistry::new();
    registry.register(catalog::no_after("read", "write"));
    let no_rw = PolicyRef::nullary("no_write_after_read");

    // The client uploads under the no-write-after-read policy.
    let client = request(
        1,
        Some(no_rw.clone()),
        seq([
            send("put", eps()),
            offer([("stored", eps()), ("full", eps())]),
        ]),
    );

    // A write-only store: fine.
    let write_only = recv(
        "put",
        seq([ev0("write"), choose([("stored", eps()), ("full", eps())])]),
    );
    // A read-cache store: reads the cache, then writes — forbidden while
    // the policy is active.
    let read_cache = recv(
        "put",
        seq([
            ev0("read"),
            ev0("write"),
            choose([("stored", eps()), ("full", eps())]),
        ]),
    );
    // A verify-after-write store: writes, then reads back — harmless.
    let write_verify = recv(
        "put",
        seq([
            ev0("write"),
            ev0("read"),
            choose([("stored", eps()), ("full", eps())]),
        ]),
    );

    let mut repo = Repository::new();
    repo.publish("write_only", write_only);
    repo.publish("read_cache", read_cache);
    repo.publish("write_verify", write_verify);

    let report = verify(&client, &repo, &registry).expect("verification runs");
    println!("{report}");
    assert_eq!(report.valid_plans().count(), 2);

    // Take the rejected plan and watch both failure modes.
    let rejected = report.rejected().next().expect("one rejected plan");
    println!("executing the rejected plan {} …", rejected.plan);

    let mut rng = StdRng::seed_from_u64(3);

    // Monitor ON: the execution aborts at the blocked write.
    let enforcing = Scheduler::new(
        &repo,
        &registry,
        MonitorMode::Enforcing,
        ChoiceMode::Angelic,
    );
    let mut network = Network::new();
    network.add_client("sync", client.clone(), rejected.plan.clone());
    let r = enforcing.run(network, &mut rng, 1000).expect("run");
    println!("  monitor on : {:?}", r.outcome);
    assert!(matches!(r.outcome, Outcome::SecurityAbort { .. }));

    // Monitor OFF: the run "completes" but the violation is incurred.
    let off = Scheduler::new(&repo, &registry, MonitorMode::Audit, ChoiceMode::Angelic);
    let mut network = Network::new();
    network.add_client("sync", client.clone(), rejected.plan.clone());
    let r = off.run(network, &mut rng, 1000).expect("run");
    println!(
        "  monitor off: {:?}, violations incurred: {}",
        r.outcome,
        r.violations.len()
    );
    assert!(!r.violations.is_empty());

    // Whereas a *valid* plan needs no monitor at all.
    let valid = report.valid_plans().next().unwrap().clone();
    let mut network = Network::new();
    network.add_client("sync", client, valid.clone());
    let r = off.run(network, &mut rng, 1000).expect("run");
    println!("valid plan {valid} with monitor off: {:?}", r.outcome);
    assert!(r.outcome.is_success() && r.violations.is_empty());
}
