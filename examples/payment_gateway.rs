//! An e-commerce checkout with nested sessions: shop → gateway → bank.
//!
//! The client imposes two policies on the checkout session:
//! * `at_most_1_charge` — the card is charged at most once;
//! * `sod_audit_charge` — separation of duty: the same session must not
//!   both self-audit and charge (audits are a third party's job).
//!
//! The repository offers two gateways (one double-charges on retry) and
//! two banks (one audits itself before charging). Only the honest
//! gateway paired with the external-audit bank yields a valid plan.
//!
//! ```sh
//! cargo run --example payment_gateway
//! ```

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs::prelude::*;
use sufs_net::{ChoiceMode, MonitorMode, Network, Scheduler};
use sufs_policy::catalog;

fn main() {
    // Policies.
    let mut registry = PolicyRegistry::new();
    registry.register(catalog::at_most("charge", 1));
    registry.register(catalog::separation_of_duty("audit", "charge"));
    let once = PolicyRef::nullary("at_most_1_charge");
    let sod = PolicyRef::nullary("sod_audit_charge");

    // The shop (client): checkout under both policies.
    let client = request(
        1,
        Some(once),
        framed(
            sod,
            seq([
                send("checkout", eps()),
                offer([("receipt", eps()), ("declined", eps())]),
            ]),
        ),
    );

    // Gateways: both forward to a bank (request 2); the sloppy one may
    // charge a second time after a retry.
    let honest_gateway = recv(
        "checkout",
        seq([
            request(
                2,
                None,
                seq([send("debit", eps()), offer([("done", eps())])]),
            ),
            ev0("charge"),
            choose([("receipt", eps()), ("declined", eps())]),
        ]),
    );
    let sloppy_gateway = recv(
        "checkout",
        seq([
            request(
                2,
                None,
                seq([send("debit", eps()), offer([("done", eps())])]),
            ),
            ev0("charge"),
            ev0("charge"), // double charge!
            choose([("receipt", eps()), ("declined", eps())]),
        ]),
    );

    // Banks: the self-auditing one violates separation of duty.
    let external_audit_bank = recv("debit", seq([ev0("ledger"), choose([("done", eps())])]));
    let self_audit_bank = recv("debit", seq([ev0("audit"), choose([("done", eps())])]));

    let mut repo = Repository::new();
    repo.publish("gw_honest", honest_gateway);
    repo.publish("gw_sloppy", sloppy_gateway);
    repo.publish("bank_ext", external_audit_bank);
    repo.publish("bank_self", self_audit_bank);

    let report = verify(&client, &repo, &registry).expect("verification runs");
    println!("{report}");

    let valid: Vec<&Plan> = report.valid_plans().collect();
    assert_eq!(valid.len(), 1, "exactly one safe orchestration");
    let plan = valid[0].clone();
    println!("running the valid plan {plan} monitor-free, committed choices…");

    let scheduler = Scheduler::new(&repo, &registry, MonitorMode::Audit, ChoiceMode::Committed);
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..200 {
        let mut network = Network::new();
        network.add_client("shop", client.clone(), plan.clone());
        let r = scheduler.run(network, &mut rng, 10_000).expect("run");
        assert!(r.outcome.is_success(), "run {i} failed: {:?}", r.outcome);
        assert!(r.violations.is_empty(), "run {i} violated a policy");
    }
    println!("200/200 runs completed with zero violations.");
}
