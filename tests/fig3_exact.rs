//! E5, exact form: the 13-step computation fragment of Fig. 3, driven
//! step by step in the paper's order, asserting each intermediate
//! configuration.

use sufs::paper;
use sufs_net::{component_steps, Component, Network, StepAction};
use sufs_policy::HistoryItem;

/// Applies, to the given component of the network, the unique enabled
/// step matching `pick`; panics with a helpful message otherwise.
fn drive(
    net: &mut Network,
    repo: &sufs_net::Repository,
    component: usize,
    pick: impl Fn(&StepAction) -> bool,
    what: &str,
) {
    let comp: &Component = &net.components()[component];
    let matching: Vec<(StepAction, Component)> = component_steps(comp, repo)
        .into_iter()
        .filter(|(a, _)| pick(a))
        .collect();
    assert_eq!(
        matching.len(),
        1,
        "step `{what}`: expected exactly one matching transition, found {}",
        matching.len()
    );
    let (_, next) = matching.into_iter().next().unwrap();
    *net.component_mut(component) = next;
}

#[test]
fn fig3_step_by_step() {
    let repo = paper::repository();
    let reg = paper::registry();
    let mut net = Network::new();
    net.add_client("c1", paper::client_c1(), paper::plan_pi1());
    net.add_client("c2", paper::client_c2(), paper::plan_c2_s4());

    let is_open = |r: u32| move |a: &StepAction| matches!(a, StepAction::Open { request, .. } if request.index() == r);
    let is_synch = |c: &'static str| move |a: &StepAction| matches!(a, StepAction::Synch { chan, .. } if chan.as_str() == c);
    let is_event = |n: &'static str| move |a: &StepAction| matches!(a, StepAction::Event { event, .. } if event.name().as_str() == n);
    let is_close = |r: u32| move |a: &StepAction| matches!(a, StepAction::Close { request, .. } if request.index() == r);

    // 1. C1 opens session 1 with the broker; ⌞φ₁ is logged.
    drive(&mut net, &repo, 0, is_open(1), "open r1");
    assert_eq!(
        net.components()[0].history.items(),
        &[HistoryItem::Open(paper::phi1())]
    );
    // 2. The request is accepted (τ on req).
    drive(&mut net, &repo, 0, is_synch("req"), "τ req");
    // 3. A nested session opens with S3; no policy over the callee.
    drive(&mut net, &repo, 0, is_open(3), "open r3");
    assert_eq!(net.components()[0].sess.open_sessions(), 2);
    assert_eq!(net.components()[0].history.len(), 1, "∅ adds no frame");
    // 4. Concurrently, C2 asks for a reservation (⌞φ₂ on its own history).
    drive(&mut net, &repo, 1, is_open(2), "open r2");
    assert_eq!(
        net.components()[1].history.items(),
        &[HistoryItem::Open(paper::phi2())]
    );
    // 5–7. S3 signs, shows its price and its rating.
    drive(&mut net, &repo, 0, is_event("sgn"), "sgn(3)");
    drive(&mut net, &repo, 0, is_event("p"), "p(90)");
    drive(&mut net, &repo, 0, is_event("ta"), "ta(100)");
    let flat: Vec<String> = net.components()[0]
        .history
        .flatten()
        .iter()
        .map(|e| e.to_string())
        .collect();
    assert_eq!(flat, ["#sgn(3)", "#p(90)", "#ta(100)"]);
    // 8. The broker sends the client's data (τ on idc).
    drive(&mut net, &repo, 0, is_synch("idc"), "τ idc");
    // 9. The answer: "no room is available" (τ on una).
    drive(&mut net, &repo, 0, is_synch("una"), "τ una");
    // 10. The nested session closes; S3 is discarded.
    drive(&mut net, &repo, 0, is_close(3), "close r3");
    assert_eq!(net.components()[0].sess.open_sessions(), 1);
    // 11. The broker forwards the non-availability (τ on noav).
    drive(&mut net, &repo, 0, is_synch("noav"), "τ noav");
    // 12. Session 1 closes; the security framing of φ₁ closes with it.
    drive(&mut net, &repo, 0, is_close(1), "close r1");
    assert!(net.components()[0].is_terminated());
    let h1 = &net.components()[0].history;
    assert!(h1.is_balanced());
    assert!(h1.is_valid(&reg).unwrap());
    assert_eq!(
        h1.to_string(),
        "⌞hotel({1},45,100) #sgn(3) #p(90) #ta(100) ⌟hotel({1},45,100)"
    );
    // 13. The last transition continues the session of the second client.
    drive(&mut net, &repo, 1, is_synch("req"), "τ req (c2)");
    assert!(!net.components()[1].is_terminated());
}
