//! Experiments E6 and E7: Theorem 1 (compliance ⟺ empty product
//! language), Theorem 2 and Corollary 1 (compliance is an invariant,
//! hence a safety property).

use sufs::paper;
use sufs_contract::{compliant, compliant_coinductive, dual, Contract, ProductAutomaton};
use sufs_hexpr::parse_hist;
use sufs_hexpr::Location;

fn contract(src: &str) -> Contract {
    Contract::new(parse_hist(src).unwrap()).unwrap()
}

/// E6 / Theorem 1 on the paper's contracts: the product-automaton
/// emptiness check and the direct coinductive reading of Definition 4
/// agree on every broker–hotel pair.
#[test]
fn thm1_product_vs_coinductive_on_paper_contracts() {
    let repo = paper::repository();
    let broker_body = sufs_hexpr::requests::requests(&paper::broker())[0]
        .body
        .clone();
    let broker_side = Contract::from_service(&broker_body).unwrap();
    for loc in ["s1", "s2", "s3", "s4", "br"] {
        let service = repo.get(&Location::new(loc)).unwrap();
        let hotel_side = Contract::from_service(service).unwrap();
        let by_product = compliant(&broker_side, &hotel_side).holds();
        let by_def4 = compliant_coinductive(&broker_side, &hotel_side);
        assert_eq!(by_product, by_def4, "Theorem 1 disagreement on {loc}");
    }
}

/// Theorem 1, explicitly through the language: compliant pairs have an
/// empty product language; non-compliant pairs have a reachable final
/// (stuck) state, i.e. a non-empty language.
#[test]
fn thm1_language_emptiness() {
    let broker = contract("int[idc -> ext[bok -> eps | una -> eps]]");
    let s3 = contract("ext[idc -> int[bok -> eps | una -> eps]]");
    let s2 = contract("ext[idc -> int[bok -> eps | una -> eps | del -> eps]]");

    let p_ok = ProductAutomaton::build(&broker, &s3);
    assert!(p_ok.language_is_empty());
    assert!(p_ok.final_states().is_empty());

    let p_bad = ProductAutomaton::build(&broker, &s2);
    assert!(!p_bad.language_is_empty());
    assert!(!p_bad.final_states().is_empty());
}

/// E7 / Theorem 2: compliance is an *invariant* property. The final
/// (stuck) states of the product are characterised by the state alone:
/// re-checking any non-final reachable state's conditions never needs
/// the path that led there. We verify that every reachable state of
/// several products is classified identically when reached along
/// different paths (state identity ⇒ same classification), and that
/// killing the run at the first bad state is enough to detect
/// non-compliance (safety: finite-trace refutable).
#[test]
fn thm2_compliance_is_state_invariant() {
    // A product with two different paths into the same pair: after
    // (a then b) or (b then a) the same residual pair is reached.
    let client = contract("int[a -> int[b -> ext[x -> eps]] | b -> int[a -> ext[x -> eps]]]");
    let server = contract("ext[a -> ext[b -> int[y -> eps]] | b -> ext[a -> int[y -> eps]]]");
    let p = ProductAutomaton::build(&client, &server);
    // The diamond converges: find the shared state and check it is
    // classified (stuck: x vs y mismatch) independently of the path.
    assert!(!p.language_is_empty());
    let w = p.stuck_witness().unwrap();
    assert_eq!(w.path.len(), 2, "shortest path through the diamond");
    // Both orders reach a stuck state; BFS found one of them. Replay the
    // other order manually and confirm the same classification.
    let step = |c: &Contract, chan: &str| -> Contract {
        c.steps()
            .into_iter()
            .find(|((ch, _), _)| ch.as_str() == chan)
            .map(|(_, n)| n)
            .unwrap()
    };
    let c_ab = step(&step(&client, "a"), "b");
    let s_ab = step(&step(&server, "a"), "b");
    let c_ba = step(&step(&client, "b"), "a");
    let s_ba = step(&step(&server, "b"), "a");
    assert_eq!(c_ab, c_ba, "client residuals converge");
    assert_eq!(s_ab, s_ba, "server residuals converge");
    // The converged pair is itself non-compliant — the invariant
    // condition depends only on the state.
    assert!(!compliant(&c_ab, &s_ab).holds());
    assert!(!compliant(&c_ba, &s_ba).holds());
}

/// Corollary 1, operationally: a violation of compliance is detected on
/// a *finite* prefix (safety), never requiring an infinite observation.
#[test]
fn cor1_safety_finite_refutation() {
    // An infinite compliant loop with a poisoned branch deep inside.
    let client = contract("mu h. int[ping -> ext[pong -> h | bye -> int[late -> eps]]]");
    let server = contract("mu k. ext[ping -> int[pong -> k | bye -> ext[other -> eps]]]");
    let r = compliant(&client, &server);
    assert!(!r.holds());
    let w = r.witness().unwrap();
    // The witness is a finite path (ping, bye) to the stuck pair.
    assert!(w.path.len() >= 2);
    assert!(w.path.len() < 10, "refutation must be finite and short");
}

/// Duality sanity on the paper's contracts: every service is compliant
/// with the dual of its own contract.
#[test]
fn paper_contracts_comply_with_their_duals() {
    let repo = paper::repository();
    for loc in ["br", "s1", "s2", "s3", "s4"] {
        let c = Contract::from_service(repo.get(&Location::new(loc)).unwrap()).unwrap();
        let d = dual(&c);
        assert!(
            compliant(&c, &d).holds(),
            "{loc} does not comply with its dual"
        );
    }
}
