//! Record/replay conformance harness tests: recording fills
//! transcripts, replay is deterministic, mismatches are detected, and
//! the committed corpus and legacy golden files replay clean — broker
//! leg included.

use std::path::{Path, PathBuf};

use sufs_corpus::{corpus_config, generate, replay_path, Profile, ReplayOptions};

/// A unique scratch directory for one test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sufs-replay-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Generates a few corpus cells into `dir` with empty transcripts.
fn seed_runfiles(dir: &Path, cells: &[(Profile, u64)]) {
    for &(profile, index) in cells {
        let cfg = corpus_config(profile, index);
        let generated = generate(&cfg);
        let stem = format!("{profile}_{index:04}");
        std::fs::write(dir.join(format!("{stem}.sufs")), &generated.scenario).expect("write sufs");
        let runfile = sufs_corpus::runfile::skeleton(
            &format!("{stem}.sufs"),
            &generated,
            &cfg.command_line(),
            cfg.seed,
        );
        std::fs::write(dir.join(format!("{stem}.sufsrun")), runfile.serialize())
            .expect("write sufsrun");
    }
}

#[test]
fn record_then_replay_round_trips() {
    let scratch = Scratch::new("roundtrip");
    seed_runfiles(
        scratch.path(),
        &[
            (Profile::Mesh, 1),
            (Profile::Star, 5),
            (Profile::Pipeline, 10),
        ],
    );

    let record = ReplayOptions {
        record: true,
        ..ReplayOptions::default()
    };
    let summary = replay_path(scratch.path(), &record).expect("record pass");
    assert_eq!(summary.failed(), 0, "{}", summary.diff_report());
    assert_eq!(summary.updated(), 3, "every file gains transcripts");

    // Replaying the recorded transcripts passes and rewrites nothing.
    let replay = ReplayOptions::default();
    let summary = replay_path(scratch.path(), &replay).expect("replay pass");
    assert_eq!(summary.failed(), 0, "{}", summary.diff_report());
    // Every file runs the full skeleton: 4 fixed steps plus 3 per
    // client (plan, run, broker_plan), with at least one client each.
    assert!(summary.steps() >= 3 * 7, "suspiciously few steps replayed");

    // Recording again is idempotent: nothing changes on disk.
    let summary = replay_path(scratch.path(), &record).expect("re-record pass");
    assert_eq!(summary.updated(), 0, "recording diverged across runs");
}

#[test]
fn tampered_transcripts_and_scenarios_fail_replay() {
    let scratch = Scratch::new("tamper");
    seed_runfiles(scratch.path(), &[(Profile::Tree, 5)]);
    let record = ReplayOptions {
        record: true,
        ..ReplayOptions::default()
    };
    replay_path(scratch.path(), &record).expect("record pass");

    // Corrupt one golden line: replay must fail with a diff naming it.
    let run_path = scratch.path().join("tree_0005.sufsrun");
    let golden = std::fs::read_to_string(&run_path).expect("read runfile");
    let tampered = golden.replace("\"valid=", "\"valid=9");
    assert_ne!(golden, tampered, "tamper target not found");
    std::fs::write(&run_path, &tampered).expect("write tampered");
    let summary = replay_path(&run_path, &ReplayOptions::default()).expect("replay runs");
    assert_eq!(summary.failed(), 1);
    let report = summary.diff_report();
    assert!(report.contains("transcript mismatch"), "{report}");
    assert!(report.contains("valid=9"), "{report}");

    // A behavioural change to the scenario (dropping the rogue's probe
    // event) shifts the valid-plan set: the recorded golden transcript
    // must catch it.
    std::fs::write(&run_path, &golden).expect("restore runfile");
    let sufs_path = scratch.path().join("tree_0005.sufs");
    let scenario = std::fs::read_to_string(&sufs_path).expect("read scenario");
    let edited = scenario.replace("#probe;\n", "");
    assert_ne!(scenario, edited, "scenario has no probe to drop");
    std::fs::write(&sufs_path, edited).expect("write scenario");
    let summary = replay_path(&run_path, &ReplayOptions::default()).expect("replay runs");
    assert_eq!(summary.failed(), 1, "behavioural drift not detected");
}

#[test]
fn expectations_fail_even_in_record_mode() {
    let scratch = Scratch::new("expect");
    seed_runfiles(scratch.path(), &[(Profile::Star, 3)]);
    let run_path = scratch.path().join("star_0003.sufsrun");
    let text = std::fs::read_to_string(&run_path).expect("read runfile");
    // Demand an exact valid-plan count that cannot hold.
    let bad = text.replace("{\"min_valid\": 1}", "{\"valid\": 424242}");
    assert_ne!(text, bad);
    std::fs::write(&run_path, bad).expect("write runfile");
    let record = ReplayOptions {
        record: true,
        ..ReplayOptions::default()
    };
    let summary = replay_path(&run_path, &record).expect("replay runs");
    assert_eq!(summary.failed(), 1);
    assert!(
        summary
            .diff_report()
            .contains("expected 424242 valid plan(s)"),
        "{}",
        summary.diff_report()
    );
    // A failing file is never rewritten, even under --record.
    assert_eq!(summary.updated(), 0);
}

#[test]
fn filter_and_no_broker_narrow_the_run() {
    let scratch = Scratch::new("filter");
    seed_runfiles(scratch.path(), &[(Profile::Mesh, 4), (Profile::Star, 4)]);
    let record = ReplayOptions {
        record: true,
        no_broker: true,
        filter: Some("star".to_owned()),
        jobs: 1,
    };
    let summary = replay_path(scratch.path(), &record).expect("record pass");
    assert_eq!(summary.files.len(), 1, "filter selects one file");
    assert!(summary.files[0].path.ends_with("star_0004.sufsrun"));
    assert!(summary.files[0].skipped > 0, "broker steps were skipped");
    let unmatched = ReplayOptions {
        filter: Some("nothing-matches-this".to_owned()),
        ..ReplayOptions::default()
    };
    assert!(replay_path(scratch.path(), &unmatched).is_err());
}

/// A sample of the committed corpus replays byte-identically, broker
/// leg included — the full sweep runs in CI's conformance job.
#[test]
fn committed_corpus_sample_replays_clean() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/corpus");
    let opts = ReplayOptions {
        filter: Some("_000".to_owned()), // *_0000 .. *_0009: 40 files
        jobs: 4,
        ..ReplayOptions::default()
    };
    let summary = replay_path(&corpus, &opts).expect("corpus sample replays");
    assert_eq!(summary.files.len(), 40);
    assert_eq!(summary.failed(), 0, "{}", summary.diff_report());
}

/// The legacy hand-written scenarios stay pinned by their golden run
/// files (two of them replayed here; the rest in CI).
#[test]
fn legacy_goldens_replay_clean() {
    let runs = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/runs");
    for name in ["hotel", "faulty"] {
        let summary = replay_path(
            &runs.join(format!("{name}.sufsrun")),
            &ReplayOptions::default(),
        )
        .expect("legacy golden replays");
        assert_eq!(summary.failed(), 0, "{name}: {}", summary.diff_report());
    }
}
