//! The incremental lint engine's contract: after any sequence of
//! repository mutations, the incrementally refreshed report is
//! byte-identical to a cold full re-lint of the same state.
//!
//! Two seeded property suites enforce it — one against the engine
//! in-process, one against a live broker over the wire (`lint`
//! command) — plus end-to-end coverage of the `--deny-lint` mutation
//! gate: a retraction that empties a client's plan space must bounce
//! with a structured `lint_rejected` reply carrying `SUFS007`, leaving
//! the repository untouched.

use sufs_broker::{Broker, BrokerClient, BrokerConfig, BrokerHandle, Json};
use sufs_core::scenario::parse_scenario;
use sufs_hexpr::{parse_hist, Hist, Location};
use sufs_lint::{LintEngine, LintInput, Severity};
use sufs_net::Repository;
use sufs_policy::PolicyRegistry;
use sufs_rng::{Rng, SeedableRng, StdRng};

/// The base cluster: two clients whose lock order can deadlock
/// (SUFS009 material), a third client served by `echo`, and a policy
/// nobody frames (SUFS002 material). Small on purpose — the suites
/// re-lint it hundreds of times.
const BASE: &str = "
    client alice { open 1 { int[acq_a -> eps]; open 2 { int[acq_b -> eps] } } }
    client bob { open 3 { int[acq_b -> eps]; open 4 { int[acq_a -> eps] } } }
    client carol { open 5 { int[ping -> eps] } }
    service lock_a cap 1 { ext[acq_a -> eps] }
    service lock_b cap 1 { ext[acq_b -> eps] }
    service echo { ext[ping -> eps] }
    policy ghost { start q0; offending bad; q0 -- phantom_op -> bad; }
";

/// Locations the mutation sequences publish to and retract from.
const LOCATIONS: [&str; 4] = ["lock_a", "lock_b", "echo", "spare"];

/// Service bodies the mutation sequences publish: the lock providers,
/// the echo provider, and one that serves nobody.
const POOL: [&str; 4] = [
    "ext[acq_a -> eps]",
    "ext[acq_b -> eps]",
    "ext[ping -> eps]",
    "ext[zzz -> eps]",
];

/// A cold full re-lint: fresh engine, no caches, no prior fingerprints.
fn cold_json(clients: &[(String, Hist)], repo: &Repository, registry: &PolicyRegistry) -> String {
    let mut engine = LintEngine::new();
    engine
        .refresh(LintInput::new(clients, repo, registry))
        .expect("cold lint succeeds");
    engine.report().to_json(None)
}

/// One random mutation applied to the mirror state. Returns a label
/// for failure messages.
fn mutate(
    rng: &mut StdRng,
    repo: &mut Repository,
    registry: &mut PolicyRegistry,
    clients: &mut Vec<(String, Hist)>,
    base_registry: &PolicyRegistry,
    base_clients: &[(String, Hist)],
) -> String {
    match rng.gen_range(0..8u32) {
        // Publish (4:8 odds): a random pool service at a random
        // location with a random capacity.
        0..=3 => {
            let loc = LOCATIONS[rng.gen_range(0..LOCATIONS.len())];
            let body = POOL[rng.gen_range(0..POOL.len())];
            let cap = [None, Some(1), Some(2)][rng.gen_range(0..3usize)];
            repo.restore(loc, parse_hist(body).unwrap(), cap)
                .expect("pool services are well-formed");
            format!("publish {loc} cap {cap:?} = {body}")
        }
        // Retract (2:8 odds).
        4 | 5 => {
            let loc = LOCATIONS[rng.gen_range(0..LOCATIONS.len())];
            repo.retract(&Location::new(loc));
            format!("retract {loc}")
        }
        // Toggle the `ghost` policy's registration.
        6 => {
            if registry.remove("ghost").is_some() {
                "retract policy ghost".into()
            } else {
                registry.register(base_registry.get("ghost").unwrap().clone());
                "publish policy ghost".into()
            }
        }
        // Toggle carol's membership in the client set.
        _ => {
            if let Some(i) = clients.iter().position(|(n, _)| n == "carol") {
                clients.remove(i);
                "remove client carol".into()
            } else {
                let carol = base_clients
                    .iter()
                    .find(|(n, _)| n == "carol")
                    .unwrap()
                    .clone();
                let at = clients
                    .binary_search_by(|(n, _)| n.as_str().cmp("carol"))
                    .unwrap_err();
                clients.insert(at, carol);
                "add client carol".into()
            }
        }
    }
}

/// ≥200 random mutations against one long-lived engine: after every
/// step the incremental report must be byte-identical to a cold full
/// re-lint, and across the run the engine must actually splice cached
/// pass results (otherwise it is just a slow full linter).
#[test]
fn incremental_engine_matches_cold_relint_over_random_mutations() {
    let sc = parse_scenario(BASE).expect("base scenario parses");
    let mut repo = sc.repository.clone();
    let mut registry = sc.registry.clone();
    let mut clients = sc.clients.clone();
    clients.sort_by(|(a, _), (b, _)| a.cmp(b));
    let base_clients = clients.clone();

    let mut engine = LintEngine::new();
    let mut rng = StdRng::seed_from_u64(0x11C0_0901);
    let mut reused_total = 0usize;
    for step in 0..220 {
        let label = mutate(
            &mut rng,
            &mut repo,
            &mut registry,
            &mut clients,
            &sc.registry,
            &base_clients,
        );
        let outcome = engine
            .refresh(LintInput::new(&clients, &repo, &registry))
            .expect("incremental refresh succeeds");
        reused_total += outcome.passes_reused;
        let incremental = engine.report().to_json(None);
        let cold = cold_json(&clients, &repo, &registry);
        assert_eq!(
            incremental, cold,
            "step {step} ({label}): incremental and cold reports diverged"
        );
    }
    assert!(
        reused_total > 0,
        "220 mutations never reused a cached pass: the dependency index is dead"
    );
}

fn spawn(config: BrokerConfig) -> (BrokerHandle, BrokerClient) {
    let handle = Broker::spawn(config).expect("broker spawns");
    let client = BrokerClient::connect(handle.addr()).expect("client connects");
    (handle, client)
}

/// The `diagnostics` array of a broker `lint` reply, re-rendered — the
/// broker uses the same per-diagnostic serializer as `to_json`, so a
/// byte-level comparison against the cold report is exact.
fn remote_diagnostics(reply: &Json) -> String {
    assert_eq!(reply.bool_field("ok"), Some(true), "lint failed: {reply}");
    Json::Arr(
        reply
            .get("diagnostics")
            .and_then(Json::as_arr)
            .expect("diagnostics array")
            .to_vec(),
    )
    .to_string()
}

fn cold_diagnostics(
    clients: &[(String, Hist)],
    repo: &Repository,
    registry: &PolicyRegistry,
) -> String {
    let doc =
        sufs_broker::json::parse(&cold_json(clients, repo, registry)).expect("report JSON parses");
    doc.get("diagnostics")
        .expect("diagnostics array")
        .to_string()
}

/// The acceptance-criterion suite: ≥200 random publish/retract
/// mutations over the wire against one broker; after every step the
/// broker's incremental `lint` reply must match a cold full re-lint of
/// a mirror repository byte-for-byte.
#[test]
fn broker_lint_matches_cold_relint_over_random_wire_mutations() {
    let (handle, mut client) = spawn(BrokerConfig::default());
    let reply = client.publish_scenario(BASE).expect("scenario reply");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
    assert_eq!(reply.u64_field("clients"), Some(3), "{reply}");

    let sc = parse_scenario(BASE).expect("base scenario parses");
    let mut mirror = sc.repository.clone();
    let registry = sc.registry.clone();
    let mut clients = sc.clients.clone();
    clients.sort_by(|(a, _), (b, _)| a.cmp(b));

    let mut rng = StdRng::seed_from_u64(0x11C0_0902);
    let mut reused_total = 0u64;
    for step in 0..200 {
        // One random wire mutation, mirrored locally.
        let loc = LOCATIONS[rng.gen_range(0..LOCATIONS.len())];
        if rng.gen_range(0..3) < 2 {
            let body = POOL[rng.gen_range(0..POOL.len())];
            let cap = [None, Some(1u64), Some(2)][rng.gen_range(0..3usize)];
            let reply = client.publish(loc, body, cap).expect("publish reply");
            assert_eq!(reply.bool_field("ok"), Some(true), "step {step}: {reply}");
            mirror
                .restore(loc, parse_hist(body).unwrap(), cap.map(|c| c as usize))
                .expect("pool services are well-formed");
        } else {
            let reply = client.retract(loc).expect("retract reply");
            assert_eq!(reply.bool_field("ok"), Some(true), "step {step}: {reply}");
            mirror.retract(&Location::new(loc));
        }
        let reply = client.lint().expect("lint reply");
        reused_total += reply.u64_field("passes_reused").unwrap_or(0);
        assert_eq!(
            remote_diagnostics(&reply),
            cold_diagnostics(&clients, &mirror, &registry),
            "step {step}: broker lint diverged from a cold re-lint"
        );
    }
    assert!(
        reused_total > 0,
        "200 wire mutations never reused a cached pass"
    );

    // The reuse counters surface in `stats` for operators.
    let stats = client.stats().expect("stats reply");
    let lint = stats
        .get("stats")
        .and_then(|s| s.get("lint"))
        .expect("lint stats section");
    assert_eq!(lint.u64_field("requests"), Some(200));
    assert!(lint.u64_field("passes_reused").unwrap() >= reused_total);
    assert!(lint.get("reuse_rate").unwrap().as_f64().unwrap() > 0.0);

    client.shutdown().expect("shutdown reply");
    handle.wait();
}

/// The gate scenario: one client, a main provider and a backup.
const GATED: &str = "
    client c { open 1 { int[pay -> eps] } }
    service s_main { ext[pay -> eps] }
    service s_backup { ext[pay -> eps] }
";

/// `serve --deny-lint error` end to end: retracting the backup is
/// allowed (plans survive), retracting the last provider would empty
/// the client's plan space (SUFS007, an error) and must bounce with a
/// structured `lint_rejected` reply — leaving the repository, and its
/// lint report, untouched.
#[test]
fn deny_lint_gate_rejects_mutations_that_empty_a_plan_space() {
    let config = BrokerConfig {
        deny_lint: Some(Severity::Error),
        ..Default::default()
    };
    let (handle, mut client) = spawn(config);

    let reply = client.publish_scenario(GATED).expect("scenario reply");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");

    // Losing the backup keeps the plan space inhabited: allowed (the
    // SUFS010 single-point-of-failure note it introduces is info-level,
    // below the deny threshold).
    let reply = client.retract("s_backup").expect("retract reply");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");

    // Losing the last provider empties it: rejected, with the
    // introduced SUFS007 in the structured reply.
    let reply = client.retract("s_main").expect("retract reply");
    assert_eq!(reply.bool_field("ok"), Some(false), "{reply}");
    assert_eq!(reply.str_field("kind"), Some("lint_rejected"), "{reply}");
    assert!(reply
        .str_field("error")
        .unwrap()
        .contains("--deny-lint error"));
    let introduced = reply
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("rejection carries diagnostics");
    assert!(
        introduced
            .iter()
            .any(|d| d.str_field("code") == Some("SUFS007")),
        "{reply}"
    );
    assert!(reply.str_field("human").unwrap().contains("SUFS007"));

    // The rejected mutation must not have been applied: the repository
    // still serves `c`, and the live report still has zero errors.
    let reply = client.lint().expect("lint reply");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
    assert_eq!(reply.u64_field("errors"), Some(0), "{reply}");
    let repo = client.repo().expect("repo reply");
    assert!(repo.to_string().contains("s_main"), "{repo}");

    // A gated publish_scenario is vetted the same way: a newcomer whose
    // request nobody serves is turned away wholesale.
    let reply = client
        .publish_scenario("client ghost { open 9 { int[unserved -> eps] } }")
        .expect("scenario reply");
    assert_eq!(reply.bool_field("ok"), Some(false), "{reply}");
    assert_eq!(reply.str_field("kind"), Some("lint_rejected"), "{reply}");

    // Benign mutations still pass the gate.
    let reply = client
        .publish("s_extra", "ext[pay -> eps]", None)
        .expect("publish reply");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");

    client.shutdown().expect("shutdown reply");
    handle.wait();
}
