//! Seeded differential suite for the compositional synthesis engine:
//! whatever the repository looks like, reading plans off the composed
//! product must agree with the enumerative oracle.
//!
//! Three notions of agreement are asserted, matching the documented
//! guarantees of `sufs_core::product`:
//!
//! * the compositional **valid plan set** equals the full enumerative
//!   baseline's (`verify`);
//! * the compositional **report** (surviving candidates + verdicts, in
//!   order) equals the pruned enumerative report — both cut exactly
//!   the branches a compliance witness condemns;
//! * under a long seeded stream of `publish`/`retract` mutations, the
//!   **incrementally patched** product stays byte-identical to a cold
//!   rebuild at every step, without ever rebuilding from scratch.

use sufs_core::product::synthesize_one_shot;
use sufs_core::scenario::parse_scenario;
use sufs_core::{synthesize, verify, Engine, ProductStore, SynthesisOptions};
use sufs_hexpr::builder::*;
use sufs_hexpr::{Hist, Location, ParamValue, PolicyRef};
use sufs_net::{Plan, Repository};
use sufs_policy::{catalog, PolicyRegistry};
use sufs_rng::{Rng, SeedableRng, StdRng};

fn compositional() -> SynthesisOptions {
    SynthesisOptions {
        engine: Engine::Compositional,
        ..SynthesisOptions::default()
    }
}

/// Asserts the two engines agree on `client` against this repository
/// state: valid sets vs the full enumerative baseline, full reports vs
/// the pruned enumerative oracle.
fn check_engines_agree(client: &Hist, repo: &Repository, registry: &PolicyRegistry, label: &str) {
    let baseline = verify(client, repo, registry).unwrap();
    let baseline_valid: Vec<&Plan> = baseline.valid_plans().collect();
    let pruned = synthesize(
        client,
        repo,
        registry,
        &SynthesisOptions {
            prune: true,
            ..SynthesisOptions::default()
        },
    )
    .unwrap();
    let comp = synthesize(client, repo, registry, &compositional()).unwrap();
    assert_eq!(comp.stats.engine, Engine::Compositional, "{label}");
    assert_eq!(
        comp.report.valid_plans().collect::<Vec<_>>(),
        baseline_valid,
        "{label}: the compositional engine changed the valid plan set"
    );
    assert_eq!(
        comp.report.verdicts(),
        pruned.report.verdicts(),
        "{label}: the compositional report diverges from the pruned oracle"
    );
}

/// A random synthesis scenario: a client of 1–3 request/response
/// sessions (some policy-guarded) over a repository mixing compliant,
/// non-compliant, policy-violating and brokering services. Mirrors the
/// generator of `tests/synthesis_equiv.rs` so the two suites cover the
/// same space.
fn random_scenario(seed: u64) -> (Hist, Repository, PolicyRegistry) {
    let mut r = StdRng::seed_from_u64(seed);
    let replies = ["ok", "no", "later"];
    let subset = |r: &mut StdRng, max: usize| -> Vec<&'static str> {
        let k = r.gen_range(1..=max);
        replies[..k].to_vec()
    };

    let mut registry = PolicyRegistry::new();
    registry.register(catalog::blacklist("access"));
    let phi = PolicyRef::new("blacklist_access", [ParamValue::set(["evil"])]);

    let n_requests = r.gen_range(1usize..=3);
    let client = Hist::seq_all((0..n_requests).map(|i| {
        let offered = subset(&mut r, 2);
        let policy = r.gen_bool(0.5).then(|| phi.clone());
        request(
            i as u32 + 1,
            policy,
            seq([
                send("q", eps()),
                offer(offered.into_iter().map(|l| (l, eps()))),
            ]),
        )
    }));

    let mut repo = Repository::new();
    let n_services = r.gen_range(2usize..=4);
    for i in 0..n_services {
        let chosen = subset(&mut r, 3);
        let reply = choose(chosen.into_iter().map(|l| (l, eps())));
        let resource = if r.gen_bool(0.3) { "evil" } else { "fine" };
        let body = if r.gen_bool(0.3) {
            Hist::seq(
                request(100 + i as u32, None, send("w", eps())),
                seq([ev("access", [resource]), reply]),
            )
        } else {
            seq([ev("access", [resource]), reply])
        };
        repo.publish(format!("s{i}"), recv("q", body));
    }
    repo.publish("leaf", recv("w", eps()));
    repo.publish("deadleaf", recv("zz", eps()));
    (client, repo, registry)
}

#[test]
fn compositional_matches_enumerative_on_random_scenarios() {
    for seed in 0..15u64 {
        let (client, repo, registry) = random_scenario(seed);
        check_engines_agree(&client, &repo, &registry, &format!("seed {seed}"));
    }
}

#[test]
fn compositional_matches_enumerative_on_shipped_scenarios() {
    for name in [
        "hotel.sufs",
        "faulty.sufs",
        "payment.sufs",
        "storage.sufs",
        "metered.sufs",
    ] {
        let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
        let sc = parse_scenario(&std::fs::read_to_string(&path).unwrap()).unwrap();
        for (client_name, client) in &sc.clients {
            check_engines_agree(
                client,
                &sc.repository,
                &sc.registry,
                &format!("{name}:{client_name}"),
            );
        }
    }
}

/// The candidate services the mutation stream draws from: compliant
/// responders, a short-changing one, a policy violator and an
/// off-channel decoy.
fn mutation_pool() -> Vec<Hist> {
    vec![
        recv("q", choose([("ok", eps()), ("no", eps())])),
        recv("q", choose([("ok", eps())])),
        recv(
            "q",
            Hist::seq(ev("access", ["evil"]), choose([("ok", eps())])),
        ),
        recv("q", choose([("ok", eps()), ("later", eps())])),
        recv("zz", eps()),
    ]
}

#[test]
fn incrementally_patched_product_is_byte_identical_to_cold_rebuild() {
    let mut registry = PolicyRegistry::new();
    registry.register(catalog::blacklist("access"));
    let phi = PolicyRef::new("blacklist_access", [ParamValue::set(["evil"])]);
    let client = Hist::seq_all((1..=2u32).map(|i| {
        request(
            i,
            (i == 1).then(|| phi.clone()),
            seq([send("q", eps()), offer([("ok", eps()), ("no", eps())])]),
        )
    }));

    let pool = mutation_pool();
    let slots: Vec<Location> = (0..5).map(|i| Location::from(format!("s{i}"))).collect();
    let mut repo = Repository::new();
    repo.publish(slots[0].clone(), pool[0].clone());
    repo.publish(slots[1].clone(), pool[1].clone());

    let store = ProductStore::new();
    let opts = compositional();
    let mut r = StdRng::seed_from_u64(2026);
    let mut mutations = 0usize;
    while mutations < 200 {
        // One publish or retract per step; keep at least one service
        // published so the plan space never trivialises for long.
        let slot = &slots[r.gen_range(0..slots.len())];
        if repo.get(slot).is_some() && repo.len() > 1 && r.gen_bool(0.4) {
            repo.retract(slot);
        } else {
            let service = pool[r.gen_range(0..pool.len())].clone();
            repo.publish(slot.clone(), service);
        }
        mutations += 1;

        // The long-lived store patches; the one-shot store rebuilds
        // cold. Byte-identical reports, every step.
        let warm = store
            .synthesize(&client, &repo, &registry, &opts, None)
            .unwrap();
        let cold = synthesize_one_shot(&client, &repo, &registry, &opts, None).unwrap();
        assert_eq!(
            warm.report.verdicts(),
            cold.report.verdicts(),
            "step {mutations}: patched product diverged from a cold rebuild"
        );
        // And both agree with the enumerative oracle's valid set.
        let oracle = verify(&client, &repo, &registry).unwrap();
        assert_eq!(
            warm.report.valid_plans().collect::<Vec<_>>(),
            oracle.valid_plans().collect::<Vec<_>>(),
            "step {mutations}: engines disagree after a mutation"
        );
    }
    // Incrementality: one build at first sight of the client, patches
    // (never rebuilds) for all 200 mutations.
    let stats = store.stats();
    assert_eq!(
        stats.builds, 1,
        "mutations must patch, not rebuild: {stats:?}"
    );
    // A mutation that leaves every fingerprint intact (re-publishing an
    // identical body) is a read-off, not a patch; everything else must
    // patch. Either way, never a rebuild.
    assert_eq!(
        stats.builds + stats.patches + stats.reads,
        200,
        "every mutation should resolve as a patch or a read-off: {stats:?}"
    );
    assert!(
        stats.patches >= 100,
        "the stream should mostly force real patches: {stats:?}"
    );
}
