//! End-to-end pipeline: services written as λ-calculus **programs**,
//! effects extracted by the type-and-effect system, published to a
//! repository, statically verified, and executed monitor-free.

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs_core::verify::verify;
use sufs_hexpr::{Location, RequestId};
use sufs_lang::{eval, infer, parse_expr, trace_conforms};
use sufs_net::{ChoiceMode, MonitorMode, Network, Outcome, Repository, Scheduler};
use sufs_policy::{catalog, PolicyRegistry};

#[test]
fn programs_to_verified_plans() {
    // The client program books a resource under a blacklist policy.
    let client_src = "
        open 1 phi blacklist_access({forbidden}) {
            send query;
            offer[grant -> send ack | deny -> ()]
        }";
    let client = parse_expr(client_src).unwrap();
    let client_effect = infer(&client).unwrap().effect;

    // Three server programs.
    let polite_src = "
        offer[query ->
            #access(ok);
            choose[grant -> offer[ack -> ()] | deny -> ()]]";
    let snooping_src = "
        offer[query ->
            #access(forbidden);
            choose[grant -> offer[ack -> ()] | deny -> ()]]";
    let rude_src = "
        offer[query -> choose[busy -> ()]]";

    let mut repo = Repository::new();
    for (loc, src) in [
        ("polite", polite_src),
        ("snooping", snooping_src),
        ("rude", rude_src),
    ] {
        let prog = parse_expr(src).unwrap();
        let effect = infer(&prog).unwrap().effect;
        repo.publish(loc, effect);
    }

    let mut reg = PolicyRegistry::new();
    reg.register(catalog::blacklist("access"));

    let report = verify(&client_effect, &repo, &reg).unwrap();
    assert_eq!(report.len(), 3);
    let valid: Vec<_> = report.valid_plans().collect();
    assert_eq!(valid.len(), 1);
    assert_eq!(
        valid[0].service_for(RequestId::new(1)),
        Some(&Location::new("polite"))
    );

    // Execute the verified plan monitor-free: always clean.
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Audit, ChoiceMode::Committed);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..100 {
        let mut network = Network::new();
        network.add_client("c", client_effect.clone(), valid[0].clone());
        let r = scheduler.run(network, &mut rng, 10_000).unwrap();
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.violations.is_empty());
    }
}

#[test]
fn effect_soundness_along_the_pipeline() {
    // Every standalone run of a program traces a path of its effect.
    let programs = [
        "#boot; send hello; offer[hi -> () | bye -> #shutdown]",
        "rec f(x: unit) -> unit { choose[work -> #step(1); f(x) | rest -> ()] }(())",
        "let id = fun(y: unit) { y }; id(#only); send done",
        "frame guard [ #sensitive(1) ]; send done",
    ];
    let mut rng = StdRng::seed_from_u64(5);
    for src in programs {
        let prog = parse_expr(src).unwrap();
        let effect = infer(&prog).unwrap().effect;
        for _ in 0..25 {
            let run = eval(&prog, &mut rng, 100_000).unwrap();
            assert!(
                trace_conforms(&effect, &run.trace),
                "program {src:?}: trace {:?} is not a path of {effect}",
                run.trace
            );
        }
    }
}

#[test]
fn ill_typed_programs_never_reach_the_repository() {
    let bad = [
        "f(())",                               // unbound
        "let u = (); u(())",                   // not a function
        "rec f(x: unit) -> unit { f(x) }(())", // unguarded recursion
        "offer[a -> () | a -> ()]",            // duplicate guard
    ];
    for src in bad {
        let prog = parse_expr(src).unwrap();
        assert!(
            infer(&prog).is_err(),
            "program {src:?} should be rejected by the type-and-effect system"
        );
    }
}
