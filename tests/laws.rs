//! The balanced-prefix invariant of §3.1 over the paper's network:
//! "we shall only deal with histories that are prefixes of a balanced
//! history, because such are those that show up when executing a
//! network".

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs_net::{ChoiceMode, MonitorMode, Network, Scheduler};

#[test]
fn histories_stay_balanced_prefixes_throughout() {
    // Run the paper's network under many random schedules and assert the
    // balanced-prefix invariant at every step of every run.
    let repo = sufs::paper::repository();
    let reg = sufs::paper::registry();
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..50 {
        let mut net = Network::new();
        net.add_client("c1", sufs::paper::client_c1(), sufs::paper::plan_pi1());
        net.add_client("c2", sufs::paper::client_c2(), sufs::paper::plan_c2_s4());
        let result = scheduler.run(net.clone(), &mut rng, 10_000).unwrap();
        assert!(result.outcome.is_success());
        // Replay and check the invariant after every step.
        let mut replay = net;
        for step in &result.trace {
            let comp = &replay.components()[step.component];
            let (_, next) = sufs_net::component_steps(comp, &repo)
                .into_iter()
                .find(|(a, _)| a == &step.action)
                .expect("trace replays");
            *replay.component_mut(step.component) = next;
            for c in replay.components() {
                assert!(
                    c.history.is_balanced_prefix(),
                    "unbalanced history {} in {}",
                    c.history,
                    c.sess
                );
            }
        }
        // At termination every history is fully balanced.
        for c in replay.components() {
            assert!(c.history.is_balanced());
        }
    }
}
