//! Golden lint diagnostics for the bundled scenarios, plus seeded
//! robustness properties of the lint engine itself.

use sufs_core::scenario::parse_scenario;
use sufs_lint::{lint_scenario, lint_scenario_with, Code, LintReport};
use sufs_rng::{Rng, SeedableRng, StdRng};

fn source(name: &str) -> String {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap()
}

fn lint_file(name: &str) -> LintReport {
    let sc = parse_scenario(&source(name)).unwrap();
    lint_scenario(&sc).unwrap()
}

fn subjects_with(report: &LintReport, code: Code) -> Vec<&str> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .map(|d| d.subject.as_str())
        .collect()
}

#[test]
fn hotel_is_clean_except_the_dead_hotels() {
    let report = lint_file("hotel.sufs");
    assert_eq!(report.errors(), 0, "{report}");
    assert_eq!(report.warnings(), 0, "{report}");
    // Only the blacklisted/overpriced hotels are dead; the paper's valid
    // plans use br, s3 and s4.
    assert_eq!(
        subjects_with(&report, Code::DeadService),
        ["service s1", "service s2"]
    );
}

#[test]
fn payment_is_clean_except_the_rejected_services() {
    let report = lint_file("payment.sufs");
    assert_eq!(report.errors(), 0, "{report}");
    assert_eq!(report.warnings(), 0, "{report}");
    assert_eq!(
        subjects_with(&report, Code::DeadService),
        ["service gw_sloppy", "service bank_self"]
    );
}

#[test]
fn remaining_scenarios_are_fully_clean() {
    for name in ["storage.sufs", "metered.sufs", "faulty.sufs"] {
        let report = lint_file(name);
        assert!(report.is_clean(), "{name} is not clean:\n{report}");
    }
}

#[test]
fn lint_demo_covers_the_catalogue() {
    let report = lint_file("lint_demo.sufs");
    let codes: std::collections::BTreeSet<&str> =
        report.diagnostics.iter().map(|d| d.code.as_str()).collect();
    for expected in [
        "SUFS001", "SUFS002", "SUFS003", "SUFS004", "SUFS005", "SUFS006", "SUFS007",
    ] {
        assert!(codes.contains(expected), "missing {expected}:\n{report}");
    }
    assert!(report.errors() >= 1, "{report}");
    for d in &report.diagnostics {
        assert!(d.pos.line > 0, "diagnostic without a location: {d}");
        if matches!(
            d.code,
            Code::UnreachableEvent | Code::VacuousPolicy | Code::PlanContention
        ) {
            assert!(
                d.witness.as_ref().is_some_and(|w| !w.is_empty()),
                "automaton-backed finding without a witness: {d}"
            );
        }
    }
}

#[test]
fn output_is_deterministic_across_fresh_parses() {
    for name in ["hotel.sufs", "lint_demo.sufs"] {
        let src = source(name);
        let first = lint_scenario(&parse_scenario(&src).unwrap())
            .unwrap()
            .to_json(None);
        for _ in 0..3 {
            let again = lint_scenario(&parse_scenario(&src).unwrap())
                .unwrap()
                .to_json(None);
            assert_eq!(again, first, "{name} lints nondeterministically");
        }
    }
}

#[test]
fn findings_do_not_depend_on_generous_bounds() {
    // Any exploration bound and plan cap large enough for the scenario
    // must produce the same findings as the defaults. The floor must
    // clear the joint product of lint_demo's seven clients (~141k
    // states), or the deadlock pass truncates and reports SUFS009.
    let mut rng = StdRng::seed_from_u64(0x11e7);
    for name in ["hotel.sufs", "lint_demo.sufs"] {
        let src = source(name);
        let golden = lint_scenario(&parse_scenario(&src).unwrap())
            .unwrap()
            .to_json(None);
        for _ in 0..4 {
            let bound = rng.gen_range(150_000usize..500_000);
            let cap = rng.gen_range(1_000usize..11_000);
            let report = lint_scenario_with(&parse_scenario(&src).unwrap(), bound, cap).unwrap();
            assert_eq!(report.to_json(None), golden, "{name} with bound {bound}");
        }
    }
}

#[test]
fn paper_artifacts_are_never_flagged_vacuous_or_dead() {
    // The §2 example's policy and the services its valid plans actually
    // use must never trip W02/W05, whatever (generous) bounds we lint
    // under.
    let src = source("hotel.sufs");
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..4 {
        let bound = rng.gen_range(50_000usize..250_000);
        let report = lint_scenario_with(&parse_scenario(&src).unwrap(), bound, 10_000).unwrap();
        assert!(
            subjects_with(&report, Code::VacuousPolicy).is_empty(),
            "the hotel policy does forbid traces:\n{report}"
        );
        for used in ["service br", "service s3", "service s4"] {
            assert!(
                !subjects_with(&report, Code::DeadService).contains(&used),
                "{used} is in a valid plan:\n{report}"
            );
        }
    }
}
