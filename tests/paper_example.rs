//! Experiments E1–E5: the paper's §2 example, figure by figure.

use sufs::paper;
use sufs_contract::{compliant, Contract};
use sufs_core::verify::{verify, verify_plan, Violation};
use sufs_hexpr::{Event, Location, RequestId};
use sufs_net::{ChoiceMode, MonitorMode, Network, Outcome, Plan, Scheduler, StepAction};
use sufs_policy::PolicyRegistry;

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

/// E1 (Fig. 1): the parametric usage automaton `φ(bl, p, t)` classifies
/// hotel histories exactly as the paper narrates.
#[test]
fn fig1_policy_automaton() {
    let reg = paper::registry();
    let phi1 = reg.instantiate(&paper::phi1()).unwrap();
    let phi2 = reg.instantiate(&paper::phi2()).unwrap();

    let trace = |id: i64, p: i64, ta: i64| {
        vec![
            Event::new("sgn", [id]),
            Event::new("p", [p]),
            Event::new("ta", [ta]),
        ]
    };
    let s1 = trace(1, 45, 80);
    let s2 = trace(2, 70, 100);
    let s3 = trace(3, 90, 100);
    let s4 = trace(4, 50, 90);

    // "S1 and S4 violate the policy of C1": S1 is black listed, S4
    // respects neither threshold.
    assert!(phi1.forbids(s1.iter()));
    assert!(phi1.forbids(s4.iter()));
    assert!(phi1.respects(s2.iter()));
    assert!(phi1.respects(s3.iter()));

    // "S1, S3 do not satisfy the policy of C2 since they are black
    // listed."
    assert!(phi2.forbids(s1.iter()));
    assert!(phi2.forbids(s3.iter()));
    assert!(phi2.respects(s2.iter()));
    assert!(phi2.respects(s4.iter()));
}

/// E2 (Fig. 2): the compliance matrix. S1, S3, S4 are compliant with the
/// broker; S2 is not (the `Del` message).
#[test]
fn fig2_compliance_matrix() {
    let repo = paper::repository();
    // The broker-side conversation of request 3.
    let broker_body = sufs_hexpr::requests::requests(&paper::broker())[0]
        .body
        .clone();
    let broker_side = Contract::from_service(&broker_body).unwrap();

    let expectations = [("s1", true), ("s2", false), ("s3", true), ("s4", true)];
    for (loc, expected) in expectations {
        let service = repo.get(&Location::new(loc)).unwrap();
        let hotel_side = Contract::from_service(service).unwrap();
        let result = compliant(&broker_side, &hotel_side);
        assert_eq!(
            result.holds(),
            expected,
            "compliance Br ⊢ {loc} should be {expected}"
        );
        if loc == "s2" {
            let witness = result.witness().unwrap();
            assert!(
                witness.to_string().contains("del"),
                "S2's witness must blame the del message, got: {witness}"
            );
        }
    }

    // The clients are compliant with the broker.
    let c1_body = sufs_hexpr::requests::requests(&paper::client_c1())[0]
        .body
        .clone();
    let client_side = Contract::from_service(&c1_body).unwrap();
    let broker_contract = Contract::from_service(&paper::broker()).unwrap();
    assert!(compliant(&client_side, &broker_contract).holds());
}

/// E3 (§2): the security matrix — which plan, for which client, violates
/// the instantiated policy.
#[test]
fn fig2_security_matrix() {
    let repo = paper::repository();
    let reg = paper::registry();

    // For C1 (φ1): s1 and s4 violate, s3 passes; s2 passes security
    // (it fails compliance instead).
    let cases_c1 = [("s1", true), ("s2", false), ("s3", false), ("s4", true)];
    for (hotel, expect_security_violation) in cases_c1 {
        let plan = Plan::new().with(1u32, "br").with(3u32, hotel);
        let verdict = verify_plan(&paper::client_c1(), &plan, &repo, &reg).unwrap();
        let has_security = verdict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Security(_)));
        assert_eq!(
            has_security, expect_security_violation,
            "C1 with hotel {hotel}: security violation expected={expect_security_violation}"
        );
    }

    // For C2 (φ2): s1 and s3 violate, s4 passes, s2 passes security.
    let cases_c2 = [("s1", true), ("s2", false), ("s3", true), ("s4", false)];
    for (hotel, expect_security_violation) in cases_c2 {
        let plan = Plan::new().with(2u32, "br").with(3u32, hotel);
        let verdict = verify_plan(&paper::client_c2(), &plan, &repo, &reg).unwrap();
        let has_security = verdict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Security(_)));
        assert_eq!(
            has_security, expect_security_violation,
            "C2 with hotel {hotel}: security violation expected={expect_security_violation}"
        );
    }
}

/// E4 (§2): plan validity. π₁ is the unique valid plan for C1; for C2
/// the two plans discussed in the paper are invalid for the stated
/// reasons and {r2↦br, r3↦s4} is the unique valid one.
#[test]
fn sec2_plan_validity() {
    let repo = paper::repository();
    let reg = paper::registry();

    let report = verify(&paper::client_c1(), &repo, &reg).unwrap();
    // 5 direct bindings of r1, of which r1↦br exposes r3 with 5 choices:
    // 9 candidate plans in total.
    assert_eq!(report.len(), 9);
    let valid: Vec<&Plan> = report.valid_plans().collect();
    assert_eq!(valid, vec![&paper::plan_pi1()], "π₁ alone is valid for C1");

    let report2 = verify(&paper::client_c2(), &repo, &reg).unwrap();
    let valid2: Vec<&Plan> = report2.valid_plans().collect();
    assert_eq!(valid2, vec![&paper::plan_c2_s4()]);

    // π₂ fails on compliance (S2's Del), not security.
    let pi2 = verify_plan(&paper::client_c2(), &paper::plan_pi2(), &repo, &reg).unwrap();
    assert!(pi2.violations.iter().any(
        |v| matches!(v, Violation::NonCompliant { request, .. } if *request == RequestId::new(3))
    ));
    assert!(!pi2
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Security(_))));

    // The s3 plan fails on security (black listed), not compliance.
    let ps3 = verify_plan(&paper::client_c2(), &paper::plan_c2_s3(), &repo, &reg).unwrap();
    assert!(ps3
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Security(_))));
    assert!(!ps3
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NonCompliant { .. })));
}

/// E5 (Fig. 3): the computation fragment. Under π₁ (and π for C2 mapping
/// to s4) the two-client network runs to completion; the trace contains
/// the paper's steps in order for client C1, and C1's final history is
/// the balanced `⌞φ₁ sgn(3) p(90) ta(100) … ⌟φ₁`.
#[test]
fn fig3_computation() {
    let repo = paper::repository();
    let reg = paper::registry();
    let mut network = Network::new();
    network.add_client("c1", paper::client_c1(), paper::plan_pi1());
    network.add_client("c2", paper::client_c2(), paper::plan_c2_s4());

    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Enforcing, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(2013);
    let result = scheduler.run(network, &mut rng, 10_000).unwrap();
    assert_eq!(result.outcome, Outcome::Completed);

    // Client C1's steps, projected from the interleaved trace.
    let c1_steps: Vec<&StepAction> = result
        .trace
        .iter()
        .filter(|t| t.component == 0)
        .map(|t| &t.action)
        .collect();
    // Expected shape: open r1, τ(req), open r3, sgn, p, ta, τ(idc),
    // τ(bok|una), close r3, τ(cobo|noav), [τ(pay)], close r1.
    assert!(matches!(c1_steps[0], StepAction::Open { request, .. } if request.index() == 1));
    assert!(matches!(c1_steps[1], StepAction::Synch { chan, .. } if chan.as_str() == "req"));
    assert!(
        matches!(c1_steps[2], StepAction::Open { request, server, .. }
        if request.index() == 3 && server.as_str() == "s3")
    );
    assert!(
        matches!(c1_steps[3], StepAction::Event { event, .. } if event.name().as_str() == "sgn")
    );
    assert!(matches!(c1_steps[4], StepAction::Event { event, .. } if event.name().as_str() == "p"));
    assert!(
        matches!(c1_steps[5], StepAction::Event { event, .. } if event.name().as_str() == "ta")
    );
    assert!(matches!(c1_steps[6], StepAction::Synch { chan, .. } if chan.as_str() == "idc"));
    assert!(matches!(
        c1_steps.last().unwrap(),
        StepAction::Close { request, .. } if request.index() == 1
    ));

    // C1's history: ⌞φ₁ · the three S3 events · ⌟φ₁, balanced and valid.
    let h1 = &result.network.components()[0].history;
    assert!(h1.is_balanced());
    assert!(h1.is_valid(&reg).unwrap());
    let flat: Vec<String> = h1.flatten().iter().map(|e| e.to_string()).collect();
    assert_eq!(flat, vec!["#sgn(3)", "#p(90)", "#ta(100)"]);

    // C2's history mentions S4's events instead.
    let h2 = &result.network.components()[1].history;
    let flat2: Vec<String> = h2.flatten().iter().map(|e| e.to_string()).collect();
    assert_eq!(flat2, vec!["#sgn(4)", "#p(50)", "#ta(90)"]);

    // Both components interleaved in the schedule.
    let movers: std::collections::BTreeSet<usize> =
        result.trace.iter().map(|t| t.component).collect();
    assert_eq!(movers.len(), 2);
}

/// The full Fig. 3 rendering replays: the recorded trace reproduces the
/// configuration sequence when re-applied to the initial network.
#[test]
fn fig3_trace_renders_and_replays() {
    let repo = paper::repository();
    let reg = paper::registry();
    let mut network = Network::new();
    network.add_client("c1", paper::client_c1(), paper::plan_pi1());

    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Off, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(7);
    let result = scheduler.run(network.clone(), &mut rng, 10_000).unwrap();
    assert_eq!(result.outcome, Outcome::Completed);
    let rendered =
        sufs_net::trace::render_trace(&network, &result.trace, &repo).expect("must replay");
    assert!(rendered.contains("open r1"));
    assert!(rendered.contains("⌞hotel({1},45,100)"));
    assert!(rendered.contains("s3"));
    assert!(rendered.contains("close r1"));
}

/// Verification agrees between the two clients about the broker: no
/// plan binds r1/r2 directly to a hotel (non-compliant conversation).
#[test]
fn direct_hotel_bindings_rejected() {
    let repo = paper::repository();
    let reg = paper::registry();
    for (client, req) in [(paper::client_c1(), 1u32), (paper::client_c2(), 2u32)] {
        for hotel in ["s1", "s2", "s3", "s4"] {
            let plan = Plan::new().with(req, hotel);
            let verdict = verify_plan(&client, &plan, &repo, &reg).unwrap();
            assert!(
                !verdict.is_valid(),
                "binding r{req} directly to {hotel} must be invalid"
            );
        }
    }
}

/// The policy registry resolves both instantiations used by the clients.
#[test]
fn registry_resolves_both_instantiations() {
    let reg = paper::registry();
    assert!(reg.instantiate(&paper::phi1()).is_ok());
    assert!(reg.instantiate(&paper::phi2()).is_ok());
    assert!(reg
        .instantiate(&sufs_hexpr::PolicyRef::nullary("ghost"))
        .is_err());
    let _ = PolicyRegistry::new();
}
