//! Smoke tests for the `sufs` command-line tool against the bundled
//! hotel scenario.

use std::process::Command;

fn sufs(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_sufs"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn verify_reports_the_paper_plans() {
    let (stdout, _, ok) = sufs(&["verify", "scenarios/hotel.sufs"]);
    assert!(ok);
    assert!(stdout.contains("== c1 =="));
    assert!(stdout.contains("✓ {r1↦br, r3↦s3}"));
    assert!(stdout.contains("== c2 =="));
    assert!(stdout.contains("✓ {r2↦br, r3↦s4}"));
    assert!(stdout.contains("del!"), "S2's witness is shown");
}

#[test]
fn verify_flags_control_synthesis_modes() {
    // The baseline output must be identical whatever the engine knobs.
    let (baseline, _, ok) = sufs(&["verify", "scenarios/hotel.sufs", "--client", "c1"]);
    assert!(ok);
    for flags in [
        &["--jobs", "2"][..],
        &["--no-cache"][..],
        &["--jobs", "4", "--seed", "9"][..],
    ] {
        let mut args = vec!["verify", "scenarios/hotel.sufs", "--client", "c1"];
        args.extend_from_slice(flags);
        let (stdout, _, ok) = sufs(&args);
        assert!(ok, "flags {flags:?} failed");
        assert_eq!(stdout, baseline, "flags {flags:?} changed the report");
    }
    // Pruned mode keeps the valid plan; cut candidates may drop out.
    let (stdout, _, ok) = sufs(&[
        "verify",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--prune",
    ]);
    assert!(ok);
    assert!(stdout.contains("✓ {r1↦br, r3↦s3}"), "{stdout}");
}

#[test]
fn verify_stats_flag_prints_instrumentation() {
    let (stdout, _, ok) = sufs(&[
        "verify",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--stats",
        "--prune",
        "--jobs",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("synthesis:"), "{stdout}");
    assert!(stdout.contains("2 jobs"), "{stdout}");
    assert!(stdout.contains("hit rate"), "{stdout}");
    // --no-cache switches the cache (and its stats) off.
    let (stdout, _, ok) = sufs(&[
        "verify",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--stats",
        "--no-cache",
    ]);
    assert!(ok);
    assert!(stdout.contains("cache off"), "{stdout}");
}

#[test]
fn verify_plan_cap_flag_limits_the_search() {
    let (_, stderr, ok) = sufs(&[
        "verify",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--plan-cap",
        "1",
    ]);
    assert!(!ok);
    assert!(stderr.contains("more than 1 candidate plans"), "{stderr}");
}

#[test]
fn run_uses_the_verified_plan() {
    let (stdout, _, ok) = sufs(&[
        "run",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--runs",
        "20",
        "--committed",
        "--seed",
        "3",
    ]);
    assert!(ok);
    assert!(stdout.contains("using the verified plan {r1↦br, r3↦s3}"));
    assert!(stdout.contains("20 completed"));
    assert!(stdout.contains("unfailing"));
}

#[test]
fn run_with_forced_bad_plan_fails_observably() {
    let (stdout, _, ok) = sufs(&[
        "run",
        "scenarios/hotel.sufs",
        "--client",
        "c2",
        "--plan",
        "r2=br,r3=s2",
        "--runs",
        "100",
        "--committed",
        "--seed",
        "1",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("deadlocked") && !stdout.contains(" 0 deadlocked"),
        "the forced π₂ must deadlock sometimes:\n{stdout}"
    );
}

#[test]
fn single_run_prints_a_trace() {
    let (stdout, _, ok) = sufs(&[
        "run",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--trace",
        "--seed",
        "4",
    ]);
    assert!(ok);
    assert!(stdout.contains("outcome: Completed"));
    assert!(stdout.contains("open r1"));
}

#[test]
fn compliance_command() {
    let (stdout, _, ok) = sufs(&["compliance", "scenarios/hotel.sufs", "s3", "s3"]);
    assert!(ok);
    assert!(stdout.contains("⊢"));
    let (stdout, _, ok) = sufs(&["lts", "scenarios/hotel.sufs", "s3"]);
    assert!(ok);
    assert!(stdout.contains("states"));
    let (stdout, _, ok) = sufs(&["bpa", "scenarios/hotel.sufs", "s1"]);
    assert!(ok);
    assert!(stdout.contains("root:"));
}

#[test]
fn verify_net_runs_the_joint_analysis() {
    let (stdout, _, ok) = sufs(&["verify-net", "scenarios/hotel.sufs"]);
    assert!(ok);
    assert!(stdout.contains("c1: using {r1↦br, r3↦s3}"));
    assert!(stdout.contains("c2: using {r2↦br, r3↦s4}"));
    assert!(stdout.contains("no reachable deadlock"));
    assert!(stdout.contains("secure and unfailing"));
}

#[test]
fn discover_lists_matches_with_reasons() {
    let (stdout, _, ok) = sufs(&["discover", "scenarios/hotel.sufs", "c1"]);
    assert!(ok);
    assert!(stdout.contains("request r1"));
    assert!(stdout.contains("✓ br"));
    assert!(stdout.contains("✗ s1"));
    assert!(stdout.contains("req!"));
}

#[test]
fn payment_scenario_has_one_valid_plan() {
    let (stdout, _, ok) = sufs(&["verify", "scenarios/payment.sufs"]);
    assert!(ok);
    assert!(stdout.contains("1 valid"));
    assert!(stdout.contains("✓ {r1↦gw_honest, r2↦bank_ext}"));
    assert!(stdout.contains("no_self_audit violated"));
}

#[test]
fn storage_scenario_shows_history_dependence() {
    let (stdout, _, ok) = sufs(&["verify", "scenarios/storage.sufs"]);
    assert!(ok);
    // For sync, only read_cache is rejected (no_write_after_read);
    // for the auditor, only the shady mount is rejected (black list).
    assert!(stdout.contains("✗ {r1↦read_cache}"));
    assert!(stdout.contains("✓ {r1↦write_verify}"));
    assert!(stdout.contains("✗ {r2↦shady_mount}"));
    assert!(stdout.contains("✓ {r2↦read_cache}"));
}

#[test]
fn metered_scenario_reports_budgets() {
    let (stdout, _, ok) = sufs(&["verify", "scenarios/metered.sufs"]);
    assert!(ok);
    assert!(stdout.contains("within budget (worst case 15)"));
    assert!(stdout.contains("budget exceeded (witnessed cost 45)"));
}

#[test]
fn errors_are_reported() {
    let (_, stderr, ok) = sufs(&["verify", "scenarios/nope.sufs"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    let (_, stderr, ok) = sufs(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (stdout, _, ok) = sufs(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage"));
    let (_, stderr, ok) = sufs(&[
        "run",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--plan",
        "r1~br",
    ]);
    assert!(!ok);
    assert!(stderr.contains("bad plan binding"));
    let (_, stderr, ok) = sufs(&["verify", "scenarios/hotel.sufs", "--client", "ghost"]);
    assert!(!ok);
    assert!(stderr.contains("no client named"));
    let (_, stderr, ok) = sufs(&["discover", "scenarios/hotel.sufs", "br"]);
    assert!(!ok);
    assert!(stderr.contains("no client named"));
}

#[test]
fn flags_accept_equals_and_reject_unknown() {
    let (stdout, _, ok) = sufs(&["verify", "scenarios/hotel.sufs", "--client=c1"]);
    assert!(ok);
    assert!(stdout.contains("== c1 =="));
    assert!(!stdout.contains("== c2 =="));
    let (_, stderr, ok) = sufs(&["verify", "scenarios/hotel.sufs", "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--frobnicate`"), "{stderr}");
    let (_, stderr, ok) = sufs(&["run", "scenarios/hotel.sufs", "--client"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"), "{stderr}");
    let (_, stderr, ok) = sufs(&["lts", "scenarios/hotel.sufs", "s3", "--dot=yes"]);
    assert!(!ok);
    assert!(stderr.contains("takes no value"), "{stderr}");
}

#[test]
fn lint_reports_and_gates_the_exit_code() {
    // Hotel: two dead hotels plus four single-point-of-failure notes
    // are info-level; warnings stay deniable.
    let (stdout, _, ok) = sufs(&["lint", "scenarios/hotel.sufs"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 error(s), 0 warning(s), 6 info(s)"));
    assert!(stdout.contains("SUFS010"), "{stdout}");
    let (_, _, ok) = sufs(&["lint", "scenarios/hotel.sufs", "--deny", "warnings"]);
    assert!(ok);
    // The demo scenario has an error: nonzero exit even without --deny.
    let (stdout, _, ok) = sufs(&["lint", "scenarios/lint_demo.sufs"]);
    assert!(!ok, "errors must fail the exit code:\n{stdout}");
    assert!(stdout.contains("SUFS007"));
    let (stdout, _, ok) = sufs(&["lint", "scenarios/lint_demo.sufs", "--json"]);
    assert!(!ok);
    assert!(stdout.starts_with("{\"file\":\"scenarios/lint_demo.sufs\""));
    assert!(stdout.contains("\"summary\":"));
    let (_, stderr, ok) = sufs(&["lint", "scenarios/hotel.sufs", "--deny", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown lint class"), "{stderr}");
}

#[test]
fn lint_cluster_scenario_trips_the_repository_passes() {
    // The cluster demo is clean one client at a time but hazardous as a
    // whole: contention (SUFS006), a deadlocking schedule (SUFS009) and
    // four single points of failure (SUFS010).
    let (stdout, _, ok) = sufs(&["lint", "scenarios/lint_cluster.sufs"]);
    assert!(ok, "warnings alone must not fail the exit code:\n{stdout}");
    assert!(stdout.contains("SUFS006"), "{stdout}");
    assert!(stdout.contains("SUFS009"), "{stdout}");
    assert!(stdout.contains("SUFS010"), "{stdout}");
    assert!(stdout.contains("0 error(s), 3 warning(s), 4 info(s)"));
    let (_, _, ok) = sufs(&["lint", "scenarios/lint_cluster.sufs", "--deny", "warnings"]);
    assert!(!ok, "--deny warnings must reject the cluster demo");
}

#[test]
fn lint_json_witnesses_follow_the_stable_schema() {
    // Every automaton-backed pass must emit a witness trace in the
    // documented shape: an array of non-empty step strings.
    let (stdout, _, _) = sufs(&["lint", "scenarios/lint_cluster.sufs", "--json"]);
    let doc = sufs_broker::json::parse(stdout.trim()).expect("lint --json emits valid JSON");
    assert_eq!(doc.str_field("file"), Some("scenarios/lint_cluster.sufs"));
    let diags = doc
        .get("diagnostics")
        .and_then(sufs_broker::Json::as_arr)
        .expect("diagnostics array");
    assert!(!diags.is_empty());
    for d in diags {
        for key in ["code", "pass", "severity", "subject", "message"] {
            assert!(d.str_field(key).is_some(), "missing `{key}` in {d}");
        }
        assert!(d.u64_field("line").is_some(), "{d}");
        assert!(d.u64_field("column").is_some(), "{d}");
        let code = d.str_field("code").unwrap();
        assert!(code.starts_with("SUFS"), "{code}");
        // The automaton-backed repository passes always carry a trace.
        if ["SUFS006", "SUFS009", "SUFS010"].contains(&code) {
            let witness = d
                .get("witness")
                .and_then(sufs_broker::Json::as_arr)
                .unwrap_or_else(|| panic!("{code} must carry a witness: {d}"));
            assert!(!witness.is_empty());
            assert!(witness
                .iter()
                .all(|w| w.as_str().is_some_and(|s| !s.is_empty())));
        }
    }
    let summary = doc.get("summary").expect("summary object");
    for key in ["errors", "warnings", "infos"] {
        assert!(summary.u64_field(key).is_some(), "missing summary.{key}");
    }
    // Deterministic ordering: two runs render byte-identical JSON.
    let (again, _, _) = sufs(&["lint", "scenarios/lint_cluster.sufs", "--json"]);
    assert_eq!(stdout, again, "lint output must be deterministic");
}

#[test]
fn lint_and_serve_parse_the_new_flags_strictly() {
    // A file and --addr are mutually exclusive for `lint`.
    let (_, stderr, ok) = sufs(&["lint", "scenarios/hotel.sufs", "--addr", "127.0.0.1:1"]);
    assert!(!ok);
    assert!(stderr.contains("drop the file argument"), "{stderr}");
    let (_, stderr, ok) = sufs(&["lint", "scenarios/hotel.sufs", "--addr"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"), "{stderr}");
    // `serve` validates the deny level before binding a socket.
    let (_, stderr, ok) = sufs(&["serve", "--deny-lint", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown deny level"), "{stderr}");
    let (_, stderr, ok) = sufs(&["serve", "--deny-lint"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"), "{stderr}");
    // The flag is declared by `serve` only.
    let (_, stderr, ok) = sufs(&["lint", "scenarios/hotel.sufs", "--deny-lint", "error"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--deny-lint`"), "{stderr}");
}

#[test]
fn serve_parses_election_flags_strictly() {
    // The mode is validated before binding a socket.
    let (_, stderr, ok) = sufs(&["serve", "--election", "raft"]);
    assert!(!ok);
    assert!(stderr.contains("unknown election mode `raft`"), "{stderr}");
    let (_, stderr, ok) = sufs(&["serve", "--election"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"), "{stderr}");
    // The timeout is whole milliseconds, and zero is rejected.
    let (_, stderr, ok) = sufs(&["serve", "--election-timeout", "fast"]);
    assert!(!ok);
    assert!(stderr.contains("bad election timeout `fast`"), "{stderr}");
    let (_, stderr, ok) = sufs(&["serve", "--election-timeout", "0"]);
    assert!(!ok);
    assert!(stderr.contains("bad election timeout `0`"), "{stderr}");
    let (_, stderr, ok) = sufs(&["serve", "--election-timeout"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"), "{stderr}");
    let (_, stderr, ok) = sufs(&["serve", "--election-seed", "coin"]);
    assert!(!ok);
    assert!(stderr.contains("bad election seed `coin`"), "{stderr}");
    // The flags are declared by `serve` only.
    let (_, stderr, ok) = sufs(&["promote", "--election", "auto"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--election`"), "{stderr}");
    let (_, stderr, ok) = sufs(&["stats", "--election-timeout", "50"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown flag `--election-timeout`"),
        "{stderr}"
    );
}

#[test]
fn faults_flag_injects_and_reports() {
    let (stdout, _, ok) = sufs(&[
        "run",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--runs",
        "20",
        "--committed",
        "--seed",
        "3",
        "--faults",
        "drop=0.2,seed=5",
    ]);
    assert!(ok);
    assert!(stdout.contains("injecting faults:"), "{stdout}");
    assert!(stdout.contains("20 runs:"));
    assert!(
        stdout.contains("; faults:"),
        "dropped synchs must show in the summary:\n{stdout}"
    );
    // Message loss only delays a verified plan; it never makes it fail.
    assert!(stdout.contains("unfailing"), "{stdout}");
}

#[test]
fn faults_flag_rejects_bad_specs() {
    let (_, stderr, ok) = sufs(&[
        "run",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--faults",
        "flux=0.1",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown fault setting"), "{stderr}");
}

#[test]
fn faulty_scenario_recovers_via_the_backup_plan() {
    // No --faults flag: the scenario's own `faults { … }` block arms the
    // injector; --recover builds the fallback chain from the verifier.
    let (stdout, _, ok) = sufs(&[
        "run",
        "scenarios/faulty.sufs",
        "--runs",
        "30",
        "--committed",
        "--seed",
        "9",
        "--recover",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("injecting faults:"), "{stdout}");
    assert!(
        stdout.contains("recovery armed: 2 verified fallback plan(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("30 completed"), "{stdout}");
    assert!(stdout.contains("unfailing"), "{stdout}");
}

#[test]
fn no_subcommand_prints_usage_listing_every_command() {
    let out = Command::new(env!("CARGO_BIN_EXE_sufs"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "bare `sufs` must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for cmd in [
        "verify",
        "verify-net",
        "run",
        "lint",
        "compliance",
        "discover",
        "lts",
        "bpa",
        "serve",
        "promote",
        "publish",
        "plan",
        "run-remote",
        "retract",
        "stats",
        "shutdown",
    ] {
        assert!(
            stderr.contains(&format!("sufs {cmd}")),
            "usage must list `sufs {cmd}`:\n{stderr}"
        );
    }
}

#[test]
fn exit_codes_are_pinned() {
    let code = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_sufs"))
            .args(args)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("binary runs")
            .status
            .code()
    };
    assert_eq!(code(&[]), Some(1));
    assert_eq!(code(&["frobnicate"]), Some(1));
    assert_eq!(code(&["help"]), Some(0));
    assert_eq!(code(&["--help"]), Some(0));
    assert_eq!(code(&["verify", "scenarios/hotel.sufs"]), Some(0));
    assert_eq!(code(&["verify", "scenarios/nope.sufs"]), Some(1));
    assert_eq!(code(&["stats"]), Some(1), "remote commands need --addr");
}

#[test]
fn verify_json_emits_machine_readable_verdicts() {
    let (stdout, _, ok) = sufs(&["verify", "scenarios/hotel.sufs", "--client", "c1", "--json"]);
    assert!(ok);
    assert!(
        stdout.starts_with("{\"schema_version\":1,\"file\":\"scenarios/hotel.sufs\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"client\":\"c1\""), "{stdout}");
    assert!(
        stdout.contains("\"valid\":[\"{r1↦br, r3↦s3}\"]"),
        "{stdout}"
    );
    assert!(stdout.contains("\"verdicts\":["), "{stdout}");
    assert!(stdout.contains("\"bindings\":{\"r1\":\"br\""), "{stdout}");
    assert!(stdout.contains("\"stats\":{\"candidates\":9"), "{stdout}");
    // The per-plan quantitative budgets ride along for metered scenarios.
    let (stdout, _, ok) = sufs(&["verify", "scenarios/metered.sufs", "--json"]);
    assert!(ok);
    assert!(stdout.contains("\"budgets\":["), "{stdout}");
    assert!(stdout.contains("within budget (worst case 15)"), "{stdout}");
}

#[test]
fn serve_round_trip_over_the_cli() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_sufs"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut lines = BufReader::new(daemon.stdout.take().expect("piped stdout")).lines();
    let banner = lines.next().expect("banner line").expect("banner reads");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("banner ends with the address")
        .to_owned();

    let (stdout, stderr, ok) = sufs(&["publish", "scenarios/hotel.sufs", "--addr", &addr]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("published 5 service(s), 1 policy(ies)"),
        "{stdout}"
    );
    let (stdout, _, ok) = sufs(&[
        "plan",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--addr",
        &addr,
    ]);
    assert!(ok);
    assert!(stdout.contains("== c1 (remote) =="), "{stdout}");
    assert!(stdout.contains("✓ {r1↦br, r3↦s3}"), "{stdout}");
    let (stdout, _, ok) = sufs(&["stats", "--addr", &addr]);
    assert!(ok);
    assert!(stdout.contains("\"requests\":"), "{stdout}");
    let (stdout, _, ok) = sufs(&["shutdown", "--addr", &addr]);
    assert!(ok, "{stdout}");
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon must drain cleanly");
}

#[test]
fn mermaid_flag_emits_a_sequence_diagram() {
    let (stdout, _, ok) = sufs(&[
        "run",
        "scenarios/hotel.sufs",
        "--client",
        "c1",
        "--mermaid",
        "--seed",
        "3",
    ]);
    assert!(ok);
    assert!(stdout.contains("sequenceDiagram"));
    assert!(stdout.contains("c1-->>br: open r1"));
}

#[test]
fn gen_is_deterministic_and_parses_flags_strictly() {
    // `--flag value` and `--flag=value` are interchangeable, and the
    // output is a pure function of the configuration.
    let (a, _, ok) = sufs(&["gen", "--profile", "star", "--services", "6", "--seed", "7"]);
    assert!(ok);
    let (b, _, ok) = sufs(&["gen", "--profile=star", "--services=6", "--seed=7"]);
    assert!(ok);
    assert_eq!(a, b, "flag spellings changed the scenario");
    assert!(
        a.starts_with("// Generated by `sufs gen --profile star"),
        "{a}"
    );
    assert!(a.contains("service hub_a"), "{a}");

    // Unknown flags are rejected, not ignored.
    let (_, stderr, ok) = sufs(&["gen", "--profile", "star", "--sevrices", "6"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--sevrices`"), "{stderr}");

    // Bad values are diagnosed.
    let (_, stderr, ok) = sufs(&["gen", "--profile", "ring"]);
    assert!(!ok);
    assert!(stderr.contains("bad profile `ring`"), "{stderr}");
    let (_, stderr, ok) = sufs(&["gen", "--profile", "star", "--policies", "deny,frmae"]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy layer `frmae`"), "{stderr}");
    let (_, stderr, ok) = sufs(&["gen"]);
    assert!(!ok);
    assert!(stderr.contains("needs --profile"), "{stderr}");
}

#[test]
fn replay_parses_flags_strictly_and_reports_failures() {
    let (_, stderr, ok) = sufs(&["replay", "scenarios/runs", "--recird"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--recird`"), "{stderr}");
    let (_, stderr, ok) = sufs(&["replay", "scenarios/runs", "--jobs", "many"]);
    assert!(!ok);
    assert!(stderr.contains("bad job count `many`"), "{stderr}");
    // `--record` is a switch: a value is an error.
    let (_, stderr, ok) = sufs(&["replay", "scenarios/runs", "--record=yes"]);
    assert!(!ok);
    assert!(stderr.contains("takes no value"), "{stderr}");
    // An empty selection is an error, not a silent pass.
    let (_, stderr, ok) = sufs(&["replay", "scenarios/runs", "--filter", "no-such-file"]);
    assert!(!ok);
    assert!(stderr.contains("match `no-such-file`"), "{stderr}");

    // A single legacy golden replays clean through the CLI (in-process
    // legs only: the broker leg is covered by tests/replay.rs and CI).
    let (stdout, stderr, ok) = sufs(&["replay", "scenarios/runs/lint_demo.sufsrun", "--no-broker"]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("replayed 1 file(s): 1 passed, 0 failed"),
        "{stdout}"
    );
}
