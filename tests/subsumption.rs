//! Policy subsumption and its consequence for plan synthesis: if `φ_s`
//! subsumes `φ_w` (every trace forbidden by `φ_w` is forbidden by
//! `φ_s`), then every plan valid for a client under the *stricter*
//! `φ_s` is also valid under the *weaker* `φ_w` — verification results
//! transfer monotonically along policy implication.

use sufs::paper;
use sufs_core::verify::verify;
use sufs_hexpr::builder::*;
use sufs_hexpr::{Hist, ParamValue, PolicyRef};
use sufs_net::Plan;
use sufs_policy::automata_bridge::{subsumes, system_alphabet};

fn client_with(policy: PolicyRef) -> Hist {
    request(
        1,
        Some(policy),
        seq([
            send("req", eps()),
            offer([("cobo", send("pay", eps())), ("noav", eps())]),
        ]),
    )
}

fn phi(bl: &[i64], p: i64, t: i64) -> PolicyRef {
    PolicyRef::new(
        "hotel",
        [
            ParamValue::set(bl.to_vec()),
            ParamValue::int(p),
            ParamValue::int(t),
        ],
    )
}

#[test]
fn subsumption_over_the_system_alphabet() {
    let repo = paper::repository();
    let reg = paper::registry();
    let alphabet = system_alphabet(repo.iter().map(|(_, h)| h));
    // sgn/p/ta events of all four hotels are in the alphabet.
    assert!(alphabet.len() >= 10);

    let strict = reg.instantiate(&phi(&[1, 3, 4], 40, 100)).unwrap();
    let weak = reg.instantiate(&phi(&[1], 45, 100)).unwrap();
    assert!(subsumes(&strict, &weak, &alphabet));
    assert!(!subsumes(&weak, &strict, &alphabet));
}

#[test]
fn valid_plans_transfer_from_stricter_to_weaker() {
    let repo = paper::repository();
    let reg = paper::registry();
    let strict_ref = phi(&[1, 3, 4], 40, 100);
    let weak_ref = phi(&[1], 45, 100);

    // Confirm the implication premise over the system alphabet.
    let alphabet = system_alphabet(repo.iter().map(|(_, h)| h));
    let strict = reg.instantiate(&strict_ref).unwrap();
    let weak = reg.instantiate(&weak_ref).unwrap();
    assert!(subsumes(&strict, &weak, &alphabet));

    let strict_report = verify(&client_with(strict_ref), &repo, &reg).unwrap();
    let weak_report = verify(&client_with(weak_ref), &repo, &reg).unwrap();
    let strict_valid: Vec<&Plan> = strict_report.valid_plans().collect();
    let weak_valid: Vec<&Plan> = weak_report.valid_plans().collect();

    // Monotonicity: strict-valid ⊆ weak-valid.
    for p in &strict_valid {
        assert!(
            weak_valid.contains(p),
            "plan {p} valid under the stricter policy but not the weaker one"
        );
    }
    // And the inclusion is strict here: the weaker client also accepts
    // S3 (price 90 > 45 but rating 100 ≥ 100), which the stricter black
    // list forbids.
    assert!(weak_valid.len() > strict_valid.len());
    // Under φ({1,3,4},40,100) only S2 is neither black-listed nor
    // threshold-violating — but S2 fails compliance, so nothing is left.
    assert!(strict_valid.is_empty());
    assert_eq!(weak_valid.len(), 1);
}

#[test]
fn incomparable_instantiations_do_not_transfer() {
    // The paper's own φ₁ and φ₂ are incomparable: each forbids a trace
    // the other allows (C1 accepts S4's trace? no — φ₁ forbids S4 but
    // allows S3; φ₂ forbids S3 but allows S4).
    let repo = paper::repository();
    let reg = paper::registry();
    let alphabet = system_alphabet(repo.iter().map(|(_, h)| h));
    let phi1 = reg.instantiate(&paper::phi1()).unwrap();
    let phi2 = reg.instantiate(&paper::phi2()).unwrap();
    assert!(!subsumes(&phi1, &phi2, &alphabet));
    assert!(!subsumes(&phi2, &phi1, &alphabet));
}
