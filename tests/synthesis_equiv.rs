//! Seeded equivalence properties for plan synthesis: whatever the
//! configuration — cached, pruned, parallel, or any combination — the
//! synthesizer must agree with the plain sequential pipeline.
//!
//! Two notions of agreement are asserted, matching the documented
//! guarantees of `sufs_core::synthesize`:
//!
//! * with pruning **off**, the full report (every verdict, every
//!   violation, in order) equals the sequential baseline's;
//! * with pruning **on**, the *valid plan set* equals the baseline's
//!   (compliance-rejected candidates may be cut before verification).

use sufs_core::scenario::parse_scenario;
use sufs_core::{synthesize, verify, Synthesis, SynthesisOptions};
use sufs_hexpr::builder::*;
use sufs_hexpr::{Hist, ParamValue, PolicyRef};
use sufs_net::{Plan, Repository};
use sufs_policy::{catalog, PolicyRegistry};
use sufs_rng::{Rng, SeedableRng, StdRng};

/// Every mode under test: (jobs, cache, prune).
const MODES: &[(usize, bool, bool)] = &[
    (1, true, false),
    (1, false, false),
    (4, true, false),
    (1, true, true),
    (4, true, true),
    (4, false, true),
];

fn check_equivalence(client: &Hist, repo: &Repository, registry: &PolicyRegistry, label: &str) {
    let baseline = verify(client, repo, registry).unwrap();
    let baseline_valid: Vec<&Plan> = baseline.valid_plans().collect();
    for &(jobs, cache, prune) in MODES {
        let opts = SynthesisOptions {
            jobs,
            cache,
            prune,
            // Distinct seeds must never change results.
            seed: jobs as u64 * 31 + cache as u64,
            ..SynthesisOptions::default()
        };
        let synth: Synthesis = synthesize(client, repo, registry, &opts).unwrap();
        if prune {
            let valid: Vec<&Plan> = synth.report.valid_plans().collect();
            assert_eq!(
                valid, baseline_valid,
                "{label}: pruned mode (jobs={jobs}, cache={cache}) changed the valid plan set"
            );
        } else {
            assert_eq!(
                synth.report.verdicts(),
                baseline.verdicts(),
                "{label}: mode (jobs={jobs}, cache={cache}) changed the report"
            );
        }
    }
}

/// A random synthesis scenario: a client of 1–3 request/response
/// sessions (some policy-guarded) over a repository mixing compliant,
/// non-compliant, policy-violating and brokering services.
fn random_scenario(seed: u64) -> (Hist, Repository, PolicyRegistry) {
    let mut r = StdRng::seed_from_u64(seed);
    let replies = ["ok", "no", "later"];
    let subset = |r: &mut StdRng, max: usize| -> Vec<&'static str> {
        let k = r.gen_range(1..=max);
        replies[..k].to_vec()
    };

    let mut registry = PolicyRegistry::new();
    registry.register(catalog::blacklist("access"));
    let phi = PolicyRef::new("blacklist_access", [ParamValue::set(["evil"])]);

    let n_requests = r.gen_range(1usize..=3);
    let client = Hist::seq_all((0..n_requests).map(|i| {
        let offered = subset(&mut r, 2);
        let policy = r.gen_bool(0.5).then(|| phi.clone());
        request(
            i as u32 + 1,
            policy,
            seq([
                send("q", eps()),
                offer(offered.into_iter().map(|l| (l, eps()))),
            ]),
        )
    }));

    let mut repo = Repository::new();
    let n_services = r.gen_range(2usize..=4);
    for i in 0..n_services {
        let chosen = subset(&mut r, 3);
        let reply = choose(chosen.into_iter().map(|l| (l, eps())));
        let resource = if r.gen_bool(0.3) { "evil" } else { "fine" };
        let body = if r.gen_bool(0.3) {
            // A broker: answering exposes a nested request of its own.
            Hist::seq(
                request(100 + i as u32, None, send("w", eps())),
                seq([ev("access", [resource]), reply]),
            )
        } else {
            seq([ev("access", [resource]), reply])
        };
        repo.publish(format!("s{i}"), recv("q", body));
    }
    // Leaves for the brokers' nested requests: one that answers, one
    // that cannot.
    repo.publish("leaf", recv("w", eps()));
    repo.publish("deadleaf", recv("zz", eps()));
    (client, repo, registry)
}

#[test]
fn random_scenarios_are_mode_equivalent() {
    for seed in 0..15u64 {
        let (client, repo, registry) = random_scenario(seed);
        check_equivalence(&client, &repo, &registry, &format!("seed {seed}"));
    }
}

#[test]
fn shipped_scenarios_are_mode_equivalent() {
    for name in [
        "hotel.sufs",
        "faulty.sufs",
        "payment.sufs",
        "storage.sufs",
        "metered.sufs",
    ] {
        let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
        let sc = parse_scenario(&std::fs::read_to_string(&path).unwrap()).unwrap();
        for (client_name, client) in &sc.clients {
            check_equivalence(
                client,
                &sc.repository,
                &sc.registry,
                &format!("{name}:{client_name}"),
            );
        }
    }
}

#[test]
fn pruned_synthesis_prunes_on_random_scenarios() {
    // Sanity: over the seed sweep, pruning actually fires somewhere —
    // otherwise the equivalence above would be vacuous.
    let mut pruned_total = 0usize;
    for seed in 0..15u64 {
        let (client, repo, registry) = random_scenario(seed);
        let synth = synthesize(
            &client,
            &repo,
            &registry,
            &SynthesisOptions {
                prune: true,
                ..SynthesisOptions::default()
            },
        )
        .unwrap();
        pruned_total += synth.stats.pruned_subtrees;
    }
    assert!(pruned_total > 0, "no subtree was ever pruned");
}
