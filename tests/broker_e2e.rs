//! End-to-end tests for the broker daemon: the dynamic repository,
//! incremental re-synthesis through the shared cache, admission
//! control, structured failure replies, and graceful shutdown.
//!
//! The centrepiece is [`broker_matches_in_process_synthesis_under_
//! mutation`]: one hundred-plus seeded, randomized repository-mutation /
//! plan-query interleavings against a single long-lived daemon, with
//! every reply checked verdict-for-verdict against a fresh in-process
//! `synthesize` over a mirror repository. A stale cache entry, a missed
//! invalidation, or a lost mutation shows up as a verdict mismatch.

use sufs_broker::{Broker, BrokerClient, BrokerConfig, BrokerHandle, Json};
use sufs_core::verify::verify;
use sufs_hexpr::builder::*;
use sufs_hexpr::{Hist, Location};
use sufs_net::Repository;
use sufs_policy::PolicyRegistry;
use sufs_rng::{Rng, SeedableRng, StdRng};

fn spawn(config: BrokerConfig) -> (BrokerHandle, BrokerClient) {
    let handle = Broker::spawn(config).expect("broker spawns");
    let client = BrokerClient::connect(handle.addr()).expect("client connects");
    (handle, client)
}

/// The booking client of the verifier's own tests: one request, two
/// acceptable outcomes.
fn booking_client() -> Hist {
    request(
        1,
        None,
        seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
    )
}

/// Candidate services for the randomized test: two compliant variants,
/// one non-compliant, one on the wrong channel entirely.
fn service_pool() -> Vec<Hist> {
    vec![
        recv("req", choose([("ok", eps()), ("no", eps())])),
        recv("req", choose([("ok", eps())])),
        recv("req", choose([("ok", eps()), ("later", eps())])),
        recv("zzz", eps()),
    ]
}

/// A comparable digest of a verdict set: `(plan, valid, violations)`
/// triples in report order.
type VerdictKey = Vec<(String, bool, Vec<String>)>;

fn local_verdicts(client: &Hist, repo: &Repository, registry: &PolicyRegistry) -> VerdictKey {
    verify(client, repo, registry)
        .expect("in-process verify succeeds")
        .verdicts()
        .iter()
        .map(|v| {
            (
                v.plan.to_string(),
                v.is_valid(),
                v.violations.iter().map(|x| x.to_string()).collect(),
            )
        })
        .collect()
}

fn remote_verdicts(reply: &Json) -> VerdictKey {
    assert_eq!(reply.bool_field("ok"), Some(true), "plan failed: {reply}");
    reply
        .get("verdicts")
        .and_then(Json::as_arr)
        .expect("verdicts array")
        .iter()
        .map(|v| {
            (
                v.str_field("plan").expect("plan field").to_owned(),
                v.bool_field("valid").expect("valid field"),
                v.get("violations")
                    .and_then(Json::as_arr)
                    .expect("violations array")
                    .iter()
                    .map(|x| x.as_str().expect("violation string").to_owned())
                    .collect(),
            )
        })
        .collect()
}

/// The acceptance-criterion test: ≥100 randomized mutation/query
/// interleavings; after every mutation the broker's verdicts must be
/// identical to a fresh in-process synthesis over a mirror repository.
#[test]
fn broker_matches_in_process_synthesis_under_mutation() {
    let (handle, mut client) = spawn(BrokerConfig::default());
    let booking = booking_client();
    let pool = service_pool();
    let locations = ["s0", "s1", "s2", "s3", "s4"];
    let mut mirror = Repository::new();
    let registry = PolicyRegistry::new();
    let mut rng = StdRng::seed_from_u64(0xb20cce2);
    let mut queries = 0;
    for step in 0..120 {
        // One random mutation: publish a random pool service at a
        // random location (2:1 odds), or retract a random location.
        let loc = locations[rng.gen_range(0..locations.len())];
        if rng.gen_range(0..3) < 2 {
            let service = &pool[rng.gen_range(0..pool.len())];
            let reply = client
                .publish(loc, &service.to_string(), None)
                .expect("publish reply");
            assert_eq!(reply.bool_field("ok"), Some(true), "step {step}: {reply}");
            mirror.publish(loc, service.clone());
        } else {
            let reply = client.retract(loc).expect("retract reply");
            assert_eq!(reply.bool_field("ok"), Some(true), "step {step}: {reply}");
            mirror.retract(&Location::new(loc));
        }
        // One query: the broker's long-lived cache must answer exactly
        // like a fresh verification of the mirror.
        let reply = client.plan(&booking.to_string()).expect("plan reply");
        let remote = remote_verdicts(&reply);
        let local = local_verdicts(&booking, &mirror, &registry);
        assert_eq!(remote, local, "step {step}: broker diverged from mirror");
        queries += 1;
    }
    assert!(queries >= 100, "the test must exercise ≥100 interleavings");
    // The long-lived cache must actually have been doing its job:
    // across 120 near-identical queries the hit counter dwarfs misses.
    let stats = client.stats().expect("stats reply");
    let snap = stats.get("stats").expect("stats object");
    assert!(snap.u64_field("cache_hits").unwrap() > snap.u64_field("cache_misses").unwrap());
    assert!(snap.u64_field("evictions").unwrap() > 0, "no evictions?");
    handle.join();
}

/// The Fig. 2 smoke path: publish the hotel scenario, expect the
/// paper's valid plan π₁ = {r1↦br, r3↦s3}, lose it on retraction.
#[test]
fn hotel_scenario_round_trip_and_retraction() {
    let (handle, mut client) = spawn(BrokerConfig::default());
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/hotel.sufs"))
            .expect("hotel scenario readable");
    let reply = client.publish_scenario(&text).expect("publish reply");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
    assert_eq!(reply.u64_field("services"), Some(5));
    assert_eq!(reply.u64_field("policies"), Some(1));

    let sc = sufs_core::scenario::parse_scenario(&text).expect("hotel parses");
    let c1 = sc.client("c1").expect("c1 exists").to_string();
    let reply = client.plan(&c1).expect("plan reply");
    let valid: Vec<&str> = reply
        .get("valid")
        .and_then(Json::as_arr)
        .expect("valid array")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(valid, ["{r1↦br, r3↦s3}"], "the paper's π₁");

    // Executing through the broker uses the same plan and completes.
    let run = client
        .run(&c1, Json::obj().with("seed", 7u64))
        .expect("run");
    assert_eq!(run.bool_field("ok"), Some(true), "{run}");
    assert_eq!(run.str_field("plan"), Some("{r1↦br, r3↦s3}"));
    assert_eq!(run.str_field("outcome"), Some("completed"));

    // Retract the load-bearing s3: the next plan reply must degrade to
    // an empty valid set, and a run must fail with a *structured*
    // `no_valid_plan` error — no hang, no stale cache.
    let reply = client.retract("s3").expect("retract reply");
    assert_eq!(reply.bool_field("changed"), Some(true));
    assert!(reply.u64_field("evicted").unwrap() > 0);
    let reply = client.plan(&c1).expect("plan reply");
    assert_eq!(reply.bool_field("ok"), Some(true));
    assert_eq!(
        reply.get("valid").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0)
    );
    let run = client.run(&c1, Json::obj()).expect("run reply");
    assert_eq!(run.bool_field("ok"), Some(false));
    assert_eq!(run.str_field("kind"), Some("no_valid_plan"));
    handle.join();
}

/// Runs with the PR-1 fault machinery: injected revocations trigger the
/// verified fallback chain, and the broker reports the failover.
#[test]
fn run_with_faults_fails_over_to_the_backup_plan() {
    let (handle, mut client) = spawn(BrokerConfig::default());
    let good = recv("req", choose([("ok", eps()), ("no", eps())]));
    for loc in ["primary", "backup"] {
        let reply = client
            .publish(loc, &good.to_string(), None)
            .expect("publish reply");
        assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
    }
    let booking = booking_client().to_string();
    // An aggressive crash schedule with recovery armed: scan seeds
    // until one run completes via failover (both the fault schedule and
    // the trace are deterministic per seed, so the scan is stable).
    let mut recovered = false;
    for seed in 0..40u64 {
        let run = client
            .run(
                &booking,
                Json::obj()
                    .with(
                        "faults",
                        format!("crash=0.3,max_crashes=1,timeout=2,retries=1,seed={seed}"),
                    )
                    .with("recover", true)
                    .with("committed", true)
                    .with("seed", seed),
            )
            .expect("run reply");
        assert_eq!(run.bool_field("ok"), Some(true), "{run}");
        if run.bool_field("recovered") == Some(true) {
            assert!(run.str_field("outcome").unwrap().contains("recovered via"));
            recovered = true;
            break;
        }
    }
    assert!(recovered, "no seed produced a failover");
    let stats = client.stats().expect("stats reply");
    let snap = stats.get("stats").expect("stats object");
    assert!(snap.u64_field("failed_over").unwrap() >= 1);
    handle.join();
}

/// Publishing garbage is rejected with the right error kinds, and the
/// repository stays untouched.
#[test]
fn zero_capacity_publish_dooms_every_plan_statically() {
    let (_handle, mut client) = spawn(BrokerConfig::default());
    // The only matching responder has capacity 0: no session can ever
    // open there, so the progress check must reject the plan statically
    // — a structured empty answer, never a hang or a false positive.
    let service = service_pool()[0].to_string();
    let reply = client
        .publish("dead", &service, Some(0))
        .expect("publish succeeds");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
    let reply = client
        .plan(&booking_client().to_string())
        .expect("plan answers");
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
    let valid = reply.get("valid").and_then(Json::as_arr).expect("valid");
    assert!(valid.is_empty(), "capacity 0 must doom the plan: {reply}");
    // Republishing with capacity 1 revives it through the same cache.
    let reply = client
        .publish("dead", &service, Some(1))
        .expect("republish succeeds");
    assert!(reply.u64_field("evicted").is_some(), "{reply}");
    let reply = client
        .plan(&booking_client().to_string())
        .expect("plan answers");
    let valid = reply.get("valid").and_then(Json::as_arr).expect("valid");
    assert_eq!(valid.len(), 1, "capacity 1 must revive the plan: {reply}");
}

#[test]
fn publish_rejects_ill_formed_and_unparsable_services() {
    let (handle, mut client) = spawn(BrokerConfig::default());
    // Ill-formed: an unguarded recursion fails wf-checking.
    let reply = client.publish("bad", "mu h. h", None).expect("reply");
    assert_eq!(reply.bool_field("ok"), Some(false));
    assert_eq!(reply.str_field("kind"), Some("ill_formed"));
    // Unparsable text.
    let reply = client.publish("worse", "int[", None).expect("reply");
    assert_eq!(reply.str_field("kind"), Some("parse"));
    // Unknown command and missing fields are bad requests.
    let reply = client
        .request(&Json::obj().with("cmd", "frobnicate"))
        .expect("reply");
    assert_eq!(reply.str_field("kind"), Some("bad_request"));
    let reply = client
        .request(&Json::obj().with("cmd", "publish"))
        .expect("reply");
    assert_eq!(reply.str_field("kind"), Some("bad_request"));
    // Nothing leaked into the repository.
    let repo = client.repo().expect("repo reply");
    assert_eq!(
        repo.get("services")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    handle.join();
}

/// Admission control: past `max_clients` the broker *replies* `busy`
/// rather than stalling the accept queue; capacity freed by a closing
/// client is reusable.
#[test]
fn admission_control_replies_busy_at_capacity() {
    let config = BrokerConfig {
        max_clients: 1,
        ..BrokerConfig::default()
    };
    let (handle, mut first) = spawn(config);
    assert_eq!(
        first.ping().expect("ping").bool_field("ok"),
        Some(true),
        "the first client is admitted"
    );
    // The second concurrent client is rejected before its request is
    // read: the daemon tags the busy reply `"unsolicited": true` and
    // the client surfaces it as `ConnectionRefused` rather than
    // misattributing it to the request it was about to send.
    let mut second = BrokerClient::connect(handle.addr()).expect("connect");
    let err = second
        .ping()
        .expect_err("an unsolicited busy surfaces as a transport error");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    assert!(
        err.to_string().contains("broker at capacity"),
        "the refusal carries the daemon's reason: {err}"
    );
    // Closing the first frees the slot (the acceptor reaps the handler
    // lazily, so poll briefly).
    drop(first);
    let mut admitted = false;
    for _ in 0..100 {
        let mut third = BrokerClient::connect(handle.addr()).expect("connect");
        match third.ping() {
            Ok(reply) if reply.bool_field("ok") == Some(true) => {
                admitted = true;
                break;
            }
            Ok(_) => {}
            // Still at capacity: the unsolicited busy surfaces as a
            // refusal until the acceptor reaps the closed handler.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {}
            Err(e) => panic!("unexpected transport error: {e}"),
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(admitted, "a freed slot must be reusable");
    handle.join();
}

/// Graceful shutdown over the wire: the daemon acknowledges, drains,
/// and then refuses new work.
#[test]
fn wire_shutdown_drains_and_rejects_new_connections() {
    let (handle, mut client) = spawn(BrokerConfig::default());
    let good = recv("req", choose([("ok", eps()), ("no", eps())]));
    client
        .publish("s", &good.to_string(), None)
        .expect("publish");
    let addr = handle.addr();
    let reply = client.shutdown().expect("shutdown acknowledged");
    assert_eq!(reply.bool_field("ok"), Some(true));
    assert_eq!(reply.bool_field("draining"), Some(true));
    // join() returns because the wire shutdown already drained the
    // daemon; afterwards nothing listens on the port any more (or, in
    // the shutdown race, a late connection is refused with a frame).
    handle.join();
    if let Ok(mut late) = BrokerClient::connect(addr) {
        let reply = late.ping();
        assert!(
            reply.is_err() || reply.unwrap().bool_field("ok") == Some(false),
            "a drained broker must not accept new work"
        );
    }
}

/// `stats` exposes the histogram and hit-rate fields the bench and the
/// CI smoke script key on.
#[test]
fn stats_reply_has_the_documented_shape() {
    let (handle, mut client) = spawn(BrokerConfig::default());
    let good = recv("req", choose([("ok", eps()), ("no", eps())]));
    client
        .publish("s", &good.to_string(), None)
        .expect("publish");
    client.plan(&booking_client().to_string()).expect("plan");
    let reply = client.stats().expect("stats");
    assert_eq!(reply.bool_field("ok"), Some(true));
    let snap = reply.get("stats").expect("stats object");
    for field in [
        "uptime_ms",
        "connections",
        "rejected_busy",
        "requests",
        "errors",
        "mutations",
        "evictions",
        "plans",
        "runs",
        "failed_over",
        "cache_hits",
        "cache_misses",
    ] {
        assert!(snap.u64_field(field).is_some(), "missing field {field}");
    }
    assert!(snap.get("cache_hit_rate").and_then(Json::as_f64).is_some());
    let hist = snap.get("synthesis_ms_histogram").expect("histogram");
    let total: u64 = [
        "le_1ms",
        "le_5ms",
        "le_10ms",
        "le_50ms",
        "le_100ms",
        "le_500ms",
        "le_1000ms",
        "inf",
    ]
    .iter()
    .map(|b| hist.u64_field(b).expect("bucket"))
    .sum();
    assert_eq!(total, 1, "one synthesis was observed");
    handle.join();
}
