//! Experiment E13 — §5 under adversity: fault injection, timeouts and
//! plan failover.
//!
//! The §5 guarantee is about *security*, not luck: a statically valid
//! plan may be stopped by a crashing service, but it must never be made
//! to violate a policy, under any fault schedule. And because *every*
//! valid plan is certified, a component whose service dies can fail
//! over to the next valid plan and still finish — the network is
//! unfailing whenever a live fallback exists.

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs::paper;
use sufs_core::recovery::recovery_table;
use sufs_hexpr::builder::*;
use sufs_hexpr::Hist;
use sufs_net::{ChoiceMode, FaultPlan, MonitorMode, Network, Outcome, Plan, Repository, Scheduler};
use sufs_policy::PolicyRegistry;

/// Runs per (plan, fault-rate) arm; the experiment totals ≥ 1000.
const RUNS: usize = 250;

fn fault_rates() -> Vec<FaultPlan> {
    vec![
        FaultPlan::default()
            .with_seed(13)
            .with_crash(0.002)
            .with_drop(0.05),
        FaultPlan::default()
            .with_seed(14)
            .with_crash(0.01)
            .with_drop(0.1)
            .with_stall(0.02),
    ]
}

/// A two-service world where failover is always possible: both services
/// are compliant, so the verifier certifies both plans.
fn redundant_world() -> (Hist, Repository, PolicyRegistry) {
    let client = request(
        1,
        None,
        seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
    );
    let service = || recv("req", choose([("ok", eps()), ("no", eps())]));
    let mut repo = Repository::new();
    repo.publish("primary", service());
    repo.publish("backup", service());
    (client, repo, PolicyRegistry::new())
}

/// The core E13 sweep, ≥1000 seeded random schedules in total:
/// statically valid plans stay secure under every fault schedule
/// (monitor off, violations audited post-hoc); the known-bad plan keeps
/// violating under the same faults.
#[test]
fn sec5_unfailing_under_faults() {
    let repo = paper::repository();
    let reg = paper::registry();
    let mut total_runs = 0;
    for faults in fault_rates() {
        // Arm 1: valid plans, faults, no recovery. Faults may stop the
        // run (timeout) but can never make it misbehave.
        for (loc, client, plan) in [
            ("c1", paper::client_c1(), paper::plan_pi1()),
            ("c2", paper::client_c2(), paper::plan_c2_s4()),
        ] {
            let mut network = Network::new();
            network.add_client(loc, client, plan);
            let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Audit, ChoiceMode::Committed)
                .with_faults(faults.clone());
            let mut rng = StdRng::seed_from_u64(0xE13);
            let summary = scheduler
                .run_batch(&network, RUNS, &mut rng, 10_000)
                .unwrap();
            total_runs += summary.runs;
            assert!(
                summary.is_secure(),
                "valid plan violated a policy under faults: {summary}"
            );
            assert_eq!(summary.deadlocks, 0, "fault runs never report Deadlock");
            assert_eq!(
                summary.completed + summary.timed_out + summary.out_of_fuel,
                RUNS,
                "unexpected outcome mix: {summary}"
            );
        }

        // Arm 2: valid plan, faults, recovery armed from the verifier's
        // own fallback chain — secure *and* no fault-aborts, since a
        // live fallback always exists in the redundant world.
        let (client, rrepo, rreg) = redundant_world();
        let table = recovery_table(std::slice::from_ref(&client), &rrepo, &rreg).unwrap();
        let chain: Vec<Plan> = table.chain(0).to_vec();
        assert_eq!(chain.len(), 2, "both redundant plans must verify");
        let mut network = Network::new();
        network.add_client("client", client, chain[0].clone());
        let scheduler = Scheduler::new(&rrepo, &rreg, MonitorMode::Audit, ChoiceMode::Committed)
            .with_faults(faults.with_max_crashes(1))
            .with_recovery(table);
        let mut rng = StdRng::seed_from_u64(0xE13);
        let summary = scheduler
            .run_batch(&network, RUNS, &mut rng, 10_000)
            .unwrap();
        total_runs += summary.runs;
        assert!(summary.is_secure(), "recovered runs must stay secure");
        assert_eq!(
            summary.completed, RUNS,
            "with at most one crash and a verified fallback, every run finishes: {summary}"
        );

        // Arm 3: the statically rejected C2→S3 plan still violates
        // under the same faults — injection does not mask insecurity.
        let mut network = Network::new();
        network.add_client("c2", paper::client_c2(), paper::plan_c2_s3());
        let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Audit, ChoiceMode::Committed)
            .with_faults(FaultPlan::default().with_seed(99).with_drop(0.05));
        let mut rng = StdRng::seed_from_u64(0xBAD);
        let summary = scheduler
            .run_batch(&network, RUNS, &mut rng, 10_000)
            .unwrap();
        total_runs += summary.runs;
        assert!(
            summary.violating_runs > 0,
            "the bad plan's violation disappeared under faults: {summary}"
        );
        assert!(!summary.is_secure());
    }
    assert!(
        total_runs >= 1000,
        "E13 must cover ≥1000 runs, got {total_runs}"
    );
}

/// Determinism: the same scheduler seed and the same fault seed yield
/// byte-identical traces and fault logs, run after run.
#[test]
fn sec5_fault_schedules_are_deterministic() {
    let repo = paper::repository();
    let reg = paper::registry();
    let faults = FaultPlan::default()
        .with_seed(7)
        .with_crash(0.01)
        .with_drop(0.1)
        .with_stall(0.05);
    let run = || {
        let mut network = Network::new();
        network.add_client("c2", paper::client_c2(), paper::plan_c2_s4());
        let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Audit, ChoiceMode::Committed)
            .with_faults(faults.clone());
        let mut rng = StdRng::seed_from_u64(0xD37);
        scheduler.run(network, &mut rng, 10_000).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.trace, b.trace, "same seeds must replay the same trace");
    assert_eq!(a.faults, b.faults, "same seeds must replay the same faults");

    // A different fault seed perturbs the schedule (with these rates,
    // some fault fires in 10k steps with overwhelming probability).
    let mut network = Network::new();
    network.add_client("c2", paper::client_c2(), paper::plan_c2_s4());
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Audit, ChoiceMode::Committed)
        .with_faults(faults.with_seed(8));
    let mut rng = StdRng::seed_from_u64(0xD37);
    let c = scheduler.run(network, &mut rng, 10_000).unwrap();
    assert_ne!(
        (a.trace, a.faults),
        (c.trace, c.faults),
        "changing the fault seed must change the run"
    );
}

/// Targeted failover: a guaranteed crash of the bound service makes the
/// component time out, fail over to the verified backup plan, restart
/// from a Φ-closed history, and complete.
#[test]
fn sec5_failover_rebinds_to_the_backup_plan() {
    let (client, repo, reg) = redundant_world();
    let table = recovery_table(std::slice::from_ref(&client), &repo, &reg).unwrap();
    let chain: Vec<Plan> = table.chain(0).to_vec();
    let mut network = Network::new();
    network.add_client("client", client, chain[0].clone());
    let faults = FaultPlan::default()
        .with_seed(1)
        .with_crash(1.0)
        .with_max_crashes(1)
        .with_timeout(2, 0);
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Enforcing, ChoiceMode::Committed)
        .with_faults(faults)
        .with_recovery(table);
    let mut rng = StdRng::seed_from_u64(5);
    let r = scheduler.run(network, &mut rng, 10_000).unwrap();
    match &r.outcome {
        Outcome::RecoveredVia { component, plan } => {
            assert_eq!(*component, 0);
            assert_ne!(plan, &chain[0], "failover must pick a different plan");
            assert!(chain.contains(plan), "failover must pick a verified plan");
        }
        other => panic!("expected a recovered completion, got {other:?}"),
    }
    assert!(r.violations.is_empty());
    assert!(
        r.faults
            .iter()
            .any(|e| matches!(e.kind, sufs_net::FaultKind::Failover { .. })),
        "the failover must be logged: {:?}",
        r.faults
    );
    // The recovered component's history is balanced: every frame the
    // aborted attempt opened was Φ-closed before the restart.
    assert!(r.network.components()[0].history.is_balanced());
    // And without recovery the same schedule is a hard timeout.
    let (client, repo, reg) = redundant_world();
    let mut network = Network::new();
    network.add_client("client", client, chain[0].clone());
    let faults = FaultPlan::default()
        .with_seed(1)
        .with_crash(1.0)
        .with_max_crashes(1)
        .with_timeout(2, 0);
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Enforcing, ChoiceMode::Committed)
        .with_faults(faults);
    let mut rng = StdRng::seed_from_u64(5);
    let r = scheduler.run(network, &mut rng, 10_000).unwrap();
    assert!(
        matches!(r.outcome, Outcome::TimedOut { component: 0 }),
        "got {:?}",
        r.outcome
    );
}

/// With every fault rate at zero, an armed injector changes nothing:
/// the trace equals the faultless run step for step.
#[test]
fn zero_rate_faults_are_inert() {
    let repo = paper::repository();
    let reg = paper::registry();
    let base = {
        let mut network = Network::new();
        network.add_client("c1", paper::client_c1(), paper::plan_pi1());
        let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Audit, ChoiceMode::Committed);
        let mut rng = StdRng::seed_from_u64(42);
        scheduler.run(network, &mut rng, 10_000).unwrap()
    };
    let armed = {
        let mut network = Network::new();
        network.add_client("c1", paper::client_c1(), paper::plan_pi1());
        let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Audit, ChoiceMode::Committed)
            .with_faults(FaultPlan::default().with_seed(123));
        let mut rng = StdRng::seed_from_u64(42);
        scheduler.run(network, &mut rng, 10_000).unwrap()
    };
    assert_eq!(base.outcome, Outcome::Completed);
    assert_eq!(armed.outcome, Outcome::Completed);
    assert_eq!(base.trace, armed.trace);
    assert!(armed.faults.is_empty());
}
