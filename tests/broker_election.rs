//! Experiment E18: leader election, automatic re-pointing, and
//! bounded-unavailability self-healing — E15's chaos cluster with the
//! operator removed.
//!
//! The centrepiece drives 300+ seeded partition/kill cycles against a
//! three-node cluster running `--election auto`. Every node sits
//! behind its own floating [`ChaosLink`], which is its *advertise*
//! address: peers, clients, and replication streams all dial through
//! it, so cutting one link isolates one node while the node itself
//! stays oblivious. The primary is killed or partitioned with **no
//! operator in the loop** — no `promote`, no restarts-with-new
//! `--follow`; the followers detect the silence, elect the longest
//! prefix, and the losers re-point their streams themselves.
//! Invariants:
//!
//! (a) at most one node is ever primary in any given cluster epoch
//!     (sampled from `stats` across every cycle of every run),
//! (b) no quorum-acknowledged mutation is lost: every write settled
//!     with `"quorum": true` is present in the repository served by
//!     whichever primary the cluster converged on,
//! (c) the unavailability window — primary loss to the next settled
//!     write — is bounded, with the p95 asserted against a cap,
//! (d) a healed stale primary demotes itself instead of splitting the
//!     brain.
//!
//! Satellite tests pin the edge cases: a split vote between two
//! simultaneous candidates converging by randomized timeouts, a stale
//! primary fenced on heal, a client retrying the same `req_id` across
//! an election applying exactly once, and a *manual* promotion
//! re-pointing survivors without restarts.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use sufs_broker::chaos::ChaosLink;
use sufs_broker::{
    AckMode, Broker, BrokerClient, BrokerConfig, BrokerHandle, ElectionMode, Json, ReconnectPolicy,
};
use sufs_hexpr::builder::*;
use sufs_hexpr::Hist;
use sufs_rng::{Rng, SeedableRng, StdRng};

/// A fresh per-test state directory under the system tmpdir.
fn state_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sufs-elect-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// One compliant service for the write workload.
fn pool_service() -> Hist {
    recv("req", choose([("ok", eps()), ("no", eps())]))
}

/// One node's configuration: quorum acks over a fixed three-node
/// cluster, automatic elections, timings tightened so failovers
/// resolve in milliseconds.
fn node_config(dir: &Path, follow: Option<String>, advertise: String) -> BrokerConfig {
    BrokerConfig {
        state_dir: Some(dir.to_path_buf()),
        snapshot_every: 16,
        follow,
        ack: AckMode::Quorum,
        cluster_size: 3,
        ack_timeout: Duration::from_millis(250),
        follow_retry: Duration::from_millis(10),
        replication_tick: Duration::from_millis(25),
        election: ElectionMode::Auto,
        election_timeout: Duration::from_millis(120),
        election_seed: 0xE18,
        advertise: Some(advertise),
        ..BrokerConfig::default()
    }
}

/// `stats` through a node's front link; `None` when unreachable
/// (partitioned link, dead node).
fn try_stats(addr: SocketAddr) -> Option<Json> {
    let mut client = BrokerClient::connect(addr).ok()?;
    let reply = client.stats().ok()?;
    (reply.bool_field("ok") == Some(true)).then_some(reply)
}

fn repl_section(stats: &Json) -> &Json {
    stats.get("replication").expect("replication section")
}

/// The self-healing cluster under test: three nodes, each behind a
/// *floating* chaos link that is its stable advertise address for the
/// whole test — nodes restart on fresh ephemeral ports and the link
/// simply re-targets.
struct Cluster {
    dirs: Vec<PathBuf>,
    links: Vec<ChaosLink>,
    handles: Vec<Option<BrokerHandle>>,
}

impl Cluster {
    fn start(tag: &str) -> Cluster {
        let dirs: Vec<PathBuf> = (0..3).map(|i| state_dir(&format!("{tag}-n{i}"))).collect();
        let links: Vec<ChaosLink> = (0..3)
            .map(|_| ChaosLink::spawn_floating().expect("link spawns"))
            .collect();
        let mut cluster = Cluster {
            dirs,
            links,
            handles: vec![None, None, None],
        };
        cluster.spawn_node(0, None);
        let upstream = cluster.front(0).to_string();
        cluster.spawn_node(1, Some(upstream.clone()));
        cluster.spawn_node(2, Some(upstream));
        cluster
    }

    /// Node `i`'s public (link) address.
    fn front(&self, i: usize) -> SocketAddr {
        self.links[i].addr()
    }

    fn fronts(&self) -> Vec<String> {
        (0..3).map(|i| self.front(i).to_string()).collect()
    }

    /// (Re)starts node `i` and re-targets its front link.
    fn spawn_node(&mut self, i: usize, follow: Option<String>) {
        let config = node_config(&self.dirs[i], follow, self.front(i).to_string());
        let handle = Broker::spawn(config).expect("node spawns");
        self.links[i].set_upstream(handle.addr());
        self.handles[i] = Some(handle);
    }

    fn kill_node(&mut self, i: usize) {
        if let Some(handle) = self.handles[i].take() {
            handle.kill();
        }
    }

    fn heal_all(&self) {
        for link in &self.links {
            link.control().heal();
        }
    }

    /// Which live, reachable node currently reports `role: "primary"`,
    /// with its epoch.
    fn primary(&self) -> Option<(usize, u64)> {
        for i in 0..3 {
            if self.handles[i].is_none() {
                continue;
            }
            let Some(stats) = try_stats(self.front(i)) else {
                continue;
            };
            let repl = repl_section(&stats);
            if repl.str_field("role") == Some("primary") {
                return Some((i, repl.u64_field("epoch").unwrap_or(0)));
            }
        }
        None
    }

    /// Every reachable node's replication section, for failure reports.
    fn describe(&self) -> String {
        (0..3)
            .map(|i| {
                let front = self.front(i);
                if self.handles[i].is_none() {
                    return format!("node {i} ({front}): killed");
                }
                match try_stats(front) {
                    Some(stats) => format!("node {i} ({front}): {}", repl_section(&stats)),
                    None => format!("node {i} ({front}): unreachable"),
                }
            })
            .collect::<Vec<_>>()
            .join("\n  ")
    }

    /// Samples every reachable node and records `epoch → advertise`
    /// for each that claims to be primary, failing on any epoch two
    /// distinct nodes ever claimed.
    fn check_one_primary_per_epoch(&self, seen: &mut BTreeMap<u64, String>, what: &str) {
        for i in 0..3 {
            if self.handles[i].is_none() {
                continue;
            }
            let Some(stats) = try_stats(self.front(i)) else {
                continue;
            };
            let repl = repl_section(&stats);
            if repl.str_field("role") != Some("primary") {
                continue;
            }
            let epoch = repl.u64_field("epoch").unwrap_or(0);
            let me = self.front(i).to_string();
            match seen.get(&epoch) {
                Some(owner) if *owner != me => {
                    panic!("{what}: epoch {epoch} claimed by both {owner} and {me}");
                }
                Some(_) => {}
                None => {
                    seen.insert(epoch, me);
                }
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for i in 0..3 {
            self.kill_node(i);
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// A chasing client over all three front addresses: transport errors
/// rotate, `not_primary` replies chase the upstream hint.
fn chasing_client(cluster: &Cluster) -> Option<BrokerClient> {
    let addrs = cluster.fronts();
    let client = BrokerClient::connect_any(&addrs).ok()?;
    Some(
        client.with_reconnect(
            ReconnectPolicy {
                max_retries: 12,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(100),
                ..ReconnectPolicy::default()
            }
            .with_addrs(addrs),
        ),
    )
}

/// Publishes `loc` with the fixed `req_id` and retries — same id every
/// time — until the reply reports `"quorum": true`. Returns the settle
/// latency. With the primary dead or partitioned this write *is* the
/// unavailability probe: it succeeds only once a new primary exists
/// and a quorum follows it.
fn settle_publish(cluster: &Cluster, loc: &str, req_id: &str, service: &str) -> Duration {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(30);
    let req = Json::obj()
        .with("cmd", "publish")
        .with("location", loc)
        .with("service", service)
        .with("req_id", req_id);
    let mut client: Option<BrokerClient> = None;
    loop {
        assert!(
            Instant::now() < deadline,
            "write {loc} never reached quorum: unavailability window unbounded\n  {}",
            cluster.describe()
        );
        let Some(c) = client.as_mut() else {
            client = chasing_client(cluster);
            if client.is_none() {
                std::thread::sleep(Duration::from_millis(10));
            }
            continue;
        };
        match c.request_retrying(&req) {
            Ok(reply)
                if reply.bool_field("ok") == Some(true)
                    && reply.bool_field("quorum") == Some(true) =>
            {
                // However many elections and retries interleaved, the
                // event proves the mutation applied exactly once.
                assert_eq!(
                    reply.str_field("event"),
                    Some(format!("published {loc}").as_str()),
                    "retried req_id {req_id} double-applied: {reply}"
                );
                return started.elapsed();
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => {
                client = None;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// E18. 300+ seeded no-operator partition/kill cycles.
#[test]
fn e18_self_healing_under_partition_and_kill_chaos() {
    const CYCLES: u64 = 300;
    /// The asserted bound on the p95 kill→first-settled-write window.
    const UNAVAILABILITY_P95_CAP_MS: u128 = 8_000;
    let mut cluster = Cluster::start("e18");
    let mut master = StdRng::seed_from_u64(0xE18);
    let service = pool_service().to_string();
    let mut epochs: BTreeMap<u64, String> = BTreeMap::new();
    let mut acked: Vec<String> = Vec::new();
    let mut windows_ms: Vec<u128> = Vec::new();
    let mut primary_changes = 0u64;
    let mut last_primary = 0usize;

    for cycle in 0..CYCLES {
        // Draw this cycle's chaos. Primary-loss cycles measure the
        // unavailability window; follower chaos just has to not lose
        // anything.
        let primary = cluster.primary().map(|(i, _)| i).unwrap_or(last_primary);
        let followers: Vec<usize> = (0..3)
            .filter(|&i| i != primary && cluster.handles[i].is_some())
            .collect();
        let mut outage = false;
        let mut dead: Option<usize> = None;
        match master.gen_range(0..12u32) {
            // kill -9 the primary: the classic failover.
            0 | 1 => {
                cluster.kill_node(primary);
                dead = Some(primary);
                outage = true;
            }
            // Cut the primary's front link: followers lose the stream,
            // clients lose the node, but the node itself can still dial
            // out — the asymmetric partition a stale primary heals from
            // by demoting on an announce refusal.
            2 => {
                cluster.links[primary].control().partition();
                outage = true;
            }
            // kill -9 a follower.
            3 | 4 => {
                if let Some(&f) = followers.first() {
                    cluster.kill_node(f);
                    dead = Some(f);
                }
            }
            // Cut a follower's link for this cycle.
            5 | 6 => {
                if let Some(&f) = followers.last() {
                    cluster.links[f].control().partition();
                }
            }
            // A laggy follower link.
            7 => {
                if let Some(&f) = followers.first() {
                    cluster.links[f]
                        .control()
                        .set_delay(Duration::from_millis(master.gen_range(1..3u64)));
                }
            }
            _ => {}
        }

        // One settled write per cycle, fresh location, fixed req_id.
        let loc = format!("e{cycle:04}");
        let window = settle_publish(&cluster, &loc, &format!("e18-{cycle:04}"), &service);
        acked.push(loc);
        if outage {
            windows_ms.push(window.as_millis());
        }

        // (a): sample primaries and epochs.
        cluster.check_one_primary_per_epoch(&mut epochs, &format!("cycle {cycle}"));
        let (now_primary, _) = cluster
            .primary()
            .expect("a settled write implies a reachable primary");
        if now_primary != last_primary {
            primary_changes += 1;
            last_primary = now_primary;
        }

        // Self-heal the topology: restart whatever died as a follower
        // of the current primary's *link* (the only operator action an
        // automated supervisor performs — rejoining, never promoting),
        // and heal lingering link chaos so the next cycle starts from
        // a connected cluster.
        if let Some(i) = dead {
            cluster.spawn_node(i, Some(cluster.front(now_primary).to_string()));
        }
        cluster.heal_all();

        // (b): every tenth cycle, confirm nothing quorum-acked is lost.
        // Read from the *primary*: followers serve reads too, but only
        // the winner's ballot guarantees every settled write is already
        // applied — a survivor may lag by an in-flight record, and a
        // stale claimant may briefly answer before its demotion lands,
        // so retry rather than flagging replication lag as data loss.
        if cycle % 10 == 9 {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let present: Option<Vec<String>> = cluster.primary().and_then(|(i, _)| {
                    let mut client = BrokerClient::connect(cluster.front(i)).ok()?;
                    let reply = client.repo().ok()?;
                    Some(
                        reply
                            .get("services")?
                            .as_arr()?
                            .iter()
                            .filter_map(|s| s.str_field("location").map(str::to_owned))
                            .collect(),
                    )
                });
                let missing: Vec<&String> = match &present {
                    Some(present) => acked.iter().filter(|l| !present.contains(l)).collect(),
                    None => acked.iter().collect(),
                };
                if missing.is_empty() {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "cycle {cycle}: quorum-acked {missing:?} lost after failover"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    assert!(
        primary_changes >= 20,
        "only {primary_changes} primary changes in {CYCLES} cycles — chaos too weak"
    );
    assert!(
        windows_ms.len() >= 50,
        "only {} primary-loss cycles measured",
        windows_ms.len()
    );
    // (c): the unavailability window is bounded.
    windows_ms.sort_unstable();
    let p50 = percentile(&windows_ms, 0.50);
    let p95 = percentile(&windows_ms, 0.95);
    eprintln!(
        "e18: {} primary-loss windows, p50 {p50} ms, p95 {p95} ms, max {} ms, {primary_changes} primary changes, {} epochs",
        windows_ms.len(),
        windows_ms.last().unwrap(),
        epochs.len()
    );
    assert!(
        p95 <= UNAVAILABILITY_P95_CAP_MS,
        "unavailability p95 {p95} ms exceeds the {UNAVAILABILITY_P95_CAP_MS} ms cap"
    );
    // The election machinery actually ran: the current primary won at
    // least one epoch above the seed primary's.
    assert!(
        epochs.keys().last().copied().unwrap_or(0) >= 1,
        "no election ever bumped the epoch: {epochs:?}"
    );
}

/// Satellite (split vote): both followers detect the kill in the same
/// heartbeat window; seeded randomized timeouts converge on exactly
/// one winner and the loser re-points at it — no operator, no restart.
#[test]
fn split_vote_converges_to_one_primary_and_repoints_the_loser() {
    let mut cluster = Cluster::start("split");
    let service = pool_service().to_string();
    settle_publish(&cluster, "seed", "split-0001", &service);
    cluster.kill_node(0);
    // Both followers hit the election path simultaneously.
    settle_publish(&cluster, "after", "split-0002", &service);
    let (winner, epoch) = cluster.primary().expect("a winner");
    assert!(winner == 1 || winner == 2, "old primary resurrected");
    assert!(epoch >= 1, "winner did not bump the epoch");
    let loser = 3 - winner; // the other follower
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = try_stats(cluster.front(loser));
        if let Some(stats) = stats {
            let repl = repl_section(&stats);
            if repl.str_field("role") == Some("follower")
                && repl.str_field("upstream") == Some(cluster.front(winner).to_string().as_str())
            {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "loser never re-pointed at the winner"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Exactly one election round of state: the winner holds the epoch,
    // the loser voted but did not promote.
    let mut seen = BTreeMap::new();
    cluster.check_one_primary_per_epoch(&mut seen, "post split vote");
}

/// Satellite (fencing): a primary cut off from the cluster — but still
/// able to dial out — learns the new epoch from its own announces and
/// demotes itself; after healing, its un-replicated writes are gone
/// and it serves the new primary's state.
#[test]
fn healed_stale_primary_demotes_on_higher_epoch() {
    let cluster = Cluster::start("fence");
    let service = pool_service().to_string();
    settle_publish(&cluster, "base", "fence-0001", &service);
    // Cut the old primary's inbound; the cluster elects without it.
    cluster.links[0].control().partition();
    settle_publish(&cluster, "progress", "fence-0002", &service);
    let (winner, epoch) = cluster.primary().expect("new primary");
    assert_ne!(winner, 0, "partitioned primary still reachable");
    assert!(epoch >= 1);
    // The stale primary demotes itself *while still partitioned*: its
    // outbound announces come back refused with the higher epoch.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        cluster.heal_all(); // heal is idempotent; first iteration races the announce
        if let Some(stats) = try_stats(cluster.front(0)) {
            let repl = repl_section(&stats);
            if repl.str_field("role") == Some("follower") && repl.u64_field("epoch") == Some(epoch)
            {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "stale primary never demoted on the higher epoch"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // And exactly one primary per epoch held throughout.
    let mut seen = BTreeMap::new();
    cluster.check_one_primary_per_epoch(&mut seen, "post fence");
    assert_eq!(
        seen.get(&epoch),
        Some(&cluster.front(winner).to_string()),
        "{seen:?}"
    );
}

/// Satellite (exactly-once across an election): a client retry with
/// the same `req_id` racing the election lands on the new primary,
/// whose replicated idempotency window answers without re-applying.
#[test]
fn election_racing_client_retry_applies_exactly_once() {
    let mut cluster = Cluster::start("race");
    let service = pool_service().to_string();
    // Settle through quorum so the write is replicated — then kill the
    // primary and retry the *same* req_id against the healing cluster.
    settle_publish(&cluster, "once", "race-0001", &service);
    cluster.kill_node(0);
    let req = Json::obj()
        .with("cmd", "publish")
        .with("location", "once")
        .with("service", service.as_str())
        .with("req_id", "race-0001");
    let deadline = Instant::now() + Duration::from_secs(20);
    let reply = loop {
        assert!(Instant::now() < deadline, "retry never reached a primary");
        let Some(mut client) = chasing_client(&cluster) else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        match client.request_retrying(&req) {
            Ok(reply) if reply.bool_field("ok") == Some(true) => break reply,
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    // `published once` — the replicated window's recorded first reply —
    // not `updated once`, which a re-application would produce.
    assert_eq!(
        reply.str_field("event"),
        Some("published once"),
        "election race re-applied the mutation: {reply}"
    );
}

/// Satellite (manual promotion re-point): with `--election manual` the
/// operator still runs `promote`, but the survivors re-point at the
/// new primary without restarts — the announce path is shared with the
/// election winner.
#[test]
fn manual_promote_repoints_survivors_without_restart() {
    let dirs: Vec<PathBuf> = (0..3).map(|i| state_dir(&format!("manual-n{i}"))).collect();
    let manual = |dir: &Path, follow: Option<String>, advertise: String| BrokerConfig {
        election: ElectionMode::Manual,
        ..node_config(dir, follow, advertise)
    };
    // No links: manual mode, direct addresses.
    let primary = Broker::spawn(manual(&dirs[0], None, String::new())).expect("primary");
    let up = primary.addr().to_string();
    let f1 = Broker::spawn(manual(&dirs[1], Some(up.clone()), String::new())).expect("f1");
    let f2 = Broker::spawn(manual(&dirs[2], Some(up), String::new())).expect("f2");
    // Let the followers learn the cluster view from heartbeats.
    let service = pool_service().to_string();
    let mut client = BrokerClient::connect(primary.addr()).expect("connect");
    loop {
        let reply = client
            .request(
                &Json::obj()
                    .with("cmd", "publish")
                    .with("location", "m0")
                    .with("service", service.as_str())
                    .with("req_id", "manual-0001"),
            )
            .expect("publish");
        if reply.bool_field("quorum") == Some(true) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Quorum needs only one ack, so the publish above proves nothing
    // about f2's registration. Wait until f1's heartbeat-fed peer view
    // actually contains f2 — that is the address the post-promote
    // announcer will re-point.
    let f2_addr = f2.addr().to_string();
    let learn_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(stats) = try_stats(f1.addr()) {
            let knows_f2 = repl_section(&stats)
                .get("peers")
                .and_then(Json::as_arr)
                .is_some_and(|p| p.iter().any(|a| a.as_str() == Some(f2_addr.as_str())));
            if knows_f2 {
                break;
            }
        }
        assert!(
            Instant::now() < learn_deadline,
            "f1 never learned f2's address from heartbeats"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    primary.kill();
    // The operator promotes f1; f2 must follow it without a restart.
    let mut ops = BrokerClient::connect(f1.addr()).expect("connect f1");
    let reply = ops.promote().expect("promote");
    assert_eq!(reply.bool_field("changed"), Some(true), "{reply}");
    assert!(reply.u64_field("epoch").unwrap_or(0) >= 1, "{reply}");
    let want = f1.addr().to_string();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(stats) = try_stats(f2.addr()) {
            let repl = repl_section(&stats);
            if repl.str_field("role") == Some("follower")
                && repl.str_field("upstream") == Some(want.as_str())
            {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "survivor never re-pointed after manual promote"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The re-pointed follower acks the new primary's stream: a fresh
    // mutation reaches quorum again.
    loop {
        let reply = ops
            .request(
                &Json::obj()
                    .with("cmd", "publish")
                    .with("location", "m1")
                    .with("service", service.as_str())
                    .with("req_id", "manual-0002"),
            )
            .expect("publish after repoint");
        if reply.bool_field("quorum") == Some(true) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "re-pointed follower never acked the new primary"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
