//! Experiment E8 — the §5 headline, empirically: executing a network
//! under a **statically valid plan** with the run-time monitor OFF and
//! internal choices resolved blindly (committed) never violates a
//! security policy and never deadlocks. Invalid plans, run the same way,
//! exhibit exactly the failures the verifier predicted.

use sufs_rng::SeedableRng;
use sufs_rng::StdRng;

use sufs::paper;
use sufs_core::verify::{verify, verify_plan, Violation};
use sufs_hexpr::builder::*;
use sufs_hexpr::Hist;
use sufs_net::{
    ChoiceMode, DeadlockReason, MonitorMode, Network, Outcome, Plan, Repository, Scheduler,
};
use sufs_policy::{catalog, PolicyRegistry};

const RUNS: usize = 300;

fn run_many(
    client: &Hist,
    plan: &Plan,
    repo: &Repository,
    reg: &PolicyRegistry,
    seed: u64,
) -> Vec<sufs_net::RunResult> {
    let scheduler = Scheduler::new(repo, reg, MonitorMode::Audit, ChoiceMode::Committed);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..RUNS)
        .map(|_| {
            let mut network = Network::new();
            network.add_client("client", client.clone(), plan.clone());
            scheduler.run(network, &mut rng, 10_000).unwrap()
        })
        .collect()
}

/// Valid plans: every run completes, zero violations, monitor unneeded.
#[test]
fn sec5_valid_plans_never_fail() {
    let repo = paper::repository();
    let reg = paper::registry();
    for (client, plan) in [
        (paper::client_c1(), paper::plan_pi1()),
        (paper::client_c2(), paper::plan_c2_s4()),
    ] {
        // Statically valid…
        let verdict = verify_plan(&client, &plan, &repo, &reg).unwrap();
        assert!(verdict.is_valid());
        // …and dynamically unfailing.
        for r in run_many(&client, &plan, &repo, &reg, 1) {
            assert_eq!(r.outcome, Outcome::Completed, "a verified run failed");
            assert!(r.violations.is_empty(), "a verified run violated a policy");
        }
    }
}

/// π₂ (C2 → broker → S2): the verifier predicts non-compliance; at run
/// time the committed `del` send eventually deadlocks.
#[test]
fn sec5_pi2_deadlocks_as_predicted() {
    let repo = paper::repository();
    let reg = paper::registry();
    let verdict = verify_plan(&paper::client_c2(), &paper::plan_pi2(), &repo, &reg).unwrap();
    assert!(verdict
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NonCompliant { .. })));

    let results = run_many(&paper::client_c2(), &paper::plan_pi2(), &repo, &reg, 2);
    let deadlocks = results
        .iter()
        .filter(|r| {
            matches!(
                &r.outcome,
                Outcome::Deadlock {
                    reason: DeadlockReason::UnmatchedSend { chan, .. },
                    ..
                } if chan.as_str() == "del"
            )
        })
        .count();
    assert!(
        deadlocks > 0,
        "the predicted del-deadlock never materialised in {RUNS} runs"
    );
    // And the deadlock rate is roughly the 1/3 branch probability.
    assert!(
        deadlocks > RUNS / 6,
        "suspiciously few deadlocks: {deadlocks}"
    );
}

/// The C2→S3 plan: the verifier predicts a security violation; with the
/// monitor off every run completes but the violation is incurred.
#[test]
fn sec5_blacklisted_plan_violates_as_predicted() {
    let repo = paper::repository();
    let reg = paper::registry();
    let plan = paper::plan_c2_s3();
    let verdict = verify_plan(&paper::client_c2(), &plan, &repo, &reg).unwrap();
    assert!(verdict
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Security(_))));

    let results = run_many(&paper::client_c2(), &plan, &repo, &reg, 3);
    let violating = results.iter().filter(|r| !r.violations.is_empty()).count();
    assert_eq!(
        violating, RUNS,
        "every monitor-off run must incur the predicted violation"
    );

    // With the monitor ON, the same plan aborts instead of violating.
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Enforcing, ChoiceMode::Angelic);
    let mut rng = StdRng::seed_from_u64(4);
    let mut network = Network::new();
    network.add_client("c2", paper::client_c2(), plan);
    let r = scheduler.run(network, &mut rng, 10_000).unwrap();
    assert!(matches!(r.outcome, Outcome::SecurityAbort { .. }));
}

/// The full two-client network of Fig. 3 under both verified plans:
/// batch statistics over many schedules show zero failures of any kind.
#[test]
fn sec5_two_client_network_is_unfailing() {
    let repo = paper::repository();
    let reg = paper::registry();
    let mut network = Network::new();
    network.add_client("c1", paper::client_c1(), paper::plan_pi1());
    network.add_client("c2", paper::client_c2(), paper::plan_c2_s4());
    let scheduler = Scheduler::new(&repo, &reg, MonitorMode::Audit, ChoiceMode::Committed);
    let mut rng = StdRng::seed_from_u64(2013);
    let summary = scheduler
        .run_batch(&network, RUNS, &mut rng, 10_000)
        .unwrap();
    assert_eq!(summary.completed, RUNS);
    assert!(summary.is_unfailing(), "{summary}");
}

/// A randomized stress version over a synthetic repository: every
/// verifier-approved plan of every generated client runs clean; at least
/// one rejected plan exists and fails observably.
#[test]
fn sec5_randomized_agreement() {
    let mut reg = PolicyRegistry::new();
    reg.register(catalog::at_most("charge", 1));
    let phi = sufs_hexpr::PolicyRef::nullary("at_most_1_charge");

    // Client: pay once under a double-charging policy.
    let client = request(
        1,
        Some(phi),
        seq([
            send("order", eps()),
            offer([("done", eps()), ("retry", offer([("done", eps())]))]),
        ]),
    );
    let mut repo = Repository::new();
    // Honest: charge once, confirm.
    repo.publish(
        "honest",
        recv("order", seq([ev0("charge"), choose([("done", eps())])])),
    );
    // Greedy: charges twice — violates at_most_1_charge.
    repo.publish(
        "greedy",
        recv(
            "order",
            seq([ev0("charge"), ev0("charge"), choose([("done", eps())])]),
        ),
    );
    // Chatty: compliant messages plus an unexpected `cancel` option.
    repo.publish(
        "chatty",
        recv(
            "order",
            seq([ev0("charge"), choose([("done", eps()), ("cancel", eps())])]),
        ),
    );

    let report = verify(&client, &repo, &reg).unwrap();
    assert_eq!(report.len(), 3);
    let valid: Vec<_> = report.valid_plans().collect();
    assert_eq!(valid.len(), 1);

    for verdict in report.verdicts() {
        let results = run_many(&client, &verdict.plan, &repo, &reg, 99);
        let failures = results
            .iter()
            .filter(|r| !r.outcome.is_success() || !r.violations.is_empty())
            .count();
        if verdict.is_valid() {
            assert_eq!(failures, 0, "valid plan {} failed at runtime", verdict.plan);
        } else {
            assert!(
                failures > 0,
                "invalid plan {} never failed in {RUNS} runs",
                verdict.plan
            );
        }
    }
}
