//! Cross-crate randomised tests: parser/printer round trips and
//! agreement between the static analyses and the reference
//! implementations. Every case is deterministic in its seed.

use sufs_hexpr::{parse_hist, Channel, Event, Hist, ParamValue, PolicyRef, Value};
use sufs_policy::{catalog, History, HistoryItem, PolicyRegistry};
use sufs_rng::{Rng, SeedableRng, StdRng};

fn collect_policy_names(h: &Hist, out: &mut std::collections::BTreeSet<String>) {
    match h {
        Hist::Framed(p, body) => {
            out.insert(p.name().to_owned());
            collect_policy_names(body, out);
        }
        Hist::Req { policy, body, .. } => {
            if let Some(p) = policy {
                out.insert(p.name().to_owned());
            }
            collect_policy_names(body, out);
        }
        Hist::Seq(a, b) => {
            collect_policy_names(a, out);
            collect_policy_names(b, out);
        }
        Hist::Mu(_, body) => collect_policy_names(body, out),
        Hist::Ext(bs) | Hist::Int(bs) => {
            for (_, k) in bs {
                collect_policy_names(k, out);
            }
        }
        _ => {}
    }
}

fn has_parameterised_refs(h: &Hist) -> bool {
    match h {
        Hist::Framed(p, body) => !p.args().is_empty() || has_parameterised_refs(body),
        Hist::Req { policy, body, .. } => {
            policy.as_ref().is_some_and(|p| !p.args().is_empty()) || has_parameterised_refs(body)
        }
        Hist::Seq(a, b) => has_parameterised_refs(a) || has_parameterised_refs(b),
        Hist::Mu(_, body) => has_parameterised_refs(body),
        Hist::Ext(bs) | Hist::Int(bs) => bs.iter().any(|(_, k)| has_parameterised_refs(k)),
        _ => false,
    }
}

/// A random identifier `[a-z][a-z0-9_]{0,max_tail}` (underscore only
/// when `underscore` is set).
fn random_ident(r: &mut StdRng, max_tail: usize, underscore: bool) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let tail_pool = if underscore {
        TAIL.len()
    } else {
        TAIL.len() - 1
    };
    let mut s = String::new();
    s.push(HEAD[r.gen_range(0..HEAD.len())] as char);
    for _ in 0..r.gen_range(0usize..=max_tail) {
        s.push(TAIL[r.gen_range(0..tail_pool)] as char);
    }
    s
}

fn random_value(r: &mut StdRng) -> Value {
    if r.gen_bool(0.5) {
        Value::Int(r.gen_range(-100i64..100))
    } else {
        Value::Str(random_ident(r, 4, false))
    }
}

fn random_event(r: &mut StdRng) -> Event {
    let name = random_ident(r, 5, false);
    let args: Vec<Value> = (0..r.gen_range(0usize..3))
        .map(|_| random_value(r))
        .collect();
    Event::new(name, args)
}

fn random_policy_ref(r: &mut StdRng) -> PolicyRef {
    let name = random_ident(r, 6, true);
    let args: Vec<ParamValue> = (0..r.gen_range(0usize..3))
        .map(|_| {
            if r.gen_bool(0.5) {
                ParamValue::Scalar(random_value(r))
            } else {
                let set: std::collections::BTreeSet<Value> = (0..r.gen_range(0usize..3))
                    .map(|_| random_value(r))
                    .collect();
                ParamValue::Set(set)
            }
        })
        .collect();
    PolicyRef::new(name, args)
}

/// Random well-formed history expressions (loop-free).
fn random_hist(depth: usize, r: &mut StdRng) -> Hist {
    if depth == 0 || r.gen_bool(0.2) {
        return if r.gen_bool(0.4) {
            Hist::Eps
        } else {
            Hist::Ev(random_event(r))
        };
    }
    match r.gen_range(0u8..4) {
        // sequence
        0 => Hist::seq(random_hist(depth - 1, r), random_hist(depth - 1, r)),
        // choices with distinct guards
        1 => {
            let chans = r.subsequence(&["a", "b", "c", "d"], 1, 3);
            let bs: Vec<(Channel, Hist)> = chans
                .into_iter()
                .map(|c| (Channel::new(c), random_hist(depth - 1, r)))
                .collect();
            if r.gen_bool(0.5) {
                Hist::Int(bs)
            } else {
                Hist::Ext(bs)
            }
        }
        // framing
        2 => Hist::framed(random_policy_ref(r), random_hist(depth - 1, r)),
        // request (duplicate ids rejected by wf below where it matters)
        _ => Hist::req(r.gen_range(0u32..8), None, random_hist(depth - 1, r)),
    }
}

const CASES: u64 = 250;

/// `parse ∘ display = id` on random expressions.
#[test]
fn parse_display_roundtrip() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let h = random_hist(4, &mut r);
        let printed = h.to_string();
        let reparsed = parse_hist(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse of `{printed}` failed: {e}"));
        assert_eq!(reparsed, h, "seed {seed}");
    }
}

/// The incremental run-time monitor agrees with the batch validity
/// check `⊨ η` on random histories over the read/write policy.
#[test]
fn monitor_agrees_with_batch_validity() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let items: Vec<HistoryItem> = (0..r.gen_range(0usize..20))
            .map(|_| match r.gen_range(0u8..5) {
                0 => HistoryItem::Ev(Event::nullary("read")),
                1 => HistoryItem::Ev(Event::nullary("write")),
                2 => HistoryItem::Ev(Event::nullary("noise")),
                3 => HistoryItem::Open(PolicyRef::nullary("no_write_after_read")),
                _ => HistoryItem::Close(PolicyRef::nullary("no_write_after_read")),
            })
            .collect();

        let mut reg = PolicyRegistry::new();
        reg.register(catalog::no_after("read", "write"));

        let h: History = items.iter().cloned().collect();
        let batch = h.first_violation(&reg).unwrap().map(|(_, p)| p);

        let mut monitor = sufs_net::ValidityMonitor::new();
        let mut incremental = None;
        for item in &items {
            if let Some(p) = monitor.observe(item, &reg).unwrap() {
                incremental = Some(p);
                break;
            }
        }
        assert_eq!(incremental, batch, "seed {seed}");
    }
}

/// Projection commutes with ready sets on random expressions.
#[test]
fn ready_sets_commute_with_projection() {
    use sufs_hexpr::{projection::project, ready::ready_sets};
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let h = random_hist(4, &mut r);
        assert_eq!(ready_sets(&h), ready_sets(&project(&h)), "seed {seed}");
    }
}

/// The BPA rendering of §3.1 is trace-equivalent to the direct LTS on
/// random expressions (bounded depth).
#[test]
fn bpa_rendering_is_trace_equivalent() {
    use sufs_hexpr::bpa::BpaSystem;
    use sufs_hexpr::semantics::traces;
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let h = random_hist(4, &mut r);
        let bpa = BpaSystem::from_hist(&h);
        assert_eq!(bpa.traces(6), traces(&h, 6), "seed {seed}");
    }
}

/// Regularisation ([5,4], §3.1) preserves validity and flattens
/// same-policy nesting on random expressions.
#[test]
fn regularisation_preserves_validity() {
    use sufs_hexpr::semantics::successors;
    use sufs_policy::regularize::{regularize, same_policy_nesting};
    use sufs_policy::validity::check_validity;

    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let h = random_hist(4, &mut r);

        // Register a policy automaton for every policy name mentioned.
        let mut reg = PolicyRegistry::new();
        let mut names = std::collections::BTreeSet::new();
        collect_policy_names(&h, &mut names);
        for name in &names {
            reg.register({
                let mut b = sufs_policy::UsageBuilder::new(name.clone(), Vec::<String>::new());
                let q0 = b.state();
                let bad = b.state();
                b.on(q0, "poison", sufs_policy::Guard::True, bad)
                    .offending(bad);
                b.build().unwrap()
            });
        }
        // Only check instances whose references are parameterless
        // (otherwise instantiation fails by arity).
        if !has_parameterised_refs(&h) {
            let reg2 = regularize(&h);
            let v1 = check_validity(h.clone(), successors, &reg, 1 << 18);
            let v2 = check_validity(reg2.clone(), successors, &reg, 1 << 18);
            assert_eq!(
                v1.map(|v| v.is_valid()),
                v2.map(|v| v.is_valid()),
                "seed {seed}"
            );
            assert!(same_policy_nesting(&reg2) <= 1, "seed {seed}");
        }
    }
}

/// The LTS of a random well-formed expression is finite and every sink
/// state is the terminated ε.
#[test]
fn closed_expressions_run_to_eps() {
    for seed in 0..CASES {
        let mut r = StdRng::seed_from_u64(seed);
        let h = random_hist(4, &mut r);
        // Duplicated request ids fail wf: skip those.
        if sufs_hexpr::wf::check(&h).is_err() {
            continue;
        }
        let lts = sufs_hexpr::HistLts::build(&h).unwrap();
        assert!(lts.stuck_states().is_empty(), "seed {seed}");
    }
}
