//! Cross-crate property tests: parser/printer round trips and agreement
//! between the static analyses and the reference implementations.

use proptest::prelude::*;

use sufs_hexpr::{parse_hist, Channel, Event, Hist, ParamValue, PolicyRef, Value};
use sufs_policy::{catalog, History, HistoryItem, PolicyRegistry};

fn collect_policy_names(h: &Hist, out: &mut std::collections::BTreeSet<String>) {
    match h {
        Hist::Framed(p, body) => {
            out.insert(p.name().to_owned());
            collect_policy_names(body, out);
        }
        Hist::Req { policy, body, .. } => {
            if let Some(p) = policy {
                out.insert(p.name().to_owned());
            }
            collect_policy_names(body, out);
        }
        Hist::Seq(a, b) => {
            collect_policy_names(a, out);
            collect_policy_names(b, out);
        }
        Hist::Mu(_, body) => collect_policy_names(body, out),
        Hist::Ext(bs) | Hist::Int(bs) => {
            for (_, k) in bs {
                collect_policy_names(k, out);
            }
        }
        _ => {}
    }
}

fn has_parameterised_refs(h: &Hist) -> bool {
    match h {
        Hist::Framed(p, body) => !p.args().is_empty() || has_parameterised_refs(body),
        Hist::Req { policy, body, .. } => {
            policy.as_ref().is_some_and(|p| !p.args().is_empty()) || has_parameterised_refs(body)
        }
        Hist::Seq(a, b) => has_parameterised_refs(a) || has_parameterised_refs(b),
        Hist::Mu(_, body) => has_parameterised_refs(body),
        Hist::Ext(bs) | Hist::Int(bs) => bs.iter().any(|(_, k)| has_parameterised_refs(k)),
        _ => false,
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-100i64..100).prop_map(Value::Int),
        "[a-z][a-z0-9]{0,4}".prop_map(Value::Str),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        "[a-z][a-z0-9]{0,5}",
        proptest::collection::vec(arb_value(), 0..3),
    )
        .prop_map(|(n, args)| Event::new(n, args))
}

fn arb_policy_ref() -> impl Strategy<Value = PolicyRef> {
    (
        "[a-z][a-z0-9_]{0,6}",
        proptest::collection::vec(
            prop_oneof![
                arb_value().prop_map(ParamValue::Scalar),
                proptest::collection::btree_set(arb_value(), 0..3).prop_map(ParamValue::Set),
            ],
            0..3,
        ),
    )
        .prop_map(|(n, args)| PolicyRef::new(n, args))
}

/// Random well-formed history expressions (loop-free plus a recursive
/// wrapper case).
fn arb_hist() -> impl Strategy<Value = Hist> {
    let leaf = prop_oneof![Just(Hist::Eps), arb_event().prop_map(Hist::Ev),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            // sequence
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Hist::seq(a, b)),
            // choices with distinct guards
            (
                any::<bool>(),
                proptest::sample::subsequence(vec!["a", "b", "c", "d"], 1..=3),
                proptest::collection::vec(inner.clone(), 3),
            )
                .prop_map(|(int, chans, conts)| {
                    let bs: Vec<(Channel, Hist)> = chans
                        .into_iter()
                        .zip(conts)
                        .map(|(c, h)| (Channel::new(c), h))
                        .collect();
                    if int {
                        Hist::Int(bs)
                    } else {
                        Hist::Ext(bs)
                    }
                }),
            // framing
            (arb_policy_ref(), inner.clone()).prop_map(|(p, h)| Hist::framed(p, h)),
            // request (identifiers deduplicated below before wf matters)
            (0u32..8, inner).prop_map(|(r, h)| Hist::req(r, None, h)),
        ]
    })
}

proptest! {
    /// `parse ∘ display = id` on random expressions.
    #[test]
    fn parse_display_roundtrip(h in arb_hist()) {
        let printed = h.to_string();
        let reparsed = parse_hist(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(reparsed, h);
    }

    /// The incremental run-time monitor agrees with the batch validity
    /// check `⊨ η` on random histories over the read/write policy.
    #[test]
    fn monitor_agrees_with_batch_validity(
        items in proptest::collection::vec(
            prop_oneof![
                Just(HistoryItem::Ev(Event::nullary("read"))),
                Just(HistoryItem::Ev(Event::nullary("write"))),
                Just(HistoryItem::Ev(Event::nullary("noise"))),
                Just(HistoryItem::Open(PolicyRef::nullary("no_write_after_read"))),
                Just(HistoryItem::Close(PolicyRef::nullary("no_write_after_read"))),
            ],
            0..20,
        )
    ) {
        let mut reg = PolicyRegistry::new();
        reg.register(catalog::no_after("read", "write"));

        let h: History = items.iter().cloned().collect();
        let batch = h.first_violation(&reg).unwrap().map(|(_, p)| p);

        let mut monitor = sufs_net::ValidityMonitor::new();
        let mut incremental = None;
        for item in &items {
            if let Some(p) = monitor.observe(item, &reg).unwrap() {
                incremental = Some(p);
                break;
            }
        }
        prop_assert_eq!(incremental, batch);
    }

    /// Projection commutes with ready sets on random expressions.
    #[test]
    fn ready_sets_commute_with_projection(h in arb_hist()) {
        use sufs_hexpr::{projection::project, ready::ready_sets};
        prop_assert_eq!(ready_sets(&h), ready_sets(&project(&h)));
    }

    /// The BPA rendering of §3.1 is trace-equivalent to the direct LTS
    /// on random expressions (bounded depth).
    #[test]
    fn bpa_rendering_is_trace_equivalent(h in arb_hist()) {
        use sufs_hexpr::bpa::BpaSystem;
        use sufs_hexpr::semantics::traces;
        let bpa = BpaSystem::from_hist(&h);
        prop_assert_eq!(bpa.traces(6), traces(&h, 6));
    }

    /// Regularisation ([5,4], §3.1) preserves validity and flattens
    /// same-policy nesting on random expressions.
    #[test]
    fn regularisation_preserves_validity(h in arb_hist()) {
        use sufs_policy::regularize::{regularize, same_policy_nesting};
        use sufs_policy::validity::check_validity;
        use sufs_hexpr::semantics::successors;

        // Register a policy automaton for every policy name mentioned.
        let mut reg = PolicyRegistry::new();
        let mut names = std::collections::BTreeSet::new();
        collect_policy_names(&h, &mut names);
        for name in &names {
            // Arity-polymorphic registration: a fresh no-op-parameter
            // automaton would not match arbitrary arities, so skip
            // expressions referencing parameterised policies.
            reg.register({
                let mut b = sufs_policy::UsageBuilder::new(
                    name.clone(),
                    Vec::<String>::new(),
                );
                let q0 = b.state();
                let bad = b.state();
                b.on(q0, "poison", sufs_policy::Guard::True, bad).offending(bad);
                b.build().unwrap()
            });
        }
        // Only check instances whose references are parameterless
        // (otherwise instantiation fails by arity).
        let any_params = has_parameterised_refs(&h);
        if !any_params {
            let r = regularize(&h);
            let v1 = check_validity(h.clone(), successors, &reg, 1 << 18);
            let v2 = check_validity(r.clone(), successors, &reg, 1 << 18);
            prop_assert_eq!(
                v1.map(|v| v.is_valid()),
                v2.map(|v| v.is_valid())
            );
            prop_assert!(same_policy_nesting(&r) <= 1);
        }
    }

    /// The LTS of a random well-formed expression is finite and every
    /// sink state is the terminated ε.
    #[test]
    fn closed_expressions_run_to_eps(h in arb_hist()) {
        // Deduplicate request ids first so wf holds.
        if sufs_hexpr::wf::check(&h).is_err() {
            return Ok(()); // duplicated request ids: skip
        }
        let lts = sufs_hexpr::HistLts::build(&h).unwrap();
        prop_assert!(lts.stuck_states().is_empty());
    }
}
