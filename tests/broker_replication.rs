//! Experiment E15: WAL-shipping replication, failover promotion, and
//! partition chaos across a three-node broker cluster.
//!
//! The centrepiece drives ≥300 seeded cycles against a primary and two
//! followers, each follower pulling its record stream through a
//! [`ChaosLink`] the harness partitions, blackholes, lags, and heals
//! explicitly, while follower processes are killed and respawned and
//! the primary itself is killed and replaced by a promoted follower
//! every twelfth cycle. Invariants:
//!
//! (a) no quorum-acknowledged mutation is ever lost: the cluster state
//!     after every failover renders **byte-identical** to an oracle
//!     that applies exactly the quorum-acknowledged mutations,
//! (b) the promoted follower is the one with the highest applied
//!     sequence, and it equals the oracle *before* taking new writes,
//! (c) `plan` served from followers (and from freshly promoted
//!     primaries) never diverges from in-process synthesis over the
//!     oracle state,
//! (d) retrying a mutation with the same `req_id` until its reply says
//!     `"quorum": true` applies it exactly once, no matter how many
//!     partitions interleave.
//!
//! Satellite tests pin the replication edge cases: a follower joining
//! mid-compaction, a replicated record straddling the bootstrap's
//! `covered_seq` (must be skipped, not re-applied), a torn record
//! stream healing by redial with retained progress, client failover
//! resending the same `req_id` to a promoted follower, the
//! `not_primary` redirect, promotion idempotence, and the graceful
//! drain acking-or-rejecting racing mutations deterministically.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sufs_broker::chaos::ChaosLink;
use sufs_broker::proto::{self, read_frame, write_frame};
use sufs_broker::{
    snapshot, AckMode, Broker, BrokerClient, BrokerConfig, BrokerHandle, Json, ReconnectPolicy,
};
use sufs_core::verify::verify;
use sufs_hexpr::builder::*;
use sufs_hexpr::{parse_hist, Hist, Location};
use sufs_net::Repository;
use sufs_policy::PolicyRegistry;
use sufs_rng::{Rng, SeedableRng, StdRng};

/// A fresh per-test state directory under the system tmpdir.
fn state_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sufs-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// The booking client of the e2e suite: one request, two outcomes.
fn booking_client() -> Hist {
    request(
        1,
        None,
        seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
    )
}

/// Candidate services: two compliant, one non-compliant, one on the
/// wrong channel.
fn service_pool() -> Vec<Hist> {
    vec![
        recv("req", choose([("ok", eps()), ("no", eps())])),
        recv("req", choose([("ok", eps())])),
        recv("req", choose([("ok", eps()), ("later", eps())])),
        recv("zzz", eps()),
    ]
}

/// Canonical rendering of a broker's `repo` reply — the byte string
/// replicated state is compared by.
fn canonical_remote(reply: &Json) -> String {
    assert_eq!(reply.bool_field("ok"), Some(true), "repo failed: {reply}");
    let mut out = String::new();
    for s in reply.get("services").and_then(Json::as_arr).unwrap() {
        let loc = s.str_field("location").unwrap();
        let service = s.str_field("service").unwrap();
        match s.u64_field("capacity") {
            Some(cap) => out.push_str(&format!("{loc} (x{cap}): {service}\n")),
            None => out.push_str(&format!("{loc}: {service}\n")),
        }
    }
    let mut policies: Vec<&str> = reply
        .get("policies")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    policies.sort_unstable();
    for p in policies {
        out.push_str(&format!("policy {p}\n"));
    }
    out
}

/// The same rendering over the in-process oracle.
fn canonical_oracle(repo: &Repository, registry: &PolicyRegistry) -> String {
    let mut out = String::new();
    for (loc, service, capacity) in repo.export() {
        match capacity {
            Some(cap) => out.push_str(&format!("{loc} (x{cap}): {service}\n")),
            None => out.push_str(&format!("{loc}: {service}\n")),
        }
    }
    let mut policies: Vec<&str> = registry.iter().map(|a| a.name()).collect();
    policies.sort_unstable();
    for p in policies {
        out.push_str(&format!("policy {p}\n"));
    }
    out
}

/// One node's configuration: quorum acks over a fixed three-node
/// cluster, timings tightened so partitions and redials resolve in
/// milliseconds instead of seconds.
fn node_config(dir: &Path, follow: Option<String>) -> BrokerConfig {
    BrokerConfig {
        state_dir: Some(dir.to_path_buf()),
        snapshot_every: 16,
        follow,
        ack: AckMode::Quorum,
        cluster_size: 3,
        ack_timeout: Duration::from_millis(200),
        follow_retry: Duration::from_millis(10),
        replication_tick: Duration::from_millis(25),
        ..BrokerConfig::default()
    }
}

fn stats_at(addr: SocketAddr) -> Json {
    let mut client = BrokerClient::connect(addr).expect("connect for stats");
    client.stats().expect("stats")
}

fn applied_of(stats: &Json) -> u64 {
    stats
        .get("replication")
        .and_then(|r| r.u64_field("applied_seq"))
        .unwrap_or(0)
}

/// Polls a node until its applied sequence reaches `target`.
fn await_caught_up(addr: SocketAddr, target: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if applied_of(&stats_at(addr)) >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what} never caught up to seq {target}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Asserts a broker's remote `plan` verdicts equal in-process
/// synthesis over the oracle state.
fn assert_plan_matches(
    addr: SocketAddr,
    oracle_repo: &Repository,
    oracle_registry: &PolicyRegistry,
    what: &str,
) {
    if oracle_repo.is_empty() {
        return;
    }
    let mut client = BrokerClient::connect(addr).expect("connect for plan");
    let reply = client
        .plan(&booking_client().to_string())
        .expect("plan request");
    assert_eq!(reply.bool_field("ok"), Some(true), "plan failed: {reply}");
    let mut remote_valid: Vec<String> = reply
        .get("valid")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|v| v.as_str().map(str::to_owned))
        .collect();
    remote_valid.sort();
    let report = verify(&booking_client(), oracle_repo, oracle_registry).expect("verify");
    let mut local_valid: Vec<String> = report.valid_plans().map(|p| p.to_string()).collect();
    local_valid.sort();
    assert_eq!(remote_valid, local_valid, "{what}: plan verdicts diverged");
}

/// The three-node cluster under test: node `primary` serves mutations,
/// the other two follow it, each through its own [`ChaosLink`].
struct Cluster {
    dirs: Vec<PathBuf>,
    handles: Vec<Option<BrokerHandle>>,
    links: Vec<Option<ChaosLink>>,
    primary: usize,
}

impl Cluster {
    fn start(tag: &str) -> Cluster {
        let dirs: Vec<PathBuf> = (0..3).map(|i| state_dir(&format!("{tag}-n{i}"))).collect();
        let mut cluster = Cluster {
            dirs,
            handles: vec![None, None, None],
            links: vec![None, None, None],
            primary: 0,
        };
        let handle = Broker::spawn(node_config(&cluster.dirs[0], None)).expect("primary spawns");
        cluster.handles[0] = Some(handle);
        cluster.spawn_follower(1);
        cluster.spawn_follower(2);
        cluster
    }

    fn primary_addr(&self) -> SocketAddr {
        self.handles[self.primary]
            .as_ref()
            .expect("primary up")
            .addr()
    }

    fn addr_of(&self, node: usize) -> SocketAddr {
        self.handles[node].as_ref().expect("node up").addr()
    }

    fn follower_ids(&self) -> Vec<usize> {
        (0..3).filter(|&i| i != self.primary).collect()
    }

    /// (Re)starts node `i` as a follower of the current primary, with a
    /// fresh chaos link in front of the upstream connection.
    fn spawn_follower(&mut self, i: usize) {
        let link = ChaosLink::spawn(self.primary_addr()).expect("link spawns");
        let config = node_config(&self.dirs[i], Some(link.addr().to_string()));
        self.handles[i] = Some(Broker::spawn(config).expect("follower spawns"));
        self.links[i] = Some(link);
    }

    fn kill_node(&mut self, i: usize) {
        if let Some(handle) = self.handles[i].take() {
            handle.kill();
        }
        self.links[i] = None;
    }

    fn heal_all(&self) {
        for link in self.links.iter().flatten() {
            link.control().heal();
        }
    }

    /// Kills the primary and promotes the follower with the highest
    /// applied sequence — the one guaranteed to hold every
    /// quorum-acknowledged record. The remaining node (and later the
    /// old primary's state dir) rejoin as followers of the new primary.
    fn failover(&mut self) -> usize {
        let old_primary = self.primary;
        self.kill_node(old_primary);
        let best = *self
            .follower_ids()
            .iter()
            .max_by_key(|&&i| applied_of(&stats_at(self.addr_of(i))))
            .expect("two followers");
        let mut client = BrokerClient::connect(self.addr_of(best)).expect("connect promoted");
        let reply = client.promote().expect("promote");
        assert_eq!(
            reply.bool_field("ok"),
            Some(true),
            "promote failed: {reply}"
        );
        assert_eq!(reply.bool_field("changed"), Some(true), "{reply}");
        self.links[best] = None; // the promoted node pulls from nobody
        self.primary = best;
        // The node that followed the dead primary re-points by respawn;
        // the dead primary's state dir rejoins as a follower too.
        let stragglers: Vec<usize> = (0..3).filter(|&i| i != best).collect();
        for i in stragglers {
            self.kill_node(i);
            self.spawn_follower(i);
        }
        best
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for i in 0..3 {
            self.kill_node(i);
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Issues one mutation to the primary and retries the same `req_id`
/// until the reply reports `"quorum": true` (or needs no quorum because
/// it changed nothing). After a few failed attempts the harness heals
/// every link — a partitioned majority can never ack — and keeps
/// retrying; the idempotency window makes every retry exactly-once.
fn settle_mutation(cluster: &Cluster, req: &Json) -> Json {
    let addr = cluster.primary_addr();
    let mut client = BrokerClient::connect(addr).expect("connect primary");
    let mut healed = false;
    for attempt in 0..600 {
        let reply = match client.request(req) {
            Ok(reply) => reply,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                client = BrokerClient::connect(addr).expect("reconnect primary");
                continue;
            }
        };
        if reply.bool_field("ok") == Some(true) && reply.bool_field("quorum") != Some(false) {
            return reply;
        }
        assert_ne!(
            reply.str_field("kind"),
            Some("not_primary"),
            "harness targeted a follower: {reply}"
        );
        if attempt >= 2 && !healed {
            cluster.heal_all();
            healed = true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("mutation never reached quorum: {req}");
}

/// E15. ≥300 seeded partition/kill/promotion cycles across three nodes.
#[test]
fn e15_replication_failover_under_partition_chaos() {
    const CYCLES: u64 = 300;
    let mut cluster = Cluster::start("e15");
    let mut oracle_repo = Repository::new();
    let mut oracle_registry = PolicyRegistry::new();
    let mut master = StdRng::seed_from_u64(0xE15);
    let pool: Vec<String> = service_pool().iter().map(|h| h.to_string()).collect();
    let locations = ["s0", "s1", "s2", "s3"];
    let policy_names = ["pa", "pb"];
    let mut req_counter = 0u64;
    let mut failovers = 0u64;
    let mut quorum_timeouts_seen = 0u64;

    for cycle in 0..CYCLES {
        // Chaos step: heal yesterday's weather with probability 1/2,
        // then draw today's.
        for link in cluster.links.iter().flatten() {
            if master.gen_bool(0.5) {
                link.control().heal();
            }
        }
        let followers = cluster.follower_ids();
        match master.gen_range(0..12u32) {
            // Cut one replication link (the common partition).
            0..=2 => {
                let victim = followers[master.gen_range(0..followers.len())];
                if let Some(link) = &cluster.links[victim] {
                    link.control().partition();
                }
            }
            // Cut both: the primary is a minority and quorum must fail
            // until the harness heals.
            3 => {
                for link in cluster.links.iter().flatten() {
                    link.control().partition();
                }
            }
            // Asymmetric loss: acks vanish upstream…
            4 => {
                let victim = followers[master.gen_range(0..followers.len())];
                if let Some(link) = &cluster.links[victim] {
                    link.control().drop_upstream(true);
                }
            }
            // …or records vanish downstream.
            5 => {
                let victim = followers[master.gen_range(0..followers.len())];
                if let Some(link) = &cluster.links[victim] {
                    link.control().drop_downstream(true);
                }
            }
            // A laggy link.
            6 => {
                let victim = followers[master.gen_range(0..followers.len())];
                if let Some(link) = &cluster.links[victim] {
                    link.control()
                        .set_delay(Duration::from_millis(master.gen_range(1..4u64)));
                }
            }
            // kill -9 a follower; it rejoins from its own state dir.
            7 => {
                let victim = followers[master.gen_range(0..followers.len())];
                cluster.kill_node(victim);
                cluster.spawn_follower(victim);
            }
            _ => {}
        }

        // Mutate through the quorum-retry loop; the oracle applies a
        // mutation exactly when the cluster acknowledged its quorum.
        for _ in 0..master.gen_range(1..3usize) {
            req_counter += 1;
            let req_id = format!("e15-{req_counter:08}");
            match master.gen_range(0..10u32) {
                0..=5 => {
                    let loc = locations[master.gen_range(0..locations.len())];
                    let service = &pool[master.gen_range(0..pool.len())];
                    let capacity = if master.gen_bool(0.3) {
                        Some(master.gen_range(1..4u64))
                    } else {
                        None
                    };
                    let mut req = Json::obj()
                        .with("cmd", "publish")
                        .with("location", loc)
                        .with("service", service.as_str())
                        .with("req_id", req_id.as_str());
                    if let Some(cap) = capacity {
                        req.set("capacity", cap);
                    }
                    let fresh = oracle_repo.get(&Location::new(loc)).is_none();
                    let reply = settle_mutation(&cluster, &req);
                    // (d): however many retries quorum took, the event
                    // proves single application.
                    let event = reply.str_field("event").unwrap_or("");
                    if fresh {
                        assert!(
                            event.starts_with("published"),
                            "cycle {cycle}: quorum retry double-applied: {reply}"
                        );
                    } else {
                        assert!(
                            event.starts_with("updated"),
                            "cycle {cycle}: wrong event for upsert: {reply}"
                        );
                    }
                    let parsed = parse_hist(service).expect("pool parses");
                    match capacity {
                        Some(cap) => {
                            oracle_repo
                                .try_publish_bounded(loc, parsed, cap as usize)
                                .expect("pool is well-formed");
                        }
                        None => {
                            oracle_repo.try_publish(loc, parsed).expect("well-formed");
                        }
                    }
                }
                6 | 7 => {
                    let loc = locations[master.gen_range(0..locations.len())];
                    let req = Json::obj()
                        .with("cmd", "retract")
                        .with("location", loc)
                        .with("req_id", req_id.as_str());
                    let reply = settle_mutation(&cluster, &req);
                    let expected = oracle_repo.get(&Location::new(loc)).is_some();
                    assert_eq!(
                        reply.bool_field("changed"),
                        Some(expected),
                        "cycle {cycle}: retract changed-ness diverged: {reply}"
                    );
                    oracle_repo.retract(&Location::new(loc));
                }
                8 => {
                    let name = policy_names[master.gen_range(0..policy_names.len())];
                    let text = format!(
                        "policy {name}(p) {{ start q0; q0 -- pay if x0 in p -> q1; \
                         q1 -- pay if x0 in p -> q2; offending q2; }}"
                    );
                    let req = Json::obj()
                        .with("cmd", "publish_scenario")
                        .with("text", text.as_str())
                        .with("req_id", req_id.as_str());
                    let reply = settle_mutation(&cluster, &req);
                    assert_eq!(reply.u64_field("policies"), Some(1), "{reply}");
                    let sc = sufs_core::scenario::parse_scenario(&text).expect("scenario");
                    for ua in sc.registry.iter() {
                        oracle_registry.register(ua.clone());
                    }
                }
                _ => {
                    let name = policy_names[master.gen_range(0..policy_names.len())];
                    let req = Json::obj()
                        .with("cmd", "retract_policy")
                        .with("name", name)
                        .with("req_id", req_id.as_str());
                    let reply = settle_mutation(&cluster, &req);
                    let expected = oracle_registry.get(name).is_some();
                    assert_eq!(
                        reply.bool_field("changed"),
                        Some(expected),
                        "cycle {cycle}: retract_policy diverged: {reply}"
                    );
                    oracle_registry.remove(name);
                }
            }
        }

        // Every twelfth cycle the primary dies and the best follower
        // takes over.
        if cycle % 12 == 11 {
            // Harvest the dying primary's quorum-timeout count first.
            quorum_timeouts_seen += stats_at(cluster.primary_addr())
                .get("stats")
                .and_then(|s| s.get("replication"))
                .and_then(|r| r.u64_field("quorum_timeouts"))
                .unwrap_or(0);
            let promoted = cluster.failover();
            failovers += 1;
            // (a)+(b): the promoted node equals the oracle before it
            // accepts a single new write.
            let mut client =
                BrokerClient::connect(cluster.addr_of(promoted)).expect("connect promoted");
            let remote = canonical_remote(&client.repo().expect("repo"));
            let local = canonical_oracle(&oracle_repo, &oracle_registry);
            assert_eq!(
                remote, local,
                "cycle {cycle}: promoted follower lost a quorum-acked mutation"
            );
            // (c): and serves the same plan verdicts it did as a
            // follower.
            if failovers.is_multiple_of(4) {
                assert_plan_matches(
                    cluster.addr_of(promoted),
                    &oracle_repo,
                    &oracle_registry,
                    &format!("cycle {cycle}: promoted primary"),
                );
            }
        }

        // Every tenth cycle: heal everything and check full-cluster
        // convergence against the oracle, plus follower-served plans.
        if cycle % 10 == 9 {
            cluster.heal_all();
            let target = applied_of(&stats_at(cluster.primary_addr()));
            for i in cluster.follower_ids() {
                await_caught_up(
                    cluster.addr_of(i),
                    target,
                    &format!("cycle {cycle}: follower {i}"),
                );
                let mut client = BrokerClient::connect(cluster.addr_of(i)).expect("connect");
                let remote = canonical_remote(&client.repo().expect("repo"));
                let local = canonical_oracle(&oracle_repo, &oracle_registry);
                assert_eq!(remote, local, "cycle {cycle}: follower {i} diverged");
            }
            if cycle % 30 == 29 {
                let follower = cluster.follower_ids()[0];
                assert_plan_matches(
                    cluster.addr_of(follower),
                    &oracle_repo,
                    &oracle_registry,
                    &format!("cycle {cycle}: follower {follower}"),
                );
            }
        }
    }

    assert!(
        failovers >= 20,
        "only {failovers} failovers in {CYCLES} cycles"
    );
    assert!(
        quorum_timeouts_seen > 0,
        "chaos never forced a quorum timeout — partitions too weak"
    );
    // The replication stats section reports a healthy final cluster.
    cluster.heal_all();
    let target = applied_of(&stats_at(cluster.primary_addr()));
    for i in cluster.follower_ids() {
        await_caught_up(cluster.addr_of(i), target, "final follower");
    }
    let stats = stats_at(cluster.primary_addr());
    let repl = stats.get("replication").expect("replication section");
    assert_eq!(repl.str_field("role"), Some("primary"));
    assert_eq!(repl.u64_field("follower_count"), Some(2));
}

/// Satellite (client failover): a reconnecting client rotating through
/// the cluster's addresses resends the *same* `req_id` to a promoted
/// follower, which answers from its replicated idempotency window —
/// the mutation applies exactly once across the failover.
#[test]
fn client_failover_resends_same_req_id_to_promoted_follower() {
    let dir_p = state_dir("fo-p");
    let dir_f = state_dir("fo-f");
    let two = |dir: &Path, follow: Option<String>| BrokerConfig {
        cluster_size: 2,
        ..node_config(dir, follow)
    };
    let primary = Broker::spawn(two(&dir_p, None)).expect("primary spawns");
    let follower =
        Broker::spawn(two(&dir_f, Some(primary.addr().to_string()))).expect("follower spawns");
    let addrs = vec![primary.addr().to_string(), follower.addr().to_string()];
    let mut client = BrokerClient::connect_any(&addrs)
        .expect("connect")
        .with_reconnect(
            ReconnectPolicy {
                max_retries: 8,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(8),
                ..ReconnectPolicy::default()
            }
            .with_addrs(addrs.clone()),
        );
    let service = service_pool()[0].to_string();
    let req = Json::obj()
        .with("cmd", "publish")
        .with("location", "fo")
        .with("service", service.as_str())
        .with("req_id", "fo-0001");
    // Settle on the primary: retry the same req_id until quorum.
    let first = loop {
        let reply = client.request_retrying(&req).expect("publish");
        assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
        if reply.bool_field("quorum") == Some(true) {
            break reply;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(first.str_field("event"), Some("published fo"));

    // The primary dies; the follower is promoted.
    primary.kill();
    let mut ops = BrokerClient::connect(follower.addr()).expect("connect follower");
    let promote = ops.promote().expect("promote");
    assert_eq!(promote.bool_field("changed"), Some(true), "{promote}");

    // The same client resends the same req_id: the redial rotates to
    // the follower's address, whose replicated window proves the
    // mutation already happened.
    let retry = client.request_retrying(&req).expect("retry after failover");
    assert_eq!(retry.bool_field("ok"), Some(true), "{retry}");
    assert_eq!(
        retry.str_field("event"),
        Some("published fo"),
        "the promoted follower re-applied a replicated mutation: {retry}"
    );
    let _ = std::fs::remove_dir_all(&dir_p);
    let _ = std::fs::remove_dir_all(&dir_f);
}

/// Satellite (bootstrap edge case): a follower joining while the
/// primary compacts after every mutation bootstraps a consistent
/// snapshot and streams the live tail without gaps.
#[test]
fn follower_joining_mid_compaction_converges() {
    let dir_p = state_dir("midcomp-p");
    let dir_f = state_dir("midcomp-f");
    let cfg = |dir: &Path, follow: Option<String>| BrokerConfig {
        ack: AckMode::Local,
        cluster_size: 1,
        snapshot_every: 1, // every mutation compacts
        ..node_config(dir, follow)
    };
    let primary = Broker::spawn(cfg(&dir_p, None)).expect("primary spawns");
    let addr = primary.addr();
    let pool: Vec<String> = service_pool().iter().map(|h| h.to_string()).collect();
    let writer = {
        let pool = pool.clone();
        std::thread::spawn(move || {
            let mut client = BrokerClient::connect(addr).expect("writer connects");
            for i in 0..40 {
                client
                    .publish(&format!("mc{i}"), &pool[i % pool.len()], None)
                    .expect("publish under compaction");
            }
        })
    };
    // Join while the writer is mid-flight: the bootstrap races live
    // compactions.
    std::thread::sleep(Duration::from_millis(5));
    let follower =
        Broker::spawn(cfg(&dir_f, Some(addr.to_string()))).expect("follower spawns mid-load");
    writer.join().expect("writer finishes");
    let target = applied_of(&stats_at(addr));
    await_caught_up(follower.addr(), target, "mid-compaction joiner");
    let mut p = BrokerClient::connect(addr).expect("connect");
    let mut f = BrokerClient::connect(follower.addr()).expect("connect");
    assert_eq!(
        canonical_remote(&f.repo().expect("repo")),
        canonical_remote(&p.repo().expect("repo")),
        "mid-compaction join diverged"
    );
    let _ = std::fs::remove_dir_all(&dir_p);
    let _ = std::fs::remove_dir_all(&dir_f);
}

/// Accepts one replication session on `listener` and performs the
/// primary's half of the handshake with the given snapshot document.
/// Returns the connection and the follower's `from_seq`.
fn accept_replica(listener: &TcpListener, doc: &Json, covered: u64) -> (TcpStream, u64) {
    let (mut conn, _) = listener.accept().expect("follower dials");
    let hello = read_frame(&mut conn).expect("read hello").expect("hello");
    assert_eq!(hello.str_field("cmd"), Some("replicate"), "{hello}");
    let from_seq = hello.u64_field("from_seq").expect("from_seq");
    write_frame(
        &mut conn,
        &proto::ok()
            .with("snapshot", doc.clone())
            .with("seq", covered),
    )
    .expect("handshake");
    let ack = read_frame(&mut conn).expect("read ack").expect("ack");
    assert_eq!(ack.u64_field("ack"), Some(covered), "bootstrap ack: {ack}");
    (conn, from_seq)
}

/// A publish record as the primary would journal and ship it.
fn wire_record(seq: u64, loc: &str, service: &str) -> Json {
    let req = Json::obj()
        .with("cmd", "publish")
        .with("location", loc)
        .with("service", service)
        .with("req_id", format!("wire-{seq:04}"));
    let reply = proto::ok()
        .with("event", format!("published {loc}"))
        .with("changed", true)
        .with("seq", seq);
    Json::obj().with(
        "rec",
        Json::obj()
            .with("seq", seq)
            .with("req", req)
            .with("reply", reply),
    )
}

/// Reads acks from the follower until it acknowledges `seq`.
fn await_ack(conn: &mut TcpStream, seq: u64) {
    loop {
        let frame = read_frame(conn).expect("read ack").expect("ack frame");
        if frame.u64_field("ack").unwrap_or(0) >= seq {
            return;
        }
    }
}

/// Slow replication timings for fake-primary tests, so the follower's
/// heartbeat deadline never fires between scripted frames.
fn scripted_follower_config(dir: &Path, upstream: String) -> BrokerConfig {
    BrokerConfig {
        replication_tick: Duration::from_millis(250),
        ..node_config(dir, Some(upstream))
    }
}

/// Satellite (bootstrap edge case): a record at or below the
/// bootstrap's `covered_seq` — the primary rewound, or the broadcast
/// raced the snapshot render — is skipped by sequence number, never
/// applied twice.
#[test]
fn record_straddling_covered_seq_is_skipped() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("fake primary binds");
    let upstream = listener.local_addr().expect("addr");
    let dir = state_dir("straddle-wire");
    let follower = Broker::spawn(scripted_follower_config(&dir, upstream.to_string()))
        .expect("follower spawns");

    let service = service_pool()[0].to_string();
    let mut repo = Repository::new();
    repo.try_publish("snap", parse_hist(&service).expect("parses"))
        .expect("well-formed");
    let registry = PolicyRegistry::new();
    let doc = snapshot::render_doc(5, &repo, &registry, &[], &[]);
    let (mut conn, from_seq) = accept_replica(&listener, &doc, 5);
    assert_eq!(from_seq, 0, "fresh follower starts from 0");

    // seq 4 straddles the boundary (covered by the snapshot): skipped.
    write_frame(&mut conn, &wire_record(4, "stale", &service)).expect("ship stale");
    // seq 6 is the live tail: applied.
    write_frame(&mut conn, &wire_record(6, "fresh", &service)).expect("ship fresh");
    await_ack(&mut conn, 6);

    let mut client = BrokerClient::connect(follower.addr()).expect("connect");
    let reply = client.repo().expect("repo");
    let locations: Vec<&str> = reply
        .get("services")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|s| s.str_field("location"))
        .collect();
    assert!(
        locations.contains(&"snap"),
        "bootstrap content: {locations:?}"
    );
    assert!(locations.contains(&"fresh"), "tail record: {locations:?}");
    assert!(
        !locations.contains(&"stale"),
        "straddling record re-applied: {locations:?}"
    );
    assert_eq!(applied_of(&stats_at(follower.addr())), 6);
    drop(conn);
    follower.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (bootstrap edge case): a record stream torn mid-frame
/// desynchronises the follower, which redials advertising its retained
/// progress (`from_seq`) and re-bootstraps — nothing applied before the
/// tear is lost.
#[test]
fn torn_stream_redials_with_retained_progress() {
    use std::io::Write as _;
    let listener = TcpListener::bind("127.0.0.1:0").expect("fake primary binds");
    let upstream = listener.local_addr().expect("addr");
    let dir = state_dir("torn-wire");
    let follower = Broker::spawn(scripted_follower_config(&dir, upstream.to_string()))
        .expect("follower spawns");

    let service = service_pool()[0].to_string();
    let empty = snapshot::render_doc(5, &Repository::new(), &PolicyRegistry::new(), &[], &[]);
    let (mut conn, _) = accept_replica(&listener, &empty, 5);
    write_frame(&mut conn, &wire_record(6, "a", &service)).expect("ship a");
    await_ack(&mut conn, 6);
    // Tear the stream mid-frame: a length prefix promising 100 bytes,
    // ten bytes of payload, then the connection dies.
    conn.write_all(&100u32.to_be_bytes()).expect("torn prefix");
    conn.write_all(&[0xab; 10]).expect("torn payload");
    drop(conn);

    // The follower redials from its retained progress.
    let mut repo = Repository::new();
    repo.try_publish("a", parse_hist(&service).expect("parses"))
        .expect("well-formed");
    let doc = snapshot::render_doc(6, &repo, &PolicyRegistry::new(), &[], &[]);
    let (mut conn, from_seq) = accept_replica(&listener, &doc, 6);
    assert_eq!(from_seq, 6, "progress before the tear was lost");
    write_frame(&mut conn, &wire_record(7, "b", &service)).expect("ship b");
    await_ack(&mut conn, 7);

    let mut client = BrokerClient::connect(follower.addr()).expect("connect");
    let reply = client.repo().expect("repo");
    let locations: Vec<&str> = reply
        .get("services")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|s| s.str_field("location"))
        .collect();
    assert!(
        locations.contains(&"a") && locations.contains(&"b"),
        "{locations:?}"
    );
    drop(conn);
    follower.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: followers reject client mutations with `not_primary` and
/// a redirect hint, while still serving reads.
#[test]
fn follower_rejects_mutations_with_redirect_hint() {
    let dir_p = state_dir("redirect-p");
    let dir_f = state_dir("redirect-f");
    let primary = Broker::spawn(node_config(&dir_p, None)).expect("primary spawns");
    let upstream = primary.addr().to_string();
    let follower =
        Broker::spawn(node_config(&dir_f, Some(upstream.clone()))).expect("follower spawns");
    let mut client = BrokerClient::connect(follower.addr()).expect("connect");
    let reply = client
        .publish("nope", &service_pool()[0].to_string(), None)
        .expect("transport ok");
    assert_eq!(reply.bool_field("ok"), Some(false), "{reply}");
    assert_eq!(reply.str_field("kind"), Some("not_primary"), "{reply}");
    assert_eq!(
        reply.str_field("primary"),
        Some(upstream.as_str()),
        "{reply}"
    );
    // Reads still work on the follower.
    assert_eq!(client.repo().expect("repo").bool_field("ok"), Some(true));
    let stats = stats_at(follower.addr());
    let repl = stats.get("replication").expect("replication section");
    assert_eq!(repl.str_field("role"), Some("follower"));
    assert_eq!(repl.str_field("upstream"), Some(upstream.as_str()));
    let _ = std::fs::remove_dir_all(&dir_p);
    let _ = std::fs::remove_dir_all(&dir_f);
}

/// Satellite: `promote` is idempotent — a primary acknowledges without
/// change, a follower changes exactly once.
#[test]
fn promote_is_idempotent() {
    let dir_p = state_dir("idem-p");
    let dir_f = state_dir("idem-f");
    let primary = Broker::spawn(node_config(&dir_p, None)).expect("primary spawns");
    let follower = Broker::spawn(node_config(&dir_f, Some(primary.addr().to_string())))
        .expect("follower spawns");
    let mut p = BrokerClient::connect(primary.addr()).expect("connect");
    let reply = p.promote().expect("promote primary");
    assert_eq!(reply.bool_field("changed"), Some(false), "{reply}");
    let mut f = BrokerClient::connect(follower.addr()).expect("connect");
    let reply = f.promote().expect("promote follower");
    assert_eq!(reply.bool_field("changed"), Some(true), "{reply}");
    let reply = f.promote().expect("promote again");
    assert_eq!(reply.bool_field("changed"), Some(false), "{reply}");
    assert_eq!(
        stats_at(follower.addr())
            .get("replication")
            .and_then(|r| r.str_field("role").map(str::to_owned)),
        Some("primary".to_owned())
    );
    let _ = std::fs::remove_dir_all(&dir_p);
    let _ = std::fs::remove_dir_all(&dir_f);
}

/// Satellite (drain bugfix): mutations racing a graceful shutdown are
/// either fsynced-and-acknowledged or rejected-and-unapplied — never a
/// third thing. Pinned by recovering the state dir and checking every
/// thread's observed outcome against the recovered repository.
#[test]
fn graceful_drain_acks_or_rejects_racing_mutations_deterministically() {
    let dir = state_dir("drainrace");
    let config = BrokerConfig {
        ack: AckMode::Local,
        cluster_size: 1,
        ..node_config(&dir, None)
    };
    let handle = Broker::spawn(config).expect("spawn");
    let addr = handle.addr();
    let service = service_pool()[0].to_string();
    let done = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..4 {
        let service = service.clone();
        let done = Arc::clone(&done);
        workers.push(std::thread::spawn(move || {
            let mut acked: Vec<String> = Vec::new();
            let mut rejected: Vec<String> = Vec::new();
            let Ok(mut client) = BrokerClient::connect(addr) else {
                return (acked, rejected);
            };
            for i in 0..10_000 {
                let loc = format!("d{t}-{i}");
                let req = Json::obj()
                    .with("cmd", "publish")
                    .with("location", loc.as_str())
                    .with("service", service.as_str())
                    .with("req_id", format!("drain-{t}-{i}"));
                match client.request(&req) {
                    Ok(reply) if reply.bool_field("ok") == Some(true) => acked.push(loc),
                    // `shutting_down` or a severed connection: the
                    // mutation must not have been applied.
                    _ => {
                        rejected.push(loc);
                        break;
                    }
                }
                if done.load(Ordering::SeqCst) {
                    break;
                }
            }
            (acked, rejected)
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    let mut ops = BrokerClient::connect(addr).expect("connect for shutdown");
    ops.shutdown().expect("shutdown accepted");
    done.store(true, Ordering::SeqCst);
    handle.join();
    let mut acked = Vec::new();
    let mut rejected = Vec::new();
    for w in workers {
        let (a, r) = w.join().expect("worker");
        acked.extend(a);
        rejected.extend(r);
    }
    assert!(!acked.is_empty(), "no mutation landed before the drain");

    // Recover and compare: acknowledged ⇔ present.
    let handle = Broker::spawn(BrokerConfig {
        ack: AckMode::Local,
        cluster_size: 1,
        ..node_config(&dir, None)
    })
    .expect("respawn");
    let mut client = BrokerClient::connect(handle.addr()).expect("connect");
    let reply = client.repo().expect("repo");
    let present: Vec<String> = reply
        .get("services")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|s| s.str_field("location").map(str::to_owned))
        .collect();
    for loc in &acked {
        assert!(
            present.contains(loc),
            "acknowledged mutation at {loc} lost in the drain"
        );
    }
    for loc in &rejected {
        assert!(
            !present.contains(loc),
            "rejected mutation at {loc} was applied anyway"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
