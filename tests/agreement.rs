//! The soundness direction of §5 on *random* workloads: whenever the
//! static verifier approves a plan, committed-choice monitor-off
//! execution never aborts, never deadlocks and never violates — across
//! randomly generated conversations, repositories and plans. Every case
//! is deterministic in its seed.

use sufs_contract::{dual, Contract};
use sufs_core::verify::verify;
use sufs_hexpr::{Channel, Hist};
use sufs_net::{ChoiceMode, MonitorMode, Network, Outcome, Repository, Scheduler};
use sufs_policy::PolicyRegistry;
use sufs_rng::{Rng, SeedableRng, StdRng};

const CHANNELS: [&str; 3] = ["a", "b", "c"];

/// Random client-side conversations (communication only).
fn random_conversation(depth: usize, r: &mut StdRng) -> Hist {
    if depth == 0 || r.gen_bool(0.25) {
        return Hist::Eps;
    }
    let chans = r.subsequence(&CHANNELS, 1, 2);
    let bs: Vec<(Channel, Hist)> = chans
        .into_iter()
        .map(|c| (Channel::new(c), random_conversation(depth - 1, r)))
        .collect();
    if r.gen_bool(0.5) {
        Hist::Int(bs)
    } else {
        Hist::Ext(bs)
    }
}

#[test]
fn verified_plans_never_fail_on_random_workloads() {
    for seed in 0..24u64 {
        let mut r = StdRng::seed_from_u64(seed);
        let conv = random_conversation(3, &mut r);
        let poison_events = r.gen_range(0usize..3);

        // Client: one request around the random conversation.
        let client = Hist::req(1u32, None, conv.clone());
        if sufs_hexpr::wf::check(&client).is_err() {
            continue;
        }

        // Repository: the dual service (always compliant), a poisoned
        // variant (usually not), and an event-decorated dual (compliant,
        // fires events).
        let Ok(contract) = Contract::from_service(&conv) else {
            continue; // degenerate conversation
        };
        let good = dual(&contract).into_hist();
        let mut decorated = Hist::seq(sufs_hexpr::builder::ev("work", [1]), good.clone());
        for i in 0..poison_events {
            decorated = Hist::seq(decorated, sufs_hexpr::builder::ev("extra", [i as i64]));
        }
        let poisoned = Hist::seq(
            good.clone(),
            Hist::int_([(Channel::new("zz_surprise"), Hist::Eps)]),
        );
        let mut repo = Repository::new();
        repo.publish("good", good);
        repo.publish("decorated", decorated);
        repo.publish("poisoned", poisoned);

        let registry = PolicyRegistry::new();
        let report = verify(&client, &repo, &registry).unwrap();
        assert_eq!(report.len(), 3, "seed {seed}");

        let scheduler = Scheduler::new(&repo, &registry, MonitorMode::Audit, ChoiceMode::Committed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        for verdict in report.verdicts() {
            if !verdict.is_valid() {
                continue;
            }
            for _ in 0..30 {
                let mut network = Network::new();
                network.add_client("client", client.clone(), verdict.plan.clone());
                let r = scheduler.run(network, &mut rng, 10_000).unwrap();
                assert_eq!(
                    &r.outcome,
                    &Outcome::Completed,
                    "seed {seed}: verified plan {} failed: {:?}",
                    verdict.plan,
                    r.outcome
                );
                assert!(r.violations.is_empty(), "seed {seed}");
            }
        }
        // The good (dual) plan is always among the valid ones.
        assert!(
            report.valid_plans().any(|p| p
                .service_for(sufs_hexpr::RequestId::new(1))
                .is_some_and(|l| l.as_str() == "good")),
            "seed {seed}"
        );
    }
}
