//! The soundness direction of §5 on *random* workloads: whenever the
//! static verifier approves a plan, committed-choice monitor-off
//! execution never aborts, never deadlocks and never violates — across
//! randomly generated conversations, repositories and plans.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sufs_contract::{dual, Contract};
use sufs_core::verify::verify;
use sufs_hexpr::{Channel, Hist};
use sufs_net::{ChoiceMode, MonitorMode, Network, Outcome, Repository, Scheduler};
use sufs_policy::PolicyRegistry;

const CHANNELS: [&str; 3] = ["a", "b", "c"];

/// Random client-side conversations (communication only).
fn arb_conversation() -> impl Strategy<Value = Hist> {
    let leaf = Just(Hist::Eps);
    leaf.prop_recursive(3, 16, 3, |inner| {
        (
            any::<bool>(),
            proptest::sample::subsequence(CHANNELS.to_vec(), 1..=2),
            proptest::collection::vec(inner, 2),
        )
            .prop_map(|(internal, chans, conts)| {
                let bs: Vec<(Channel, Hist)> =
                    chans.into_iter().map(Channel::new).zip(conts).collect();
                if internal {
                    Hist::Int(bs)
                } else {
                    Hist::Ext(bs)
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn verified_plans_never_fail_on_random_workloads(
        conv in arb_conversation(),
        poison_events in 0usize..3,
        seed in 0u64..10_000,
    ) {
        // Client: one request around the random conversation.
        let client = Hist::req(1u32, None, conv.clone());
        prop_assume!(sufs_hexpr::wf::check(&client).is_ok());

        // Repository: the dual service (always compliant), a poisoned
        // variant (usually not), and an event-decorated dual (compliant,
        // fires events).
        let Ok(contract) = Contract::from_service(&conv) else {
            return Ok(()); // degenerate conversation
        };
        let good = dual(&contract).into_hist();
        let mut decorated = Hist::seq(
            sufs_hexpr::builder::ev("work", [1]),
            good.clone(),
        );
        for i in 0..poison_events {
            decorated = Hist::seq(decorated, sufs_hexpr::builder::ev("extra", [i as i64]));
        }
        let poisoned = Hist::seq(
            good.clone(),
            Hist::int_([(Channel::new("zz_surprise"), Hist::Eps)]),
        );
        let mut repo = Repository::new();
        repo.publish("good", good);
        repo.publish("decorated", decorated);
        repo.publish("poisoned", poisoned);

        let registry = PolicyRegistry::new();
        let report = verify(&client, &repo, &registry).unwrap();
        prop_assert_eq!(report.len(), 3);

        let scheduler =
            Scheduler::new(&repo, &registry, MonitorMode::Audit, ChoiceMode::Committed);
        let mut rng = StdRng::seed_from_u64(seed);
        for verdict in report.verdicts() {
            if !verdict.is_valid() {
                continue;
            }
            for _ in 0..30 {
                let mut network = Network::new();
                network.add_client("client", client.clone(), verdict.plan.clone());
                let r = scheduler.run(network, &mut rng, 10_000).unwrap();
                prop_assert_eq!(
                    &r.outcome,
                    &Outcome::Completed,
                    "verified plan {} failed: {:?}",
                    verdict.plan,
                    r.outcome
                );
                prop_assert!(r.violations.is_empty());
            }
        }
        // The good (dual) plan is always among the valid ones.
        prop_assert!(report
            .valid_plans()
            .any(|p| p.service_for(sufs_hexpr::RequestId::new(1))
                .is_some_and(|l| l.as_str() == "good")));
    }
}
