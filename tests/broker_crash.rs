//! Experiment E14: crash-recovery of the durable broker under a
//! deterministic chaos transport.
//!
//! The centrepiece drives ≥500 seeded kill-and-restart cycles: each
//! cycle mutates the repository through a fault-injecting proxy
//! ([`sufs_broker::chaos`]), kills the broker *without* draining
//! ([`BrokerHandle::kill`]), restarts it from the same state
//! directory, and checks that
//!
//! (a) the recovered repository renders **byte-identical** to a
//!     never-crashed in-process oracle,
//! (b) every acknowledged mutation survives the crash,
//! (c) a retried mutation (same `req_id`) is never applied twice —
//!     visible in the `published` vs `updated` event of its reply,
//! (d) post-recovery `plan` verdicts equal an in-process `synthesize`
//!     over the oracle state.
//!
//! The satellite tests pin the journal-replay edge cases: empty
//! journal, snapshot-only state, torn final record, a duplicate
//! mutation id straddling a snapshot boundary, and a journal written
//! by an admission-saturated server.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use sufs_broker::chaos::{fault_for, ChaosProxy, Fault};
use sufs_broker::{Broker, BrokerClient, BrokerConfig, Json, ReconnectPolicy};
use sufs_core::verify::verify;
use sufs_hexpr::builder::*;
use sufs_hexpr::{parse_hist, Hist, Location};
use sufs_net::Repository;
use sufs_policy::PolicyRegistry;
use sufs_rng::{Rng, SeedableRng, StdRng};

/// A fresh per-test state directory under the system tmpdir.
fn state_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sufs-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn durable(dir: &Path, snapshot_every: u64) -> BrokerConfig {
    BrokerConfig {
        state_dir: Some(dir.to_path_buf()),
        snapshot_every,
        ..BrokerConfig::default()
    }
}

/// The booking client of the e2e suite: one request, two outcomes.
fn booking_client() -> Hist {
    request(
        1,
        None,
        seq([send("req", eps()), offer([("ok", eps()), ("no", eps())])]),
    )
}

/// Candidate services: two compliant, one non-compliant, one on the
/// wrong channel.
fn service_pool() -> Vec<Hist> {
    vec![
        recv("req", choose([("ok", eps()), ("no", eps())])),
        recv("req", choose([("ok", eps())])),
        recv("req", choose([("ok", eps()), ("later", eps())])),
        recv("zzz", eps()),
    ]
}

/// Canonical rendering of a broker's `repo` reply — the byte string
/// the recovered state is compared by.
fn canonical_remote(reply: &Json) -> String {
    assert_eq!(reply.bool_field("ok"), Some(true), "repo failed: {reply}");
    let mut out = String::new();
    for s in reply.get("services").and_then(Json::as_arr).unwrap() {
        let loc = s.str_field("location").unwrap();
        let service = s.str_field("service").unwrap();
        match s.u64_field("capacity") {
            Some(cap) => out.push_str(&format!("{loc} (x{cap}): {service}\n")),
            None => out.push_str(&format!("{loc}: {service}\n")),
        }
    }
    let mut policies: Vec<&str> = reply
        .get("policies")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    policies.sort_unstable();
    for p in policies {
        out.push_str(&format!("policy {p}\n"));
    }
    out
}

/// The same rendering over the in-process oracle.
fn canonical_oracle(repo: &Repository, registry: &PolicyRegistry) -> String {
    let mut out = String::new();
    for (loc, service, capacity) in repo.export() {
        match capacity {
            Some(cap) => out.push_str(&format!("{loc} (x{cap}): {service}\n")),
            None => out.push_str(&format!("{loc}: {service}\n")),
        }
    }
    let mut policies: Vec<&str> = registry.iter().map(|a| a.name()).collect();
    policies.sort_unstable();
    for p in policies {
        out.push_str(&format!("policy {p}\n"));
    }
    out
}

/// Issues one mutation through the chaos transport, falling back to a
/// direct connection (same `req_id`!) when the faulty path gives no
/// usable answer. Returns the authoritative reply: thanks to the
/// idempotency window, the mutation lands exactly once no matter how
/// many transport-level retries happened.
fn mutate_through_chaos(
    chaos: &mut BrokerClient,
    direct_addr: std::net::SocketAddr,
    req: &Json,
) -> Json {
    match chaos.request_retrying(req) {
        Ok(reply) if reply.bool_field("ok") == Some(true) => reply,
        // Transport failure, or a `bad_request` caused by injected
        // garbage/torn bytes: ask the broker directly with the same
        // request id for the authoritative outcome.
        _ => {
            let mut direct = BrokerClient::connect(direct_addr).expect("direct connect");
            let reply = direct.request(req).expect("direct request");
            assert_eq!(
                reply.bool_field("ok"),
                Some(true),
                "direct mutation failed: {reply}"
            );
            reply
        }
    }
}

/// E14. ≥500 seeded kill-and-restart cycles under the chaos proxy.
#[test]
fn e14_crash_recovery_under_chaos_transport() {
    const CYCLES: u64 = 500;
    let dir = state_dir("e14");
    let mut oracle_repo = Repository::new();
    let mut oracle_registry = PolicyRegistry::new();
    let mut master = StdRng::seed_from_u64(0xE14);
    let pool: Vec<String> = service_pool().iter().map(|h| h.to_string()).collect();
    let locations = ["s0", "s1", "s2", "s3"];
    let policy_names = ["pa", "pb"];
    let mut req_counter = 0u64;
    let mut dedup_hits_seen = 0u64;

    for cycle in 0..CYCLES {
        let handle = Broker::spawn(durable(&dir, 5)).expect("broker spawns");
        let addr = handle.addr();

        // (a)+(b): the recovered state must render byte-identical to
        // the oracle that never crashed.
        {
            let mut direct = BrokerClient::connect(addr).expect("connect");
            let remote = canonical_remote(&direct.repo().expect("repo"));
            let local = canonical_oracle(&oracle_repo, &oracle_registry);
            assert_eq!(remote, local, "cycle {cycle}: recovered state diverged");
        }

        // (d): every 50 cycles, remote plan verdicts == in-process
        // synthesis over the oracle.
        if cycle % 50 == 0 && !oracle_repo.is_empty() {
            let mut direct = BrokerClient::connect(addr).expect("connect");
            let reply = direct
                .plan(&booking_client().to_string())
                .expect("plan request");
            assert_eq!(reply.bool_field("ok"), Some(true), "plan failed: {reply}");
            let mut remote_valid: Vec<String> = reply
                .get("valid")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect();
            remote_valid.sort();
            let report = verify(&booking_client(), &oracle_repo, &oracle_registry).expect("verify");
            let mut local_valid: Vec<String> =
                report.valid_plans().map(|p| p.to_string()).collect();
            local_valid.sort();
            assert_eq!(
                remote_valid, local_valid,
                "cycle {cycle}: post-recovery verdicts diverged"
            );
        }

        let proxy = ChaosProxy::spawn(addr, 0xC0FFEE ^ cycle).expect("proxy spawns");
        let mut chaos = BrokerClient::connect(proxy.addr())
            .expect("chaos connect")
            .with_reconnect(ReconnectPolicy {
                max_retries: 4,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(8),
                ..ReconnectPolicy::default()
            })
            .with_request_seed(cycle.wrapping_mul(0x9e37) ^ 0x51ed);

        for _ in 0..master.gen_range(1..3usize) {
            req_counter += 1;
            let req_id = format!("e14-{req_counter:08}");
            match master.gen_range(0..10u32) {
                // publish (the common case)
                0..=5 => {
                    let loc = locations[master.gen_range(0..locations.len())];
                    let service = &pool[master.gen_range(0..pool.len())];
                    let capacity = if master.gen_bool(0.3) {
                        Some(master.gen_range(1..4u64))
                    } else {
                        None
                    };
                    let mut req = Json::obj()
                        .with("cmd", "publish")
                        .with("location", loc)
                        .with("service", service.as_str())
                        .with("req_id", req_id.as_str());
                    if let Some(cap) = capacity {
                        req.set("capacity", cap);
                    }
                    let fresh = oracle_repo.get(&Location::new(loc)).is_none();
                    let reply = mutate_through_chaos(&mut chaos, addr, &req);
                    // (c): a fresh location must report `published`; a
                    // double-applied retry would report `updated`.
                    let event = reply.str_field("event").unwrap_or("");
                    if fresh {
                        assert!(
                            event.starts_with("published"),
                            "cycle {cycle}: retried publish double-applied: {reply}"
                        );
                    } else {
                        assert!(
                            event.starts_with("updated"),
                            "cycle {cycle}: wrong event for upsert: {reply}"
                        );
                    }
                    let parsed = parse_hist(service).expect("pool parses");
                    match capacity {
                        Some(cap) => {
                            oracle_repo
                                .try_publish_bounded(loc, parsed, cap as usize)
                                .expect("pool is well-formed");
                        }
                        None => {
                            oracle_repo.try_publish(loc, parsed).expect("well-formed");
                        }
                    }
                }
                // retract
                6 | 7 => {
                    let loc = locations[master.gen_range(0..locations.len())];
                    let req = Json::obj()
                        .with("cmd", "retract")
                        .with("location", loc)
                        .with("req_id", req_id.as_str());
                    let reply = mutate_through_chaos(&mut chaos, addr, &req);
                    let expected = oracle_repo.get(&Location::new(loc)).is_some();
                    assert_eq!(
                        reply.bool_field("changed"),
                        Some(expected),
                        "cycle {cycle}: retract changed-ness diverged: {reply}"
                    );
                    oracle_repo.retract(&Location::new(loc));
                }
                // publish_scenario with a policy
                8 => {
                    let name = policy_names[master.gen_range(0..policy_names.len())];
                    let text = format!(
                        "policy {name}(p) {{ start q0; q0 -- pay if x0 in p -> q1; \
                         q1 -- pay if x0 in p -> q2; offending q2; }}"
                    );
                    let req = Json::obj()
                        .with("cmd", "publish_scenario")
                        .with("text", text.as_str())
                        .with("req_id", req_id.as_str());
                    let reply = mutate_through_chaos(&mut chaos, addr, &req);
                    assert_eq!(reply.u64_field("policies"), Some(1), "{reply}");
                    let sc = sufs_core::scenario::parse_scenario(&text).expect("scenario");
                    for ua in sc.registry.iter() {
                        oracle_registry.register(ua.clone());
                    }
                }
                // retract_policy
                _ => {
                    let name = policy_names[master.gen_range(0..policy_names.len())];
                    let req = Json::obj()
                        .with("cmd", "retract_policy")
                        .with("name", name)
                        .with("req_id", req_id.as_str());
                    let reply = mutate_through_chaos(&mut chaos, addr, &req);
                    let expected = oracle_registry.get(name).is_some();
                    assert_eq!(
                        reply.bool_field("changed"),
                        Some(expected),
                        "cycle {cycle}: retract_policy diverged: {reply}"
                    );
                    oracle_registry.remove(name);
                }
            }
        }

        // Harvest the dedup counter before the crash: retried
        // mutations that were answered from the idempotency window.
        {
            let mut direct = BrokerClient::connect(addr).expect("connect");
            if let Ok(stats) = direct.stats() {
                dedup_hits_seen += stats
                    .get("stats")
                    .and_then(|s| s.get("durability"))
                    .and_then(|d| d.u64_field("dedup_hits"))
                    .unwrap_or(0);
            }
        }

        drop(chaos);
        handle.kill(); // no drain, no flush: a crash
        drop(proxy);

        // Every 7th crash also tears the journal tail, as a real
        // mid-append power cut would.
        if cycle % 7 == 3 {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("journal.wal"))
                .expect("journal exists");
            f.write_all(&[0x00, 0x13, 0x37]).expect("tear tail");
        }
    }

    // The chaos schedule must actually have exercised the retry path.
    assert!(
        dedup_hits_seen > 0,
        "500 chaos cycles never hit the idempotency window — faults too weak"
    );

    // Final recovery + graceful path still works.
    let handle = Broker::spawn(durable(&dir, 5)).expect("final spawn");
    let mut direct = BrokerClient::connect(handle.addr()).expect("connect");
    let remote = canonical_remote(&direct.repo().expect("repo"));
    assert_eq!(remote, canonical_oracle(&oracle_repo, &oracle_registry));
    direct.shutdown().expect("graceful shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Edge case: a state directory with an empty journal and no snapshot
/// recovers to an empty repository and keeps serving.
#[test]
fn recovery_from_empty_journal() {
    let dir = state_dir("empty");
    {
        let handle = Broker::spawn(durable(&dir, 100)).expect("spawn");
        handle.kill();
    }
    let handle = Broker::spawn(durable(&dir, 100)).expect("respawn");
    let mut client = BrokerClient::connect(handle.addr()).expect("connect");
    let reply = client.repo().expect("repo");
    assert_eq!(
        reply.get("services").and_then(Json::as_arr).unwrap().len(),
        0
    );
    let reply = client
        .publish("s", &service_pool()[0].to_string(), None)
        .expect("publish");
    assert_eq!(reply.bool_field("ok"), Some(true));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Edge case: with `snapshot_every = 1` every mutation compacts, so
/// recovery runs from the snapshot alone (empty journal suffix).
#[test]
fn recovery_from_snapshot_only() {
    let dir = state_dir("snaponly");
    {
        let handle = Broker::spawn(durable(&dir, 1)).expect("spawn");
        let mut client = BrokerClient::connect(handle.addr()).expect("connect");
        client
            .publish("a", &service_pool()[0].to_string(), None)
            .expect("publish a");
        client
            .publish("b", &service_pool()[1].to_string(), Some(2))
            .expect("publish b");
        // Each mutation triggers compaction after its reply; the last
        // one may still be in flight on another thread — stats forces
        // a round trip, then the journal must be empty.
        let stats = client.stats().expect("stats");
        let journal = stats.get("journal").expect("journal section");
        assert_eq!(journal.u64_field("records_since_snapshot"), Some(0));
        handle.kill();
    }
    let handle = Broker::spawn(durable(&dir, 1)).expect("respawn");
    let mut client = BrokerClient::connect(handle.addr()).expect("connect");
    let repo = client.repo().expect("repo");
    let services = repo.get("services").and_then(Json::as_arr).unwrap();
    assert_eq!(services.len(), 2);
    assert_eq!(services[1].u64_field("capacity"), Some(2));
    // The replay counter confirms nothing came from the journal.
    let stats = client.stats().expect("stats");
    let durability = stats
        .get("stats")
        .and_then(|s| s.get("durability"))
        .expect("durability counters");
    assert_eq!(durability.u64_field("replayed_records"), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Edge case: a torn final record (crash mid-append) is truncated on
/// recovery; every acknowledged mutation before it survives.
#[test]
fn recovery_truncates_torn_final_record() {
    let dir = state_dir("torn");
    {
        let handle = Broker::spawn(durable(&dir, 100)).expect("spawn");
        let mut client = BrokerClient::connect(handle.addr()).expect("connect");
        client
            .publish("a", &service_pool()[0].to_string(), None)
            .expect("publish a");
        client
            .publish("b", &service_pool()[1].to_string(), None)
            .expect("publish b");
        handle.kill();
    }
    // A torn half-record: length prefix promising more than is there.
    let mut f = OpenOptions::new()
        .append(true)
        .open(dir.join("journal.wal"))
        .expect("journal exists");
    f.write_all(&[0x00, 0x00, 0x40, 0x00, 0xaa, 0xbb]).unwrap();
    drop(f);

    let handle = Broker::spawn(durable(&dir, 100)).expect("respawn");
    let mut client = BrokerClient::connect(handle.addr()).expect("connect");
    let repo = client.repo().expect("repo");
    assert_eq!(
        repo.get("services").and_then(Json::as_arr).unwrap().len(),
        2
    );
    let stats = client.stats().expect("stats");
    let durability = stats
        .get("stats")
        .and_then(|s| s.get("durability"))
        .expect("durability counters");
    assert_eq!(durability.u64_field("replayed_records"), Some(2));
    // The journal stays appendable after truncation.
    client
        .publish("c", &service_pool()[2].to_string(), None)
        .expect("publish after torn recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Edge case: a mutation id recorded *before* a snapshot boundary
/// still answers a retry arriving *after* crash recovery — the
/// idempotency window rides inside the snapshot.
#[test]
fn duplicate_req_id_straddling_a_snapshot_boundary() {
    let dir = state_dir("straddle");
    let service = service_pool()[0].to_string();
    let req = Json::obj()
        .with("cmd", "publish")
        .with("location", "s")
        .with("service", service.as_str())
        .with("req_id", "straddle-0001");
    let first;
    {
        let handle = Broker::spawn(durable(&dir, 1)).expect("spawn");
        let mut client = BrokerClient::connect(handle.addr()).expect("connect");
        first = client.request(&req).expect("first publish");
        assert_eq!(first.str_field("event"), Some("published s"));
        // snapshot_every = 1: the mutation and its req_id are compacted
        // into the snapshot once the reply round-trips.
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("journal")
                .and_then(|j| j.u64_field("records_since_snapshot")),
            Some(0)
        );
        handle.kill();
    }
    let handle = Broker::spawn(durable(&dir, 1)).expect("respawn");
    let mut client = BrokerClient::connect(handle.addr()).expect("connect");
    // The retry of the pre-snapshot mutation: answered from the
    // recovered window with the *original* reply, not re-applied.
    let retry = client.request(&req).expect("retried publish");
    assert_eq!(retry, first, "retry must replay the recorded reply");
    let stats = client.stats().expect("stats");
    let durability = stats
        .get("stats")
        .and_then(|s| s.get("durability"))
        .expect("durability counters");
    assert_eq!(durability.u64_field("dedup_hits"), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Edge case: a journal written while the server is saturated at
/// `max_clients` (busy rejections interleaved with admitted mutations)
/// replays to exactly the acknowledged state.
#[test]
fn replay_of_journal_from_saturated_server() {
    let dir = state_dir("saturated");
    let pool: Vec<String> = service_pool().iter().map(|h| h.to_string()).collect();
    let mut acked: Vec<(String, String)> = Vec::new();
    {
        let handle = Broker::spawn(BrokerConfig {
            max_clients: 1,
            ..durable(&dir, 3)
        })
        .expect("spawn");
        let addr = handle.addr();
        let mut rejected = 0u32;
        for i in 0..8 {
            // Serial clients: each occupies the single slot; extra
            // connection attempts while a slot is held are rejected at
            // admission. The unsolicited `busy` frame is tagged by the
            // server and surfaced by the client as `ConnectionRefused`,
            // so a successful `ping` really is a pong — no reply
            // inspection needed. Admission races the previous holder's
            // handler thread retiring, so retry until admitted.
            let mut holder = loop {
                let mut candidate = BrokerClient::connect(addr).expect("connect holder");
                match candidate.ping() {
                    Ok(reply) => {
                        assert_eq!(reply.bool_field("ok"), Some(true), "pong expected: {reply}");
                        break candidate;
                    }
                    Err(err) if err.kind() == std::io::ErrorKind::ConnectionRefused => {
                        // The slot was still held.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(err) => panic!("holder admitted: {err}"),
                }
            };
            let mut probe = BrokerClient::connect(addr).expect("connect probe");
            match probe.ping() {
                Err(err) if err.kind() == std::io::ErrorKind::ConnectionRefused => rejected += 1,
                _ => {} // the holder may have been reaped already
            }
            let loc = format!("sat{i}");
            let service = &pool[i % pool.len()];
            let reply = holder.publish(&loc, service, None).expect("publish");
            assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
            acked.push((loc, service.clone()));
            drop(holder);
            // Give the handler thread a beat to retire so the next
            // client is admitted.
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(rejected > 0, "saturation never produced a busy rejection");
        handle.kill();
    }
    let handle = Broker::spawn(durable(&dir, 3)).expect("respawn");
    let mut client = BrokerClient::connect(handle.addr()).expect("connect");
    let repo = client.repo().expect("repo");
    let services = repo.get("services").and_then(Json::as_arr).unwrap();
    assert_eq!(services.len(), acked.len());
    for (loc, service) in &acked {
        assert!(
            services
                .iter()
                .any(|s| s.str_field("location") == Some(loc)
                    && s.str_field("service") == Some(service)),
            "acked publish at {loc} lost in replay"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: after a crash the broker rebuilds the composed product
/// for every registered client *before* accepting connections, so the
/// first post-recovery `plan` reads off the warmed product instead of
/// paying a cold rebuild.
#[test]
fn warm_start_primes_products_before_accepting_plans() {
    // Three sequential requests, each with two compliant candidate
    // services and one non-compliant decoy: 9 locations, 9³ = 729
    // candidate bindings, 8 surviving the composed product.
    const SCENARIO: &str = "
        client traveler {
          open 1 { int[q1 -> eps]; ext[a1 -> eps | b1 -> eps];
            open 2 { int[q2 -> eps]; ext[a2 -> eps | b2 -> eps];
              open 3 { int[q3 -> eps]; ext[a3 -> eps | b3 -> eps] } } }
        }
        service g1a { ext[q1 -> int[a1 -> eps]] }
        service g1b { ext[q1 -> int[b1 -> eps]] }
        service x1  { ext[q1 -> int[z1 -> eps]] }
        service g2a { ext[q2 -> int[a2 -> eps]] }
        service g2b { ext[q2 -> int[b2 -> eps]] }
        service x2  { ext[q2 -> int[z2 -> eps]] }
        service g3a { ext[q3 -> int[a3 -> eps]] }
        service g3b { ext[q3 -> int[b3 -> eps]] }
        service x3  { ext[q3 -> int[z3 -> eps]] }
    ";
    let sc = sufs_core::scenario::parse_scenario(SCENARIO).expect("scenario");
    let traveler = sc.client("traveler").expect("traveler").to_string();
    let compositional = || Json::obj().with("engine", "compositional");

    let dir = state_dir("warmstart");
    let mut steady = Duration::MAX;
    {
        let handle = Broker::spawn(durable(&dir, 100)).expect("spawn");
        let mut client = BrokerClient::connect(handle.addr()).expect("connect");
        let reply = client.publish_scenario(SCENARIO).expect("publish");
        assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
        // Steady state: the first query builds the product, the rest
        // read it off. Take the fastest read-off as the baseline.
        for i in 0..4 {
            let started = std::time::Instant::now();
            let reply = client
                .plan_with(&traveler, compositional())
                .expect("steady plan");
            let elapsed = started.elapsed();
            assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
            assert_eq!(
                reply.get("valid").and_then(Json::as_arr).map(<[_]>::len),
                Some(8),
                "{reply}"
            );
            if i > 0 {
                steady = steady.min(elapsed);
            }
        }
        handle.kill();
    }

    let handle = Broker::spawn(durable(&dir, 100)).expect("respawn");
    let mut client = BrokerClient::connect(handle.addr()).expect("reconnect");
    let started = std::time::Instant::now();
    let reply = client
        .plan_with(&traveler, compositional())
        .expect("post-recovery plan");
    let post_recovery = started.elapsed();
    assert_eq!(reply.bool_field("ok"), Some(true), "{reply}");
    assert_eq!(
        reply.get("valid").and_then(Json::as_arr).map(<[_]>::len),
        Some(8),
        "{reply}"
    );
    // The deterministic pin: the very first post-recovery query reused
    // the product the warm start rebuilt — it did not build one.
    let product = reply
        .get("stats")
        .and_then(|s| s.get("product"))
        .expect("product stats in reply");
    assert_eq!(
        product.bool_field("reused"),
        Some(true),
        "first post-recovery plan should read off the warmed product: {reply}"
    );
    let stats = client.stats().expect("stats");
    let products = stats.get("products").expect("products stats");
    assert_eq!(products.u64_field("warmed"), Some(1), "{stats}");
    // The acceptance bound: within 2× of steady state, with a floor so
    // sub-millisecond baselines don't turn scheduler jitter into flakes.
    let bound = (steady * 2).max(Duration::from_millis(50));
    assert!(
        post_recovery <= bound,
        "post-recovery plan took {post_recovery:?}, steady state {steady:?} (bound {bound:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: an oversized frame now gets a structured
/// `frame_too_large` reply before the close (it used to be a silent
/// drop).
#[test]
fn oversized_frame_gets_structured_reply_then_close() {
    use std::io::Read as _;
    let handle = Broker::spawn(BrokerConfig::default()).expect("spawn");
    let mut conn = std::net::TcpStream::connect(handle.addr()).expect("connect");
    // Announce 17 MiB — over the 16 MiB cap — and send nothing else.
    conn.write_all(&(17u32 << 20).to_be_bytes()).expect("send");
    let mut len = [0u8; 4];
    conn.read_exact(&mut len).expect("reply length");
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    conn.read_exact(&mut payload).expect("reply payload");
    let reply: Json = sufs_broker::json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(reply.bool_field("ok"), Some(false));
    assert_eq!(reply.str_field("kind"), Some("frame_too_large"));
    // …then the connection closes.
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());
}

/// Satellite: a reply dropped after the server applied the mutation is
/// healed by the reconnecting client — applied exactly once, retried
/// reply answered from the idempotency window.
#[test]
fn retried_publish_after_dropped_reply_applies_once() {
    // A seed whose connection 0 drops the reply and whose connection 1
    // (the reconnect) passes cleanly.
    let seed = (0u64..)
        .find(|&s| fault_for(s, 0) == Fault::DropReply && fault_for(s, 1) == Fault::None)
        .expect("such a seed exists");
    let dir = state_dir("dropack");
    let handle = Broker::spawn(durable(&dir, 100)).expect("spawn");
    let proxy = ChaosProxy::spawn(handle.addr(), seed).expect("proxy");
    let mut client = BrokerClient::connect(proxy.addr())
        .expect("connect")
        .with_reconnect(ReconnectPolicy::default())
        .with_request_seed(42);
    let reply = client
        .publish("once", &service_pool()[0].to_string(), None)
        .expect("publish heals through retry");
    // The first application's event — not `updated`, which a double
    // apply would produce.
    assert_eq!(reply.str_field("event"), Some("published once"));
    let mut direct = BrokerClient::connect(handle.addr()).expect("direct");
    let stats = direct.stats().expect("stats");
    let durability = stats
        .get("stats")
        .and_then(|s| s.get("durability"))
        .expect("durability counters");
    assert_eq!(durability.u64_field("dedup_hits"), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The whole PR is opt-in: without a state directory the broker writes
/// no files and keeps the PR-4 wire behaviour (pinned separately by
/// the untouched `broker_e2e` suite).
#[test]
fn no_state_dir_writes_no_files() {
    let probe = state_dir("probe-absent");
    let handle = Broker::spawn(BrokerConfig::default()).expect("spawn");
    let mut client = BrokerClient::connect(handle.addr()).expect("connect");
    client
        .publish("s", &service_pool()[0].to_string(), None)
        .expect("publish");
    let stats = client.stats().expect("stats");
    assert!(
        stats.get("journal").is_none(),
        "no journal section: {stats}"
    );
    assert!(!probe.exists());
}
