//! The §5 quantitative extension applied to whole orchestrations: cost
//! bounds checked over the symbolic session state space of a client
//! under a plan, so a budget can discriminate between otherwise valid
//! plans.

use sufs_hexpr::builder::*;
use sufs_hexpr::PolicyRef;
use sufs_net::symbolic::{symbolic_successors, SymState};
use sufs_net::{Plan, Repository};
use sufs_policy::cost::{check_cost_bound_lts, CostBound, CostModel, CostVerdict};

fn budget(policy: &str, bound: u64) -> CostBound {
    CostBound {
        policy: PolicyRef::nullary(policy),
        model: CostModel::new().by_arg("charge", 0),
        bound,
    }
}

#[test]
fn plan_choice_determines_cost() {
    // The client opens a budgeted session and lets the service do the
    // charging.
    let client = request(
        1,
        Some(PolicyRef::nullary("wallet")),
        seq([send("buy", eps()), offer([("done", eps())])]),
    );
    let cheap = recv("buy", seq([ev("charge", [3]), choose([("done", eps())])]));
    let pricey = recv("buy", seq([ev("charge", [30]), choose([("done", eps())])]));
    let mut repo = Repository::new();
    repo.publish("cheap", cheap);
    repo.publish("pricey", pricey);

    let check = |loc: &str, bound: u64| {
        let plan = Plan::new().with(1u32, loc);
        let init = SymState::initial("client", client.clone());
        check_cost_bound_lts(
            init,
            |s| symbolic_successors(s, &plan, &repo),
            &budget("wallet", bound),
            1 << 18,
        )
        .unwrap()
    };

    assert_eq!(check("cheap", 10), CostVerdict::Within { worst: 3 });
    assert_eq!(
        check("pricey", 10),
        CostVerdict::Exceeded { witness: Some(30) }
    );
    assert_eq!(check("pricey", 30), CostVerdict::Within { worst: 30 });
}

#[test]
fn recursive_service_with_positive_charges_is_unbounded() {
    let client = request(
        1,
        Some(PolicyRef::nullary("wallet")),
        loop_(
            "h",
            choose([("more", offer([("ok", jump("h"))])), ("stop", eps())]),
        ),
    );
    // The service charges on every round: unbounded within the window.
    let service = loop_(
        "k",
        offer([
            (
                "more",
                seq([ev("charge", [1]), choose([("ok", jump("k"))])]),
            ),
            ("stop", eps()),
        ]),
    );
    let mut repo = Repository::new();
    repo.publish("meter", service);
    let plan = Plan::new().with(1u32, "meter");
    let init = SymState::initial("client", client);
    let v = check_cost_bound_lts(
        init,
        |s| symbolic_successors(s, &plan, &repo),
        &budget("wallet", 1_000),
        1 << 18,
    )
    .unwrap();
    assert_eq!(v, CostVerdict::Exceeded { witness: None });
}

#[test]
fn charges_outside_the_budgeted_session_are_free() {
    // Request 1 is budgeted; request 2 is not.
    let client = seq([
        request(
            1,
            Some(PolicyRef::nullary("wallet")),
            seq([send("buy", eps()), offer([("done", eps())])]),
        ),
        request(2, None, seq([send("buy", eps()), offer([("done", eps())])])),
    ]);
    let srv = recv("buy", seq([ev("charge", [50]), choose([("done", eps())])]));
    let mut repo = Repository::new();
    repo.publish("srv", srv);
    let plan = Plan::new().with(1u32, "srv").with(2u32, "srv");
    let init = SymState::initial("client", client);
    let v = check_cost_bound_lts(
        init,
        |s| symbolic_successors(s, &plan, &repo),
        &budget("wallet", 50),
        1 << 18,
    )
    .unwrap();
    // Only the first session's charge counts; the second is unframed.
    assert_eq!(v, CostVerdict::Within { worst: 50 });
}
