//! Call-by-contract discovery agrees with the verifier: a service
//! matches a request's conversation iff binding it to that request
//! never produces a `NonCompliant` violation for it.

use sufs::paper;
use sufs_core::discover::discover;
use sufs_core::verify::{verify_plan, Violation};
use sufs_hexpr::requests::requests;
use sufs_hexpr::RequestId;
use sufs_net::Plan;

#[test]
fn discovery_agrees_with_per_request_compliance() {
    let repo = paper::repository();
    let reg = paper::registry();

    // The broker's request 3: its conversation, discovered over the
    // whole repository.
    let broker_reqs = requests(&paper::broker());
    let conv = &broker_reqs[0].body;
    let results = discover(conv, &repo).unwrap();

    for candidate in &results {
        // Bind r1 to the broker and r3 to the candidate, then ask the
        // verifier specifically about r3's compliance.
        let plan = Plan::new()
            .with(1u32, "br")
            .with(3u32, candidate.location.clone());
        let verdict = verify_plan(&paper::client_c1(), &plan, &repo, &reg).unwrap();
        let r3_noncompliant = verdict.violations.iter().any(|v| {
            matches!(v, Violation::NonCompliant { request, .. } if *request == RequestId::new(3))
        });
        assert_eq!(
            candidate.matches(),
            !r3_noncompliant,
            "discovery and verification disagree on {}",
            candidate.location
        );
    }

    // And the matching set is the paper's: the three del-free hotels.
    let matching: Vec<&str> = results
        .iter()
        .filter(|c| c.matches())
        .map(|c| c.location.as_str())
        .collect();
    assert_eq!(matching, vec!["s1", "s3", "s4"]);
}

#[test]
fn discovery_for_the_clients_finds_only_the_broker() {
    let repo = paper::repository();
    for client in [paper::client_c1(), paper::client_c2()] {
        let conv = &requests(&client)[0].body;
        let matching: Vec<String> = discover(conv, &repo)
            .unwrap()
            .into_iter()
            .filter(|c| c.matches())
            .map(|c| c.location.as_str().to_owned())
            .collect();
        assert_eq!(matching, vec!["br"]);
    }
}
